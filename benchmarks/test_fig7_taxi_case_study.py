"""Figure 7: NYC-taxi case study — utility, privacy, and their trade-off.

Paper setup: the taxi-distance query runs end to end over the (synthetic,
here) taxi trace for every combination of p, q in {0.3, 0.6, 0.9}, with the
sampling fraction derived from the privacy target.  Figure 7(a) shows the
accuracy loss, 7(b) the zero-knowledge privacy level and 7(c) the trade-off
between the two.

Expected shape: the accuracy loss falls (utility improves) and epsilon_zk
rises (privacy weakens) as s and p grow; since the taxi trace's first-bucket
fraction is ~33.6%, q = 0.3 gives the lowest loss; utility and privacy trade
off monotonically.
"""

from __future__ import annotations

import pytest

from repro.analytics import histogram_accuracy_loss
from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    SystemConfig,
)
from repro.core.privacy import zero_knowledge_epsilon
from repro.datasets import TAXI_DISTANCE_BUCKETS, TaxiRideGenerator

NUM_CLIENTS = 1_500
RIDES_PER_CLIENT = 1
SAMPLING_FRACTIONS = [0.4, 0.9]
PQ_SETTINGS = [(p, q) for p in (0.3, 0.6, 0.9) for q in (0.3, 0.6, 0.9)]


def run_case_study(sampling_fraction: float, p: float, q: float, seed: int = 7):
    """One end-to-end taxi case-study run; returns (accuracy loss, epsilon_zk)."""
    system = PrivApproxSystem(SystemConfig(num_clients=NUM_CLIENTS, seed=seed))
    generator = TaxiRideGenerator(seed=seed)
    system.provision_clients(
        TaxiRideGenerator.table_columns(),
        lambda i: generator.rides_for_client(i, num_rides=RIDES_PER_CLIENT),
    )
    analyst = Analyst("taxi")
    query = analyst.create_query(
        TaxiRideGenerator.case_study_sql(),
        AnswerSpec(buckets=TAXI_DISTANCE_BUCKETS, value_column="distance"),
        frequency_seconds=600.0,
        window_seconds=600.0,
        slide_seconds=600.0,
    )
    params = ExecutionParameters(sampling_fraction=sampling_fraction, p=p, q=q)
    system.submit_query(analyst, query, QueryBudget(), parameters=params)
    system.run_epoch(query.query_id, 0)
    results = system.flush(query.query_id)
    exact = system.exact_bucket_counts(query.query_id)
    loss = histogram_accuracy_loss(exact, results[0].histogram.estimates())
    return loss, zero_knowledge_epsilon(p, q, sampling_fraction)


@pytest.mark.benchmark(group="fig7")
def test_fig7_taxi_utility_privacy_tradeoff(benchmark, report):
    # One full end-to-end run is expensive (thousands of clients), so time a
    # single round rather than letting pytest-benchmark calibrate.
    benchmark.pedantic(run_case_study, args=(0.9, 0.9, 0.3), rounds=1, iterations=1)

    rows = []
    measurements = {}
    for s in SAMPLING_FRACTIONS:
        for p, q in PQ_SETTINGS:
            loss, epsilon = run_case_study(s, p, q)
            measurements[(s, p, q)] = (loss, epsilon)
            rows.append([s, p, q, round(100 * loss, 3), round(epsilon, 4)])

    report.title("Figure 7: NYC-taxi case study — utility and privacy")
    report.table(["s", "p", "q", "accuracy loss (%)", "epsilon_zk"], rows)
    report.note(
        "Paper: loss falls and epsilon_zk rises as s and p grow; because the "
        "taxi trace's first-bucket fraction is ~33.6%, q = 0.3 gives the "
        "smallest loss; utility and privacy trade off against each other."
    )

    # (a) Utility improves with p (averaged over q) at full-ish sampling.
    def mean_loss(s, p):
        return sum(measurements[(s, p, q)][0] for q in (0.3, 0.6, 0.9)) / 3

    assert mean_loss(0.9, 0.9) < mean_loss(0.9, 0.3)
    # Utility improves with the sampling fraction (averaged over p, q).
    low_s = sum(measurements[(0.4, p, q)][0] for p, q in PQ_SETTINGS) / len(PQ_SETTINGS)
    high_s = sum(measurements[(0.9, p, q)][0] for p, q in PQ_SETTINGS) / len(PQ_SETTINGS)
    assert high_s < low_s

    # (b) Privacy level grows with p and s.
    for q in (0.3, 0.6, 0.9):
        assert measurements[(0.9, 0.9, q)][1] > measurements[(0.9, 0.3, q)][1]
        assert measurements[(0.9, 0.6, q)][1] > measurements[(0.4, 0.6, q)][1]

    # (c) Trade-off: the most private configuration is the least accurate
    # (compare the extreme corners at fixed q = 0.6).
    strong_privacy = measurements[(0.4, 0.3, 0.6)]
    weak_privacy = measurements[(0.9, 0.9, 0.6)]
    assert strong_privacy[1] < weak_privacy[1]
    assert strong_privacy[0] > weak_privacy[0]

    # q = 0.3 (closest to the ~33.6% first-bucket fraction) beats q = 0.9 for
    # the high-utility corner.  (The paper reports the same effect; at this
    # deployment size the q = 0.3 vs q = 0.6 gap is within the noise, so only
    # the robust comparison is asserted.)
    assert measurements[(0.9, 0.9, 0.3)][0] < measurements[(0.9, 0.9, 0.9)][0]
