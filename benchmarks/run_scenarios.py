#!/usr/bin/env python
"""Scenario sweep driver: the hostile-environment grid across every executor.

Runs the seeded scenario grid of :mod:`repro.runtime.scenario` — client
join/leave churn, Zipf-skewed participation and table sizes,
duplicate/byzantine answer injection, epoch deadlines against the netsim
latency models — across six executor configurations (serial, sharded,
pipelined, process, process+resident, and the staged engine's
``inline/in-process`` combo spelling) and writes one
``results/BENCH_scenarios.json`` trajectory: per scenario and executor the
wall-clock, wire bytes, dropped-late-answer counts, admission rejections and
estimate error versus the exact answer.

Two hard assertions ride along, so the sweep doubles as an acceptance gate:

* every scenario's response log, window results and late-drop ledger must be
  **byte-identical across executors** (compared via sha256 digest) — the
  seeded-equivalence contract extended to hostile environments;
* a scenario that arms a deadline or injects duplicates must show the
  corresponding drops/rejections on every executor, so a silently disabled
  defense cannot pass.

Usage::

    python benchmarks/run_scenarios.py                 # full grid (>= 12 scenarios)
    python benchmarks/run_scenarios.py --grid smoke    # 4-scenario CI smoke (~15 s)
    python benchmarks/run_scenarios.py --output /tmp/out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime.scenario import run_scenario, scenario_grid  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# The executor configurations under test; worker/shard counts are kept
# small so the full sweep stays laptop- and CI-friendly.  The last entry
# names its driver combo directly — the staged engine's canonical spelling
# rather than a legacy alias — so the sweep also gates the registry path.
EXECUTOR_CONFIGS = [
    {"label": "serial", "executor": "serial"},
    {"label": "sharded", "executor": "sharded", "workers": 2, "shards": 4},
    {"label": "pipelined", "executor": "pipelined", "workers": 2, "shards": 4},
    {"label": "process", "executor": "process", "workers": 2, "shards": 4},
    {
        "label": "process-resident",
        "executor": "process",
        "workers": 2,
        "shards": 4,
        "resident": True,
        "checkpoint_every": 2,
    },
    {"label": "inline-engine", "executor": "inline/in-process"},
]


def sweep(grid: str) -> dict:
    specs = scenario_grid(grid)
    scenarios = []
    failures = []
    for spec in specs:
        runs = []
        for config in EXECUTOR_CONFIGS:
            kwargs = {k: v for k, v in config.items() if k != "label"}
            run = run_scenario(spec, **kwargs)
            runs.append(run)
            print(
                f"  {spec.name:<20} {run.executor_label:<16}"
                f" wall={run.total_wall_seconds:7.3f}s"
                f" wire={run.total_wire_bytes:>9}B"
                f" late={run.total_late_dropped:>3}"
                f" rej={run.total_rejections:>3}"
                f" loss={run.mean_accuracy_loss if run.mean_accuracy_loss is None else round(run.mean_accuracy_loss, 4)}"
            )
        digests = {run.executor_label: run.digest for run in runs}
        if len(set(digests.values())) != 1:
            failures.append((spec.name, digests))
        if spec.deadline_seconds is not None and spec.name in ("deadline-tight",):
            if any(run.total_late_dropped == 0 for run in runs):
                failures.append((spec.name, "deadline armed but nothing dropped"))
        if spec.duplicate_rate > 0 and any(run.total_rejections == 0 for run in runs):
            failures.append((spec.name, "duplicates injected but nothing rejected"))
        scenarios.append(
            {
                "spec": spec.to_dict(),
                "digest": runs[0].digest,
                "runs": [run.to_dict() for run in runs],
            }
        )
    return {"grid": grid, "scenarios": scenarios, "failures": failures}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--grid",
        choices=("full", "smoke"),
        default="full",
        help="scenario grid to sweep (smoke = the 4-scenario CI subset)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(RESULTS_DIR, "BENCH_scenarios.json"),
        help="where to write the JSON trajectory",
    )
    args = parser.parse_args(argv)

    print(f"scenario sweep: grid={args.grid}")
    result = sweep(args.grid)
    failures = result.pop("failures")

    os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(f"wrote {args.output} ({len(result['scenarios'])} scenarios)")

    if failures:
        for name, detail in failures:
            print(f"FAIL {name}: {detail}", file=sys.stderr)
        return 1
    print(
        "all scenarios byte-identical across "
        f"{len(EXECUTOR_CONFIGS)} executor configurations"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
