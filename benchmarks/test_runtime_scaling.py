"""Runtime scaling: sharded, pipelined and process epoch executors vs. serial.

Not a paper figure but an acceptance benchmark for the parallel epoch
runtimes (``repro.runtime``) on a 1000-client deployment with a
deliberately compute-heavy answering stage (64 readings per client, a WHERE
filter, a 64-bucket answer vector — the shape of the paper's case-study
queries rather than a toy one-row probe).  A second acceptance claim covers
multi-query epochs: serving four concurrent queries from one shared
answering pass (``run_epoch_all``) must beat running four single-query
epochs, because the shared pass walks the client population once and reuses
one local table scan across the co-subscribed queries.

Single-query claims:

* the sharded executor must at least match the serial reference — on a
  single-core box the win comes from per-shard batched broker publishes and
  the grouped aggregator join, on a multi-core box shard answering
  parallelizes on top;
* the pipelined executor must be at least as fast as the sharded one (its
  shard-aware topics carry one batch record per shard, and the stages
  overlap);
* the process executor must beat the pipelined one *when real cores exist*
  (>= 4): its answer stage escapes the GIL, which is the entire point of
  shipping serialized shard tasks to worker processes.  On fewer cores the
  serialization round-trip cannot pay for itself and the comparison is
  reported but not asserted.

Timing assertions use **medians over the timed epochs** and re-measure up to
``MEASURE_ROUNDS`` times (best-of-medians) with a small tolerance factor, so
a one-off scheduler hiccup on a loaded CI runner cannot fail the suite.  All
measured rows are also written to ``results/BENCH_runtime_scaling.json`` so
CI can archive timing trajectories across commits.

The XOR benchmarks record the speedup of the word-vectorized keystream
application over the byte-at-a-time scalar reference.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)
from repro.crypto.prng import KeystreamGenerator
from repro.crypto.xor import xor_bytes, xor_bytes_scalar

NUM_CLIENTS = 1_000
NUM_ROWS_PER_CLIENT = 64
NUM_BUCKETS = 64
TIMED_EPOCHS = 5
MEASURE_ROUNDS = 3  # best-of-3 medians before a timing assertion may fail
TOLERANCE = 1.05  # allowance for timer noise on loaded CI runners
SEED = 7
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# The process executor only parallelizes on real cores; below this count the
# state-shipping round-trip cannot pay for itself, so the process-vs-pipelined
# comparison is reported but not asserted.
PROCESS_ASSERT_CORES = 4


def build_system(
    executor: str,
    workers: int = 4,
    shards: int | None = None,
    resident: bool = False,
    checkpoint_every: int = 4,
):
    system = PrivApproxSystem(
        SystemConfig(
            num_clients=NUM_CLIENTS,
            seed=SEED,
            executor=executor,
            executor_workers=workers,
            executor_shards=shards,
            executor_resident=resident,
            executor_checkpoint_every=checkpoint_every,
        )
    )
    rng = random.Random(SEED)
    system.provision_clients(
        [("value", "REAL")],
        lambda i: [
            {"value": rng.gammavariate(2.0, 1.0)} for _ in range(NUM_ROWS_PER_CLIENT)
        ],
    )
    analyst = Analyst("runtime-scaling")
    query = analyst.create_query(
        "SELECT value FROM private_data WHERE value > 0.5",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, NUM_BUCKETS, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(
        analyst,
        query,
        QueryBudget(),
        parameters=ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.6),
    )
    return system, query.query_id


def measure_epoch_seconds(
    executor: str, workers: int = 4, shards: int | None = None
) -> dict:
    """Epoch wall-clock stats over TIMED_EPOCHS epochs (1 warmup)."""
    system, query_id = build_system(executor, workers=workers, shards=shards)
    system.run_epoch(query_id, 0)  # warmup: pools, worker imports, calibration
    times = []
    for epoch in range(1, TIMED_EPOCHS + 1):
        start = time.perf_counter()
        system.run_epoch(query_id, epoch)
        times.append(time.perf_counter() - start)
    system.close()
    return {
        "best": min(times),
        "median": statistics.median(times),
        "mean": sum(times) / len(times),
    }


def assert_faster(
    fast_name: str,
    slow_name: str,
    fast_config: dict,
    slow_config: dict,
    fast_stats: dict,
    slow_stats: dict,
    tolerance: float = TOLERANCE,
    measure=None,
) -> None:
    """Assert median(fast) < median(slow) * tolerance, best-of-MEASURE_ROUNDS.

    The first round reuses the stats already measured for the report; only
    when the comparison fails are both sides re-measured (up to two more
    rounds) and the best medians compared — a loaded-runner hiccup has to
    repeat three times to fail the suite.  ``measure`` defaults to the
    single-query :func:`measure_epoch_seconds`; the multi-query assertion
    passes its own measurement function.
    """
    if measure is None:
        measure = measure_epoch_seconds
    fast_medians = [fast_stats["median"]]
    slow_medians = [slow_stats["median"]]
    for _ in range(MEASURE_ROUNDS - 1):
        if min(fast_medians) < min(slow_medians) * tolerance:
            break
        fast_medians.append(measure(**fast_config)["median"])
        slow_medians.append(measure(**slow_config)["median"])
    fast_best = min(fast_medians)
    slow_best = min(slow_medians)
    assert fast_best < slow_best * tolerance, (
        f"{fast_name} median epoch {fast_best * 1e3:.1f} ms did not beat "
        f"{slow_name} {slow_best * 1e3:.1f} ms (tolerance x{tolerance}) after "
        f"{len(fast_medians)} measurement round(s)"
    )


def test_parallel_executors_beat_serial_on_1000_clients(report):
    cpu_count = os.cpu_count() or 1
    configs = [
        ("serial", {"executor": "serial"}),
        ("sharded w1", {"executor": "sharded", "workers": 1}),
        ("sharded w2", {"executor": "sharded", "workers": 2}),
        ("sharded w4", {"executor": "sharded", "workers": 4}),
        ("sharded w4 s16", {"executor": "sharded", "workers": 4, "shards": 16}),
        ("pipelined w2", {"executor": "pipelined", "workers": 2}),
        ("pipelined w4", {"executor": "pipelined", "workers": 4}),
        ("pipelined w4 s16", {"executor": "pipelined", "workers": 4, "shards": 16}),
        ("process w2", {"executor": "process", "workers": 2}),
        ("process w4", {"executor": "process", "workers": 4}),
        ("process w4 s16", {"executor": "process", "workers": 4, "shards": 16}),
    ]
    stats = {name: measure_epoch_seconds(**config) for name, config in configs}
    serial_median = stats["serial"]["median"]

    rows = []
    json_rows = []
    for name, config in configs:
        entry = stats[name]
        rows.append(
            [
                name,
                entry["best"] * 1e3,
                entry["median"] * 1e3,
                entry["mean"] * 1e3,
                serial_median / entry["median"],
            ]
        )
        json_rows.append(
            {
                "config": name,
                "executor": config["executor"],
                "workers": config.get("workers"),
                "shards": config.get("shards"),
                "best_ms": entry["best"] * 1e3,
                "median_ms": entry["median"] * 1e3,
                "mean_ms": entry["mean"] * 1e3,
            }
        )

    # Persist the trajectory JSON before asserting anything, so CI archives
    # the numbers even for a failing run.
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_runtime_scaling.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {
                "benchmark": "runtime_scaling",
                "num_clients": NUM_CLIENTS,
                "rows_per_client": NUM_ROWS_PER_CLIENT,
                "num_buckets": NUM_BUCKETS,
                "timed_epochs": TIMED_EPOCHS,
                "cpu_count": cpu_count,
                "rows": json_rows,
            },
            handle,
            indent=2,
        )

    report.title(
        f"Epoch runtime scaling ({NUM_CLIENTS} clients x {NUM_ROWS_PER_CLIENT} rows, "
        f"s=0.9, {NUM_BUCKETS} buckets, {cpu_count} core(s))"
    )
    report.table(
        ["configuration", "best epoch (ms)", "median (ms)", "mean (ms)", "speedup"],
        rows,
    )
    report.note(
        "Sharded wins even on one core: per-shard batched publishes and the "
        "grouped MID join cut per-answer broker/aggregator overhead; results "
        "are byte-identical to serial (see tests/runtime/)."
    )
    report.note(
        "Pipelined removes the stage barriers and relays each shard as one "
        "batch record on its shard-aware topics, so it is at least as fast "
        "as sharded even without free-threading."
    )
    report.note(
        "Process answers shards in worker processes from serialized shard "
        "tasks (repro.runtime.wire): on a single core the state round-trip "
        "is pure overhead, with real cores the answer stage escapes the GIL "
        f"and overtakes the thread executors (asserted at >= "
        f"{PROCESS_ASSERT_CORES} cores)."
    )
    report.note("")

    # Acceptance (medians, best-of-3 rounds, tolerance for CI noise):
    # sharded(w4) at least matches serial, pipelined at least matches sharded.
    assert_faster(
        "sharded w4",
        "serial",
        {"executor": "sharded", "workers": 4},
        {"executor": "serial"},
        stats["sharded w4"],
        stats["serial"],
    )
    assert_faster(
        "pipelined w4",
        "sharded w4",
        {"executor": "pipelined", "workers": 4},
        {"executor": "sharded", "workers": 4},
        stats["pipelined w4"],
        stats["sharded w4"],
    )
    # The GIL-escape claim: with real cores, the process executor's best
    # 4-worker configuration beats the pipelined thread executor outright.
    if cpu_count >= PROCESS_ASSERT_CORES:
        process_name = min(
            ("process w4", "process w4 s16"), key=lambda name: stats[name]["median"]
        )
        assert_faster(
            process_name,
            "pipelined w4",
            dict(configs)[process_name],
            {"executor": "pipelined", "workers": 4},
            stats[process_name],
            stats["pipelined w4"],
            tolerance=1.02,
        )
    else:
        report.note(
            f"[{cpu_count} core(s)] process-vs-pipelined assertion skipped: "
            "the process executor needs real cores to pay for state shipping."
        )


def test_staged_engine_overhead_vs_serial(report):
    """The engine's staging machinery must cost ~nothing per epoch.

    ``inline/in-process`` is the staged engine's degenerate configuration:
    one shard answered on the caller thread — the same work as the serial
    reference, plus every piece of engine machinery (plan stage, driver
    dispatch, emit/gate path, StageMetrics, finalize).  If collapsing the
    executor zoo into the engine had added per-epoch overhead, this is where
    it would be nakedly visible, with no pool speedup to hide behind.  The
    engine's per-shard batched transmit and grouped MID join mean it should
    in fact *win*; the assertion grants a small tolerance only for timer
    noise.  (``BENCH_runtime_scaling.json`` keeps its original row set —
    this gate is reported, not archived.)
    """
    serial_stats = measure_epoch_seconds("serial")
    engine_stats = measure_epoch_seconds("inline/in-process", workers=1, shards=1)
    report.title(f"Staged engine overhead ({NUM_CLIENTS} clients, inline driver)")
    report.table(
        ["configuration", "best epoch (ms)", "median (ms)", "mean (ms)"],
        [
            ["serial", *(serial_stats[k] * 1e3 for k in ("best", "median", "mean"))],
            [
                "inline/in-process",
                *(engine_stats[k] * 1e3 for k in ("best", "median", "mean")),
            ],
        ],
    )
    assert_faster(
        "inline engine",
        "serial",
        {"executor": "inline/in-process", "workers": 1, "shards": 1},
        {"executor": "serial"},
        engine_stats,
        serial_stats,
        tolerance=1.10,
    )


# -- multi-query epochs ------------------------------------------------------

MULTI_QUERY_CLIENTS = 400
MULTI_NUM_QUERIES = 4


def build_multi_query_system(executor: str, workers: int = 4):
    """A deployment with MULTI_NUM_QUERIES concurrent queries over one stream.

    Every query runs the same SQL (so the shared answering pass can reuse one
    local table scan) against its own aggregator, channel topics and privacy
    accounting — the many-analysts scenario of the paper.
    """
    system = PrivApproxSystem(
        SystemConfig(
            num_clients=MULTI_QUERY_CLIENTS,
            seed=SEED,
            executor=executor,
            executor_workers=workers,
        )
    )
    rng = random.Random(SEED)
    system.provision_clients(
        [("value", "REAL")],
        lambda i: [
            {"value": rng.gammavariate(2.0, 1.0)} for _ in range(NUM_ROWS_PER_CLIENT)
        ],
    )
    analyst = Analyst("runtime-scaling-multi")
    query_ids = []
    for _ in range(MULTI_NUM_QUERIES):
        query = analyst.create_query(
            "SELECT value FROM private_data WHERE value > 0.5",
            AnswerSpec(
                buckets=RangeBuckets.uniform(0.0, 8.0, NUM_BUCKETS, open_ended=True),
                value_column="value",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(
            analyst,
            query,
            QueryBudget(),
            parameters=ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.6),
        )
        query_ids.append(query.query_id)
    return system, query_ids


def measure_multi_query_epoch_seconds(
    shared: bool, executor: str = "sharded", workers: int = 4
) -> dict:
    """Wall-clock stats for serving all queries for one epoch (1 warmup).

    ``shared=True`` times one ``run_epoch_all`` pass; ``shared=False`` times
    the sequential baseline — one full single-query epoch per query.
    """
    system, query_ids = build_multi_query_system(executor, workers=workers)

    def run(epoch: int) -> None:
        if shared:
            system.run_epoch_all(epoch)
        else:
            for query_id in query_ids:
                system.run_epoch(query_id, epoch)

    run(0)  # warmup: pools, topics, calibration
    times = []
    for epoch in range(1, TIMED_EPOCHS + 1):
        start = time.perf_counter()
        run(epoch)
        times.append(time.perf_counter() - start)
    system.close()
    return {
        "best": min(times),
        "median": statistics.median(times),
        "mean": sum(times) / len(times),
    }


def test_multi_query_shared_pass_beats_sequential_epochs(report):
    """One run_epoch_all pass serving 4 queries vs. 4 run_epoch passes.

    The shared pass walks the client population once, reuses one local table
    scan for all co-subscribed queries and still keeps per-query channels,
    aggregators and RNG streams — so it must beat the sequential baseline
    (median, best-of-3 rounds, the suite's usual tolerance).
    """
    configs = {
        "shared pass (run_epoch_all)": {"shared": True},
        "4 single-query epochs": {"shared": False},
    }
    stats = {
        name: measure_multi_query_epoch_seconds(**config)
        for name, config in configs.items()
    }
    sequential_median = stats["4 single-query epochs"]["median"]

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_multi_query.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {
                "benchmark": "multi_query_epochs",
                "num_clients": MULTI_QUERY_CLIENTS,
                "num_queries": MULTI_NUM_QUERIES,
                "rows_per_client": NUM_ROWS_PER_CLIENT,
                "num_buckets": NUM_BUCKETS,
                "timed_epochs": TIMED_EPOCHS,
                "rows": [
                    {
                        "config": name,
                        "best_ms": entry["best"] * 1e3,
                        "median_ms": entry["median"] * 1e3,
                        "mean_ms": entry["mean"] * 1e3,
                    }
                    for name, entry in stats.items()
                ],
            },
            handle,
            indent=2,
        )

    report.title(
        f"Multi-query epochs ({MULTI_QUERY_CLIENTS} clients x "
        f"{NUM_ROWS_PER_CLIENT} rows, {MULTI_NUM_QUERIES} queries, sharded w4)"
    )
    report.table(
        ["configuration", "best epoch (ms)", "median (ms)", "mean (ms)", "speedup"],
        [
            [
                name,
                entry["best"] * 1e3,
                entry["median"] * 1e3,
                entry["mean"] * 1e3,
                sequential_median / entry["median"],
            ]
            for name, entry in stats.items()
        ],
    )
    report.note(
        "run_epoch_all answers all co-subscribed queries from one pass over "
        "the clients (one shared table scan, per-query RNG streams and "
        "channel topics); the sequential baseline repeats the full "
        "sample -> SQL -> randomize -> encrypt -> transmit -> ingest "
        "pipeline per query.  Results are byte-identical either way "
        "(tests/runtime/test_executor_equivalence.py)."
    )
    report.note("")

    assert_faster(
        "shared pass (run_epoch_all)",
        "4 single-query epochs",
        configs["shared pass (run_epoch_all)"],
        configs["4 single-query epochs"],
        stats["shared pass (run_epoch_all)"],
        stats["4 single-query epochs"],
        measure=measure_multi_query_epoch_seconds,
    )


# -- worker-resident client state (sticky shard→worker affinity) -------------

RESIDENT_EPOCHS = 8  # timed epochs after the bootstrap epoch
RESIDENT_WIRE_SHRINK_FACTOR = 5.0


def measure_resident_epoch_seconds(resident: bool) -> dict:
    """Per-epoch stats for the process executor with residency on or off.

    Epoch 0 is the warmup/bootstrap epoch (worker spawn, full state install);
    the following RESIDENT_EPOCHS epochs are timed.  Returns the usual timing
    stats plus the executor's per-epoch wire-byte ledger: the bootstrap
    epoch's bytes and the median steady-state bytes.
    """
    system, query_id = build_system(
        "process", workers=4, shards=8, resident=resident, checkpoint_every=4
    )
    system.run_epoch(query_id, 0)  # warmup: workers, bootstrap frames, topics
    times = []
    for epoch in range(1, RESIDENT_EPOCHS + 1):
        start = time.perf_counter()
        system.run_epoch(query_id, epoch)
        times.append(time.perf_counter() - start)
    wire = dict(system.executor.epoch_wire_bytes)
    system.close()
    steady = [wire[epoch] for epoch in range(1, RESIDENT_EPOCHS + 1)]
    return {
        "best": min(times),
        "median": statistics.median(times),
        "mean": sum(times) / len(times),
        "bootstrap_wire_bytes": wire[0],
        "steady_wire_bytes_median": statistics.median(steady),
        "steady_wire_bytes": steady,
    }


def test_resident_state_beats_snapshot_shipping(report):
    """Worker-resident state vs per-epoch snapshot shipping (wire v3 payoff).

    Two claims on a 1000-client, 8-timed-epoch run (median, best-of-3
    rounds): the resident process executor is faster than the
    snapshot-shipping process executor — it stops pickling ~5 KB of client
    state per client per direction per epoch — and after the bootstrap epoch
    it moves at least RESIDENT_WIRE_SHRINK_FACTOR times fewer bytes across
    the process border per epoch (deltas + fingerprint acks instead of full
    snapshots both ways; periodic checkpoint epochs included in the ledger).
    """
    stats = {
        "process (snapshot shipping)": measure_resident_epoch_seconds(resident=False),
        "process (resident state)": measure_resident_epoch_seconds(resident=True),
    }
    snapshot = stats["process (snapshot shipping)"]
    resident = stats["process (resident state)"]

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_resident_state.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {
                "benchmark": "resident_state",
                "num_clients": NUM_CLIENTS,
                "rows_per_client": NUM_ROWS_PER_CLIENT,
                "num_buckets": NUM_BUCKETS,
                "timed_epochs": RESIDENT_EPOCHS,
                "checkpoint_every": 4,
                "cpu_count": os.cpu_count() or 1,
                "rows": [
                    {
                        "config": name,
                        "best_ms": entry["best"] * 1e3,
                        "median_ms": entry["median"] * 1e3,
                        "mean_ms": entry["mean"] * 1e3,
                        "bootstrap_wire_bytes": entry["bootstrap_wire_bytes"],
                        "steady_wire_bytes_median": entry["steady_wire_bytes_median"],
                        "steady_wire_bytes": entry["steady_wire_bytes"],
                    }
                    for name, entry in stats.items()
                ],
            },
            handle,
            indent=2,
        )

    report.title(
        f"Worker-resident client state ({NUM_CLIENTS} clients x "
        f"{NUM_ROWS_PER_CLIENT} rows, {RESIDENT_EPOCHS} timed epochs, "
        "process w4 s8, checkpoint every 4)"
    )
    report.table(
        [
            "configuration",
            "best epoch (ms)",
            "median (ms)",
            "wire bytes/epoch (median)",
        ],
        [
            [
                name,
                entry["best"] * 1e3,
                entry["median"] * 1e3,
                entry["steady_wire_bytes_median"],
            ]
            for name, entry in stats.items()
        ],
    )
    shrink = snapshot["steady_wire_bytes_median"] / max(
        1, resident["steady_wire_bytes_median"]
    )
    report.note(
        "Snapshot shipping round-trips every client's full state each epoch; "
        "residency bootstraps once "
        f"({resident['bootstrap_wire_bytes']:,} bytes at epoch 0) and then "
        "ships deltas + fingerprint acks, with full-state acks only on "
        f"checkpoint epochs — {shrink:.1f}x fewer bytes per epoch "
        f"(required: >= {RESIDENT_WIRE_SHRINK_FACTOR}x)."
    )
    report.note("")

    # Wire claim first (deterministic), then the timing claim (noisy, so it
    # gets the best-of-3 re-measurement treatment).
    assert resident["steady_wire_bytes_median"] * RESIDENT_WIRE_SHRINK_FACTOR <= (
        snapshot["steady_wire_bytes_median"]
    ), (
        f"resident wire bytes/epoch {resident['steady_wire_bytes_median']:,} not "
        f">= {RESIDENT_WIRE_SHRINK_FACTOR}x below snapshot shipping's "
        f"{snapshot['steady_wire_bytes_median']:,}"
    )
    assert_faster(
        "process (resident state)",
        "process (snapshot shipping)",
        {"resident": True},
        {"resident": False},
        resident,
        snapshot,
        measure=measure_resident_epoch_seconds,
    )


MESSAGE_SIZE = 64 * 1024


@pytest.fixture(scope="module")
def xor_operands():
    keystream = KeystreamGenerator(seed=b"runtime-scaling")
    return keystream.next_bytes(MESSAGE_SIZE), keystream.next_bytes(MESSAGE_SIZE)


@pytest.mark.benchmark(group="runtime-xor")
def test_xor_keystream_vectorized(benchmark, xor_operands):
    message, key = xor_operands
    result = benchmark(xor_bytes, message, key)
    assert xor_bytes(result, key) == message


@pytest.mark.benchmark(group="runtime-xor")
def test_xor_keystream_scalar_reference(benchmark, xor_operands):
    message, key = xor_operands
    result = benchmark(xor_bytes_scalar, message, key)
    assert result == xor_bytes(message, key)


def test_vectorized_xor_speedup():
    """The word-vectorized XOR must beat the scalar reference (guard).

    The per-implementation timings live in the pytest-benchmark group
    ``runtime-xor`` above; the epoch-runtime report file carries the
    deployment-level numbers.  Best-of-repeats keeps this robust on loaded
    runners; the margin is an order of magnitude, so no tolerance is needed.
    """
    keystream = KeystreamGenerator(seed=b"xor-speedup")
    message = keystream.next_bytes(MESSAGE_SIZE)
    key = keystream.next_bytes(MESSAGE_SIZE)

    def time_fn(fn, repeats):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(message, key)
            best = min(best, time.perf_counter() - start)
        return best

    scalar = time_fn(xor_bytes_scalar, repeats=5)
    vectorized = time_fn(xor_bytes, repeats=20)
    assert vectorized < scalar, (
        f"vectorized XOR ({vectorized * 1e6:.0f} us) must beat the scalar "
        f"reference ({scalar * 1e6:.0f} us) on {MESSAGE_SIZE // 1024} KiB"
    )
