"""Runtime scaling: sharded and pipelined epoch executors vs. serial.

Not a paper figure but an acceptance benchmark for the parallel epoch
runtimes (``repro.runtime``): on a 1000-client deployment the sharded
executor must beat the serial reference wall-clock — on a single-core box the
win comes from per-shard batched broker publishes and the grouped aggregator
join, on a multi-core box shard answering parallelizes on top of that — and
the pipelined executor must be at least as fast as the sharded one: besides
overlapping answering with transmission and ingestion, its shard-aware topics
carry one batch record per shard instead of one record per share, removing
the per-share partition routing (a SHA-1 per share), record construction and
poll bookkeeping.  The XOR benchmarks record the speedup of the
word-vectorized keystream application over the byte-at-a-time scalar
reference.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)
from repro.crypto.prng import KeystreamGenerator
from repro.crypto.xor import xor_bytes, xor_bytes_scalar

NUM_CLIENTS = 1_000
TIMED_EPOCHS = 5
SEED = 7


def build_system(executor: str, workers: int = 4, shards: int | None = None):
    system = PrivApproxSystem(
        SystemConfig(
            num_clients=NUM_CLIENTS,
            seed=SEED,
            executor=executor,
            executor_workers=workers,
            executor_shards=shards,
        )
    )
    rng = random.Random(SEED)
    system.provision_clients(
        [("value", "REAL")], lambda i: [{"value": rng.gammavariate(2.0, 1.0)}]
    )
    analyst = Analyst("runtime-scaling")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets.uniform(0.0, 8.0, 8, open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    system.submit_query(
        analyst,
        query,
        QueryBudget(),
        parameters=ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.6),
    )
    return system, query.query_id


def measure_epoch_seconds(executor: str, workers: int = 4, shards: int | None = None):
    """Best and mean epoch wall-clock over TIMED_EPOCHS epochs (1 warmup)."""
    system, query_id = build_system(executor, workers=workers, shards=shards)
    system.run_epoch(query_id, 0)  # warmup: pools, calibration cache
    times = []
    for epoch in range(1, TIMED_EPOCHS + 1):
        start = time.perf_counter()
        system.run_epoch(query_id, epoch)
        times.append(time.perf_counter() - start)
    system.close()
    return min(times), sum(times) / len(times)


def test_parallel_executors_beat_serial_on_1000_clients(report):
    serial_best, serial_mean = measure_epoch_seconds("serial")
    rows = [["serial", "-", "-", serial_best * 1e3, serial_mean * 1e3, 1.0]]
    sharded = {}
    for workers in (1, 2, 4, 8):
        best, mean = measure_epoch_seconds("sharded", workers=workers)
        sharded[workers] = best
        rows.append(
            ["sharded", workers, workers, best * 1e3, mean * 1e3, serial_best / best]
        )
    best16, mean16 = measure_epoch_seconds("sharded", workers=4, shards=16)
    rows.append(["sharded", 4, 16, best16 * 1e3, mean16 * 1e3, serial_best / best16])
    pipelined = {}
    for workers in (1, 2, 4):
        best, mean = measure_epoch_seconds("pipelined", workers=workers)
        pipelined[workers] = best
        rows.append(
            ["pipelined", workers, workers, best * 1e3, mean * 1e3, serial_best / best]
        )
    bestp16, meanp16 = measure_epoch_seconds("pipelined", workers=4, shards=16)
    rows.append(
        ["pipelined", 4, 16, bestp16 * 1e3, meanp16 * 1e3, serial_best / bestp16]
    )

    report.title(f"Epoch runtime scaling ({NUM_CLIENTS} clients, s=0.9, 8 buckets)")
    report.table(
        ["executor", "workers", "shards", "best epoch (ms)", "mean epoch (ms)", "speedup"],
        rows,
    )
    report.note(
        "Sharded wins even on one core: per-shard batched publishes and the "
        "grouped MID join cut per-answer broker/aggregator overhead; results "
        "are byte-identical to serial (see tests/runtime/)."
    )
    report.note(
        "Pipelined removes the stage barriers and relays each shard as one "
        "batch record on its shard-aware topics — no per-share partition "
        "routing or record framing — so it is at least as fast as sharded "
        "even without free-threading; with multiple real cores the "
        "answer/transmit/ingest overlap adds on top."
    )
    report.note("")

    # Acceptance: the pipelined executor's best configuration is at least as
    # fast as the sharded executor's best (small tolerance for timer noise on
    # loaded CI boxes), and both parallel executors beat the serial reference.
    best_pipelined = min(*pipelined.values(), bestp16)
    best_sharded = min(*sharded.values(), best16)
    assert best_pipelined < serial_best, (
        f"pipelined best epoch {best_pipelined * 1e3:.1f} ms did not "
        f"beat serial {serial_best * 1e3:.1f} ms"
    )
    assert best_pipelined <= best_sharded * 1.02, (
        f"pipelined best epoch {best_pipelined * 1e3:.1f} ms fell behind "
        f"sharded {best_sharded * 1e3:.1f} ms"
    )

    keystream = KeystreamGenerator(seed=b"xor-speedup")
    message = keystream.next_bytes(MESSAGE_SIZE)
    key = keystream.next_bytes(MESSAGE_SIZE)

    def best_of(fn, repeats):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(message, key)
            best = min(best, time.perf_counter() - start)
        return best

    scalar = best_of(xor_bytes_scalar, 5)
    vectorized = best_of(xor_bytes, 20)
    report.title(f"Bulk XOR keystream application ({MESSAGE_SIZE // 1024} KiB)")
    report.table(
        ["implementation", "best time (us)", "speedup"],
        [
            ["scalar (per byte)", scalar * 1e6, 1.0],
            ["vectorized (word-wise)", vectorized * 1e6, scalar / vectorized],
        ],
    )

    # Acceptance: ShardedExecutor(workers=4) beats SerialExecutor wall-clock.
    assert sharded[4] < serial_best, (
        f"sharded(workers=4) best epoch {sharded[4] * 1e3:.1f} ms did not beat "
        f"serial {serial_best * 1e3:.1f} ms"
    )


MESSAGE_SIZE = 64 * 1024


@pytest.fixture(scope="module")
def xor_operands():
    keystream = KeystreamGenerator(seed=b"runtime-scaling")
    return keystream.next_bytes(MESSAGE_SIZE), keystream.next_bytes(MESSAGE_SIZE)


@pytest.mark.benchmark(group="runtime-xor")
def test_xor_keystream_vectorized(benchmark, xor_operands):
    message, key = xor_operands
    result = benchmark(xor_bytes, message, key)
    assert xor_bytes(result, key) == message


@pytest.mark.benchmark(group="runtime-xor")
def test_xor_keystream_scalar_reference(benchmark, xor_operands):
    message, key = xor_operands
    result = benchmark(xor_bytes_scalar, message, key)
    assert result == xor_bytes(message, key)


def test_vectorized_xor_speedup():
    """The word-vectorized XOR must beat the scalar reference (guard).

    The per-implementation timings live in the pytest-benchmark group
    ``runtime-xor`` above; the epoch-runtime report file carries the
    deployment-level numbers.
    """
    keystream = KeystreamGenerator(seed=b"xor-speedup")
    message = keystream.next_bytes(MESSAGE_SIZE)
    key = keystream.next_bytes(MESSAGE_SIZE)

    def time_fn(fn, repeats):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(message, key)
            best = min(best, time.perf_counter() - start)
        return best

    scalar = time_fn(xor_bytes_scalar, repeats=5)
    vectorized = time_fn(xor_bytes, repeats=20)
    assert vectorized < scalar, (
        f"vectorized XOR ({vectorized * 1e6:.0f} us) must beat the scalar "
        f"reference ({scalar * 1e6:.0f} us) on {MESSAGE_SIZE // 1024} KiB"
    )
