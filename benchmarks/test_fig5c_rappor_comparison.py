"""Figure 5(c): differential-privacy level of PrivApprox vs RAPPOR.

Paper setup: the two systems are parameter-matched so their randomized
response processes coincide — PrivApprox uses p = 1 - f, q = 0.5 and RAPPOR
uses one hash function (h = 1); the sampling fraction at PrivApprox clients
sweeps 10%..100%.  Expected shape: RAPPOR's privacy level is flat (it has no
client-side sampling), while PrivApprox's grows with the sampling fraction and
meets RAPPOR's exactly at s = 1; for every s < 1 PrivApprox is strictly
stronger (lower epsilon).

The benchmark also runs the real RAPPOR client/aggregator pipeline so the
comparison is grounded in executable code, not just formulas.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import RapporAggregator, RapporClient, RapporParams
from repro.core.privacy import (
    privapprox_epsilon_for_rappor_mapping,
    randomized_response_epsilon,
)

F = 0.5  # RAPPOR randomization parameter; PrivApprox uses p = 1 - f, q = 0.5.
SAMPLING_FRACTIONS = [0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]


@pytest.mark.benchmark(group="fig5c-local")
def test_rappor_pipeline_runs(benchmark):
    """Exercise the real RAPPOR encode/aggregate path used by the comparison."""
    params = RapporParams(num_bits=16, num_hashes=1, f=F)
    rng = random.Random(3)
    values = [f"v{i % 4}" for i in range(500)]

    def run():
        reports = [RapporClient(params, rng=rng).report(value) for value in values]
        return RapporAggregator(params).estimate_value_counts(reports, ["v0", "v1", "v2", "v3"])

    estimates = benchmark(run)
    assert sum(estimates.values()) == pytest.approx(500, rel=0.3)


@pytest.mark.benchmark(group="fig5c")
def test_fig5c_privacy_level_comparison(benchmark, report):
    rappor_level = randomized_response_epsilon(p=1.0 - F, q=0.5)

    def sweep():
        return {
            s: privapprox_epsilon_for_rappor_mapping(F, s) for s in SAMPLING_FRACTIONS
        }

    privapprox_levels = benchmark(sweep)

    report.title("Figure 5(c): differential-privacy level — PrivApprox vs RAPPOR (f=0.5, h=1)")
    report.table(
        ["sampling fraction", "PrivApprox epsilon_dp", "RAPPOR epsilon_dp"],
        [
            [f"{s:.0%}", round(privapprox_levels[s], 4), round(rappor_level, 4)]
            for s in SAMPLING_FRACTIONS
        ],
    )
    report.note(
        "Paper: RAPPOR's level is constant; PrivApprox's grows with s and is "
        "strictly below RAPPOR's for every s < 1 (stronger privacy)."
    )

    levels = [privapprox_levels[s] for s in SAMPLING_FRACTIONS]
    assert levels == sorted(levels), "PrivApprox epsilon grows with the sampling fraction"
    for s in SAMPLING_FRACTIONS[:-1]:
        assert privapprox_levels[s] < rappor_level
    assert privapprox_levels[1.0] == pytest.approx(rappor_level)
