"""Figure 4(c): accuracy loss vs number of participating clients.

Paper setup: s = 0.9, p = 0.9, q = 0.6, 60% truthful Yes answers; the client
count sweeps 10^1 ... 10^6.  Expected shape: the loss shrinks as the number of
clients grows (roughly like 1/sqrt(n)); below ~100 clients the results have
low utility.
"""

from __future__ import annotations

import random

import pytest

from repro.core.randomized_response import rr_accuracy_loss, simulate_randomized_survey
from repro.core.sampling import SimpleRandomSampler

S, P, Q = 0.9, 0.9, 0.6
YES_FRACTION = 0.6
CLIENT_COUNTS = [10, 100, 1_000, 10_000, 100_000, 1_000_000]
TRIALS = {10: 40, 100: 30, 1_000: 20, 10_000: 10, 100_000: 4, 1_000_000: 2}


def loss_for_clients(num_clients: int, rng: random.Random) -> float:
    true_yes = round(num_clients * YES_FRACTION)
    losses = []
    for _ in range(TRIALS[num_clients]):
        sampler = SimpleRandomSampler(S, rng=rng)
        # Sample the client population; the sampled subpopulation keeps the
        # same Yes fraction in expectation.
        sampled_total = sum(1 for _ in range(num_clients) if sampler.should_participate())
        if sampled_total == 0:
            losses.append(1.0)
            continue
        sampled_yes = round(sampled_total * YES_FRACTION)
        _, rr_estimate = simulate_randomized_survey(sampled_yes, sampled_total, P, Q, rng)
        estimate = (num_clients / sampled_total) * rr_estimate
        losses.append(rr_accuracy_loss(max(true_yes, 1), estimate))
    return sum(losses) / len(losses)


@pytest.mark.benchmark(group="fig4c")
def test_fig4c_accuracy_loss_vs_number_of_clients(benchmark, report):
    rng = random.Random(29)
    benchmark(loss_for_clients, 1_000, rng)

    rng = random.Random(31)
    losses = {n: loss_for_clients(n, rng) for n in CLIENT_COUNTS}

    report.title("Figure 4(c): accuracy loss vs number of clients (s=0.9, p=0.9, q=0.6)")
    report.table(
        ["# clients", "accuracy loss (%)"],
        [[n, round(100 * losses[n], 3)] for n in CLIENT_COUNTS],
    )
    report.note(
        "Paper: utility improves with the number of participating clients; "
        "fewer than ~100 clients gives low-utility results."
    )

    # Loss decreases (weakly) along the sweep and drops sharply from 10 to 10^4.
    assert losses[10] > losses[1_000] > losses[100_000]
    assert losses[10] > 5 * losses[10_000]
    # Few clients -> low utility (loss of several percent or worse).
    assert losses[10] > 0.02
    # Many clients -> high utility (well under 1%).
    assert losses[1_000_000] < 0.01
