"""Figure 6: proxy latency — PrivApprox vs SplitX across client counts.

Paper setup: the latency incurred at proxies for 10^2 ... 10^8 clients, with
SplitX's latency broken into transmission, computation and shuffling.
Expected shape: PrivApprox's latency is roughly an order of magnitude below
SplitX's at every scale; at 10^6 clients the paper reports 40.27 s vs 6.21 s
(a 6.48x speedup).

The benchmark also measures the real PrivApprox proxy relay on a small batch
so the "transmission only" claim is exercised on executable code.
"""

from __future__ import annotations

import pytest

from repro.baselines import PrivApproxLatencyModel, SplitXModel
from repro.core.encryption import AnswerCodec
from repro.core.proxy import ProxyNetwork
from repro.core.query import QueryAnswer
from repro.crypto.prng import KeystreamGenerator

CLIENT_COUNTS = [10**k for k in range(2, 9)]


@pytest.mark.benchmark(group="fig6-local")
def test_privapprox_proxy_relay_local(benchmark):
    codec = AnswerCodec()
    keystream = KeystreamGenerator(seed=b"f6")
    answers = [
        list(
            codec.encrypt(
                QueryAnswer(query_id="analyst-00000001", bits=(1, 0) * 6, epoch=0),
                num_proxies=2,
                keystream=keystream,
            ).shares
        )
        for _ in range(200)
    ]

    def relay():
        network = ProxyNetwork(num_proxies=2)
        for shares in answers:
            network.transmit(shares)
        return network.total_shares_relayed()

    assert benchmark(relay) == 400


@pytest.mark.benchmark(group="fig6")
def test_fig6_latency_comparison(benchmark, report):
    splitx = SplitXModel()
    privapprox = PrivApproxLatencyModel()

    def sweep():
        return [
            (n, splitx.latency(n), privapprox.latency(n)) for n in CLIENT_COUNTS
        ]

    series = benchmark(sweep)

    rows = []
    for n, splitx_breakdown, privapprox_latency in series:
        rows.append(
            [
                f"1e{len(str(n)) - 1}",
                round(splitx_breakdown.transmission_seconds, 4),
                round(splitx_breakdown.computation_seconds, 4),
                round(splitx_breakdown.shuffling_seconds, 4),
                round(splitx_breakdown.total_seconds, 4),
                round(privapprox_latency, 4),
                round(splitx_breakdown.total_seconds / privapprox_latency, 2),
            ]
        )
    report.title("Figure 6: proxy latency (seconds) — SplitX vs PrivApprox")
    report.table(
        [
            "# clients",
            "SplitX transmission",
            "SplitX computation",
            "SplitX shuffling",
            "SplitX total",
            "PrivApprox",
            "speedup",
        ],
        rows,
    )
    report.note(
        "Paper anchors: at 10^6 clients SplitX takes 40.27 s, PrivApprox 6.21 s "
        "(6.48x); PrivApprox stays about an order of magnitude below SplitX."
    )

    for n, splitx_breakdown, privapprox_latency in series:
        assert privapprox_latency < splitx_breakdown.total_seconds
    one_million = dict((n, (s, p)) for n, s, p in series)[10**6]
    assert one_million[0].total_seconds == pytest.approx(40.27, rel=0.1)
    assert one_million[1] == pytest.approx(6.21, rel=0.1)
    assert one_million[0].total_seconds / one_million[1] == pytest.approx(6.48, rel=0.15)
    # Latency grows monotonically with the client count for both systems.
    splitx_totals = [s.total_seconds for _, s, _ in series]
    privapprox_totals = [p for _, _, p in series]
    assert splitx_totals == sorted(splitx_totals)
    assert privapprox_totals == sorted(privapprox_totals)
