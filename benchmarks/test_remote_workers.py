"""Remote TCP workers vs in-process pinned workers: the transport tax.

Not a paper figure but the acceptance benchmark for the remote worker
transport (:mod:`repro.runtime.remote`).  Three claims on a localhost
deployment:

* **Digest identity** — a scenario run on remote workers produces a digest
  byte-identical to the serial reference (the same contract every executor
  satisfies; here it also covers handshake, sealing and reconnect logic).
* **Frame RTT** — the per-frame cost of the sealed channel (HMAC-SHA256
  seal + TCP round trip + verify) measured directly with a minimal
  delta/ack exchange, reported as median microseconds per round trip.
* **Epoch overhead** — per-epoch wall-clock of the resident executor over
  TCP vs over in-process pinned workers.  The remote transport pays the
  socket + MAC tax on the same frames, so the overhead must stay a small
  multiple; the claim asserted is a generous ceiling
  (``REMOTE_OVERHEAD_CEILING``x) because loopback latency on shared CI
  runners varies wildly.

All rows land in ``results/BENCH_remote_workers.json`` for CI archival.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time

from repro.runtime import RemoteWorkerServer, RemoteWorkerTransport, run_scenario
from repro.runtime.scenario import find_scenario
from repro.runtime.wire import ShardBootstrap, ShardDelta, encode_shard_bootstrap, encode_shard_delta

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
KEY = bytes.fromhex("5c" * 32)

RTT_ROUNDS = 400
EPOCH_SCENARIO = "churn-mild"
# Loopback + HMAC on small frames is cheap, but CI loopback latency is noisy;
# the epoch-overhead assertion uses a deliberately generous ceiling.
REMOTE_OVERHEAD_CEILING = 3.0


def start_servers(count: int) -> list[RemoteWorkerServer]:
    servers = []
    for _ in range(count):
        server = RemoteWorkerServer("127.0.0.1", 0, KEY)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
    return servers


def write_key_file(path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(KEY.hex() + "\n")
    return path


def measure_frame_rtt() -> dict:
    """Median seal + send + serve + ack + verify time for a tiny frame.

    The shard is bootstrapped once with a single client, then RTT_ROUNDS
    empty deltas (no answering work: ``query_ids=()``) round-trip through
    the sealed channel — so the measurement isolates transport cost, not
    client answering.
    """
    from repro.core.client import Client, ClientConfig
    from repro.runtime.affinity import shard_fingerprint

    server = start_servers(1)[0]
    try:
        transport = RemoteWorkerTransport([server.address], [KEY])
        client = Client(ClientConfig(client_id="rtt-0", num_proxies=2, seed=1))
        client.create_table([("value", "REAL")])
        transport.send(
            0,
            encode_shard_bootstrap(
                ShardBootstrap(
                    shard_index=0,
                    epoch=0,
                    query_ids=(),
                    client_states=(client.export_state(),),
                )
            ),
        )
        transport.recv(timeout=10.0)
        fingerprint = shard_fingerprint([client])
        delta_frame = encode_shard_delta(
            ShardDelta(
                shard_index=0,
                epoch=0,
                query_ids=(),
                deltas=(None,),
                expected_fingerprint=fingerprint,
                want_state=False,
            )
        )
        times = []
        for _ in range(RTT_ROUNDS):
            start = time.perf_counter()
            transport.send(0, delta_frame)
            transport.recv(timeout=10.0)
            times.append(time.perf_counter() - start)
        transport.close()
    finally:
        server.stop()
    return {
        "rounds": RTT_ROUNDS,
        "frame_bytes": len(delta_frame),
        "best_us": min(times) * 1e6,
        "median_us": statistics.median(times) * 1e6,
        "p99_us": sorted(times)[int(len(times) * 0.99)] * 1e6,
    }


def measure_scenario(remote: bool, key_path: str) -> dict:
    """Run the epoch-overhead scenario resident in-process or over TCP."""
    spec = find_scenario(EPOCH_SCENARIO)
    servers = start_servers(2) if remote else []
    try:
        start = time.perf_counter()
        if remote:
            run = run_scenario(
                spec,
                executor="process",
                remote_workers=[f"{s.address[0]}:{s.address[1]}" for s in servers],
                key_file=key_path,
                checkpoint_every=2,
            )
        else:
            run = run_scenario(
                spec,
                executor="process",
                workers=2,
                resident=True,
                checkpoint_every=2,
            )
        wall = time.perf_counter() - start
    finally:
        for server in servers:
            server.stop()
    return {
        "executor": run.executor_label,
        "digest": run.digest,
        "wall_seconds": wall,
        "epoch_wall_seconds_median": statistics.median(
            stats.wall_seconds for stats in run.epochs
        ),
        "wire_bytes": run.total_wire_bytes,
    }


def test_remote_transport_overhead(report, tmp_path):
    key_path = write_key_file(str(tmp_path / "bench.keys"))
    rtt = measure_frame_rtt()
    serial = run_scenario(find_scenario(EPOCH_SCENARIO), executor="serial")
    resident = measure_scenario(remote=False, key_path=key_path)
    remote = measure_scenario(remote=True, key_path=key_path)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_remote_workers.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {
                "benchmark": "remote_workers",
                "scenario": EPOCH_SCENARIO,
                "cpu_count": os.cpu_count() or 1,
                "frame_rtt": rtt,
                "rows": [
                    {"config": "serial (reference)", "digest": serial.digest},
                    {"config": "resident in-process", **resident},
                    {"config": "resident over TCP", **remote},
                ],
            },
            handle,
            indent=2,
        )

    report.title(
        f"Remote TCP workers ({EPOCH_SCENARIO}: "
        f"{serial.spec.num_clients} clients x {serial.spec.num_epochs} epochs, "
        "2 workers on loopback)"
    )
    report.table(
        ["configuration", "median epoch (ms)", "total wall (s)", "wire bytes"],
        [
            [
                name,
                entry["epoch_wall_seconds_median"] * 1e3,
                entry["wall_seconds"],
                entry["wire_bytes"],
            ]
            for name, entry in [
                ("resident in-process", resident),
                ("resident over TCP", remote),
            ]
        ],
    )
    report.note(
        f"Sealed frame RTT on loopback ({rtt['frame_bytes']}-byte empty delta, "
        f"{rtt['rounds']} rounds): median {rtt['median_us']:.0f} us, "
        f"best {rtt['best_us']:.0f} us, p99 {rtt['p99_us']:.0f} us — "
        "seal (HMAC-SHA256) + TCP round trip + verify + serve."
    )
    report.note(
        "The remote executor runs the identical epoch logic "
        "(RemoteResidentExecutor only swaps the router), so the digest "
        "contract holds across the socket."
    )
    report.note("")

    # The correctness claims are hard assertions; the timing claim uses a
    # generous ceiling because shared-runner loopback latency is noisy.
    assert remote["digest"] == serial.digest, "remote digest diverged from serial"
    assert resident["digest"] == serial.digest, "resident digest diverged from serial"
    assert remote["epoch_wall_seconds_median"] <= (
        resident["epoch_wall_seconds_median"] * REMOTE_OVERHEAD_CEILING
        + 0.050  # absolute floor: tiny epochs are dominated by fixed costs
    ), (
        f"remote epoch median {remote['epoch_wall_seconds_median'] * 1e3:.1f} ms "
        f"exceeded {REMOTE_OVERHEAD_CEILING}x the in-process resident median "
        f"{resident['epoch_wall_seconds_median'] * 1e3:.1f} ms"
    )
