"""Table 3: throughput of the client-side query answering pipeline.

The client pipeline has three stages — database read (SQLite in the paper,
:mod:`repro.sqldb` here), randomized response and XOR encryption — and the
paper reports each stage's ops/sec plus the combined total on a phone, a
laptop and a server, observing that the database read is the bottleneck.

The benchmark measures each stage of the *real* implementation on this
machine (group ``table3-local``) and prints the device-calibrated table,
asserting the bottleneck ordering the paper reports.
"""

from __future__ import annotations

import random

import pytest

from repro.core.encryption import AnswerCodec
from repro.core.query import QueryAnswer
from repro.core.randomized_response import RandomizedResponder
from repro.crypto.prng import KeystreamGenerator
from repro.netsim import DeviceProfile, OperationKind
from repro.sqldb import Database

ANSWER_BITS = 12


@pytest.fixture(scope="module")
def client_database() -> Database:
    db = Database()
    db.create_table("private_data", [("speed", "REAL"), ("location", "TEXT")])
    rng = random.Random(3)
    db.insert_rows(
        "private_data",
        [{"speed": rng.uniform(0, 100), "location": "San Francisco"} for _ in range(500)],
    )
    return db


@pytest.mark.benchmark(group="table3-local")
def test_database_read_local(benchmark, client_database):
    result = benchmark(
        client_database.query,
        "SELECT speed FROM private_data WHERE location = 'San Francisco'",
    )
    assert len(result) == 500


@pytest.mark.benchmark(group="table3-local")
def test_randomized_response_local(benchmark):
    responder = RandomizedResponder(p=0.9, q=0.6, rng=random.Random(5))
    bits = [1] + [0] * (ANSWER_BITS - 1)
    randomized = benchmark(responder.randomize_vector, bits)
    assert len(randomized) == ANSWER_BITS


@pytest.mark.benchmark(group="table3-local")
def test_xor_encryption_local(benchmark):
    codec = AnswerCodec()
    answer = QueryAnswer(query_id="analyst-00000001", bits=tuple([1] + [0] * (ANSWER_BITS - 1)))
    keystream = KeystreamGenerator(seed=b"t3")
    encrypted = benchmark(codec.encrypt, answer, 2, keystream)
    assert encrypted.num_shares == 2


@pytest.mark.benchmark(group="table3")
def test_table3_client_throughput_report(benchmark, report):
    pipeline = [
        OperationKind.SQLITE_READ,
        OperationKind.RANDOMIZED_RESPONSE,
        OperationKind.XOR_ENCRYPTION,
    ]

    def build_rows():
        rows = []
        devices = DeviceProfile.all_devices()
        for operation, label in [
            (OperationKind.SQLITE_READ, "Database read"),
            (OperationKind.RANDOMIZED_RESPONSE, "Randomized response"),
            (OperationKind.XOR_ENCRYPTION, "XOR encryption"),
        ]:
            rows.append([label] + [round(d.ops_per_second(operation)) for d in devices])
        rows.append(["Total"] + [round(d.pipeline_ops_per_second(pipeline)) for d in devices])
        return rows

    rows = benchmark(build_rows)

    report.title("Table 3: client-side throughput (# operations/sec)")
    report.table(["stage", "phone", "laptop", "server"], rows)
    report.note(
        "Paper totals: 1,116 (phone), 17,236 (laptop), 22,026 (server); the "
        "database read dominates the pipeline cost."
    )

    db_row, rr_row, xor_row, total_row = rows
    for column in range(1, 4):
        # The database read is the slowest stage...
        assert db_row[column] <= rr_row[column]
        # ... so the total is close to (and below) the database read rate.
        assert total_row[column] <= db_row[column]
        assert total_row[column] >= 0.5 * db_row[column]
    # Paper totals are reproduced by the calibrated model within 10%.
    assert total_row[1] == pytest.approx(1_116, rel=0.1)
    assert total_row[2] == pytest.approx(17_236, rel=0.1)
    assert total_row[3] == pytest.approx(22_026, rel=0.1)
