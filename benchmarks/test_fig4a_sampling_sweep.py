"""Figure 4(a): accuracy loss vs sampling fraction for nine (p, q) settings.

Paper setup: 10,000 original answers, 60% Yes; sampling fraction swept over
10..100%; p, q each in {0.3, 0.6, 0.9}.

Expected shape (asserted): the accuracy loss decreases as the sampling
fraction grows, for every (p, q) setting, with diminishing returns past ~80%;
losses stay within a few percent.
"""

from __future__ import annotations

import random

import pytest

from repro.core.randomized_response import rr_accuracy_loss, simulate_randomized_survey
from repro.core.sampling import SimpleRandomSampler
from repro.datasets import generate_binary_answers

TOTAL_ANSWERS = 10_000
YES_FRACTION = 0.6
SAMPLING_FRACTIONS = [0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
PQ_SETTINGS = [(p, q) for p in (0.3, 0.6, 0.9) for q in (0.3, 0.6, 0.9)]
TRIALS = 6


def accuracy_loss_at(sampling_fraction: float, p: float, q: float, seed: int) -> float:
    """Mean accuracy loss of the sampled + randomized estimate."""
    rng = random.Random(seed)
    population = generate_binary_answers(TOTAL_ANSWERS, YES_FRACTION, seed=seed).as_list()
    true_yes = sum(population)
    losses = []
    for _ in range(TRIALS):
        sampler = SimpleRandomSampler(sampling_fraction, rng=rng)
        sampled = sampler.select(population)
        if not sampled:
            losses.append(1.0)
            continue
        _, rr_estimate = simulate_randomized_survey(sum(sampled), len(sampled), p, q, rng)
        estimate = (TOTAL_ANSWERS / len(sampled)) * rr_estimate
        losses.append(rr_accuracy_loss(true_yes, estimate))
    return sum(losses) / len(losses)


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_accuracy_loss_vs_sampling_fraction(benchmark, report):
    benchmark(accuracy_loss_at, 0.6, 0.6, 0.6, 7)

    series: dict[tuple, list[float]] = {}
    for p, q in PQ_SETTINGS:
        series[(p, q)] = [
            accuracy_loss_at(s, p, q, seed=int(s * 100) + int(p * 10) + int(q * 100))
            for s in SAMPLING_FRACTIONS
        ]

    rows = []
    for (p, q), losses in series.items():
        rows.append([p, q] + [round(100 * loss, 3) for loss in losses])
    report.title("Figure 4(a): accuracy loss (%) vs sampling fraction")
    report.table(
        ["p", "q"] + [f"s={s:.0%}" for s in SAMPLING_FRACTIONS],
        rows,
    )
    report.note(
        "Paper: loss falls with the sampling fraction for every (p, q), with "
        "diminishing returns beyond s = 80%; all losses below ~8%."
    )

    for (p, q), losses in series.items():
        # Loss at 10% sampling is clearly worse than at 100% sampling.
        assert losses[-1] < losses[0], f"sampling must improve utility for p={p}, q={q}"
        # Diminishing returns: the gain from 80% -> 100% is smaller than 10% -> 40%.
        assert (losses[0] - losses[2]) > (losses[4] - losses[6]) - 1e-9
        # Losses stay within a few percent at full sampling.
        assert losses[-1] < 0.05
