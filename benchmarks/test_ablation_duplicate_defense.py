"""Ablation: duplicate-answer defense on vs off under a replay attack.

The paper's threat model includes clients that "answer a query many times in
an attempt to distort the query result" (Section 3.2.4).  This ablation runs
the same replay attack against two aggregators — one with the participation
token admission control, one without — and compares how far the attacker can
move the estimated histogram.

Shape asserted: without the defense the attacker inflates its bucket roughly
in proportion to the number of replays; with the defense the distortion is
bounded by a single answer.
"""

from __future__ import annotations

import pytest

from repro.analytics import histogram_accuracy_loss
from repro.core import (
    Aggregator,
    AnswerAdmissionController,
    AnswerSpec,
    ExecutionParameters,
    RangeBuckets,
)
from repro.core.encryption import AnswerCodec
from repro.core.query import Query, QueryAnswer
from repro.crypto.prng import KeystreamGenerator

NUM_HONEST = 200
NUM_REPLAYS = 300


def make_query() -> Query:
    return Query(
        query_id="analyst-00000001",
        sql="SELECT v FROM private_data",
        answer_spec=AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=True), value_column="v"
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )


def run_attack(with_defense: bool):
    """Replay attack against one aggregator; returns (result, exact counts)."""
    query = make_query()
    aggregator = Aggregator(
        query=query,
        parameters=ExecutionParameters(sampling_fraction=1.0, p=1.0, q=0.5),
        total_clients=NUM_HONEST + 1,
        admission=AnswerAdmissionController() if with_defense else None,
    )
    codec = AnswerCodec()
    keystream = KeystreamGenerator(seed=b"attack")
    shares = []
    for i in range(NUM_HONEST):
        bits = (1, 0, 0) if i % 2 == 0 else (0, 1, 0)
        answer = QueryAnswer(query_id=query.query_id, bits=bits, epoch=0, token=f"honest-{i}")
        shares.extend(codec.encrypt(answer, num_proxies=2, keystream=keystream).shares)
    # The attacker controls one client and replays its bucket-2 answer.
    for _ in range(NUM_REPLAYS):
        malicious = QueryAnswer(
            query_id=query.query_id, bits=(0, 0, 1), epoch=0, token="attacker"
        )
        shares.extend(codec.encrypt(malicious, num_proxies=2, keystream=keystream).shares)
    aggregator.ingest_shares(shares, epoch=0)
    result = aggregator.flush()[0]
    exact = [NUM_HONEST // 2, NUM_HONEST // 2, 1]  # the attacker is entitled to one answer
    return result, exact


@pytest.mark.benchmark(group="ablation-duplicates")
def test_ablation_duplicate_defense(benchmark, report):
    benchmark(run_attack, True)

    undefended, exact = run_attack(with_defense=False)
    defended, _ = run_attack(with_defense=True)

    undefended_loss = histogram_accuracy_loss(exact, undefended.histogram.estimates())
    defended_loss = histogram_accuracy_loss(exact, defended.histogram.estimates())

    report.title("Ablation: duplicate-answer defense under a replay attack")
    report.table(
        ["configuration", "attacker bucket estimate", "histogram distortion (%)", "answers admitted"],
        [
            [
                "no defense",
                round(undefended.histogram.estimates()[2], 1),
                round(100 * undefended_loss, 2),
                undefended.num_answers,
            ],
            [
                "participation tokens",
                round(defended.histogram.estimates()[2], 1),
                round(100 * defended_loss, 2),
                defended.num_answers,
            ],
        ],
    )
    report.note(
        f"The attacker replays its answer {NUM_REPLAYS} times.  Without the "
        "defense the replayed bucket absorbs all of them; with participation "
        "tokens only one answer per (client, epoch) is admitted."
    )

    assert undefended.num_answers == NUM_HONEST + NUM_REPLAYS
    assert defended.num_answers == NUM_HONEST + 1
    assert undefended.histogram.estimates()[2] > 50 * defended.histogram.estimates()[2]
    assert defended_loss < 0.05
    assert undefended_loss > 0.5
