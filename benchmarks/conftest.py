"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing (which exercises the real code path), each benchmark
writes the rows/series the paper reports to ``benchmarks/results/<name>.txt``
so the output can be compared against the published numbers (see
EXPERIMENTS.md for the side-by-side).
"""

from __future__ import annotations

import os
from typing import Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_collection_modifyitems(items):
    """Tag everything under benchmarks/ with the ``bench`` marker.

    Tier-1 runs never collect this directory (``testpaths`` points at
    ``tests/``); the marker lets explicit benchmark invocations still select
    subsets with ``-m bench`` or ``-m 'not bench'``.  The hook sees the whole
    session's items (even from this subdirectory conftest), so only items
    that actually live under benchmarks/ are marked.
    """
    here = os.path.dirname(__file__)
    for item in items:
        if os.path.commonpath([here, str(item.path)]) == here:
            item.add_marker(pytest.mark.bench)


class ReportWriter:
    """Formats benchmark output as fixed-width tables and persists it."""

    def __init__(self, name: str):
        self.name = name
        self._lines: list[str] = []

    def title(self, text: str) -> None:
        self._lines.append(text)
        self._lines.append("=" * len(text))

    def table(self, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
        """Append a fixed-width table."""
        str_rows = [[_format_cell(cell) for cell in row] for row in rows]
        widths = [
            max(len(str(headers[i])), max((len(r[i]) for r in str_rows), default=0))
            for i in range(len(headers))
        ]
        header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
        self._lines.append(header_line)
        self._lines.append("-" * len(header_line))
        for row in str_rows:
            self._lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        self._lines.append("")

    def note(self, text: str) -> None:
        self._lines.append(text)

    def flush(self) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        content = "\n".join(self._lines) + "\n"
        path = os.path.join(RESULTS_DIR, f"{self.name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        print()
        print(content)
        return path


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


@pytest.fixture
def report(request) -> ReportWriter:
    """A report writer named after the requesting benchmark module."""
    module_name = request.module.__name__.rsplit(".", maxsplit=1)[-1]
    writer = ReportWriter(module_name)
    yield writer
    writer.flush()
