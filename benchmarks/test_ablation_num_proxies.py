"""Ablation: number of proxies vs client cost, traffic and privacy.

PrivApprox needs at least two non-colluding proxies; adding more strengthens
the non-collusion assumption (an adversary must now compromise all of them)
but costs the client one extra key share per proxy and multiplies the
client-to-proxy traffic.  The privacy of the randomized answers themselves is
unchanged — it comes from sampling + randomized response, not from the number
of proxies.

Shape asserted: per-answer bytes and encryption time grow linearly with the
proxy count; decryption at the aggregator still succeeds for every
configuration; epsilon is independent of the proxy count.
"""

from __future__ import annotations

import time

import pytest

from repro.core.encryption import AnswerCodec
from repro.core.privacy import zero_knowledge_epsilon
from repro.core.query import QueryAnswer
from repro.crypto.prng import KeystreamGenerator
from repro.netsim import NetworkModel

PROXY_COUNTS = [2, 3, 4, 5]
ANSWER_BITS = 88
NUM_ANSWERS = 400


def encrypt_batch(num_proxies: int) -> tuple[float, int]:
    """Encrypt a batch of answers; returns (elapsed seconds, total share bytes)."""
    codec = AnswerCodec()
    keystream = KeystreamGenerator(seed=b"ablation")
    answer = QueryAnswer(query_id="analyst-00000001", bits=tuple([1, 0] * (ANSWER_BITS // 2)))
    start = time.perf_counter()
    total_bytes = 0
    for _ in range(NUM_ANSWERS):
        encrypted = codec.encrypt(answer, num_proxies=num_proxies, keystream=keystream)
        total_bytes += encrypted.total_bytes()
        assert codec.decrypt(list(encrypted.shares)).bits == answer.bits
    elapsed = time.perf_counter() - start
    return elapsed, total_bytes


@pytest.mark.benchmark(group="ablation-proxies")
def test_ablation_number_of_proxies(benchmark, report):
    benchmark(encrypt_batch, 2)

    rows = []
    measurements = {}
    for count in PROXY_COUNTS:
        elapsed, total_bytes = encrypt_batch(count)
        traffic = NetworkModel(num_proxies=count).traffic(
            num_answers_total=1_000_000, sampling_fraction=0.6, answer_bits=ANSWER_BITS
        )
        epsilon = zero_knowledge_epsilon(0.9, 0.6, 0.6)
        measurements[count] = (elapsed, total_bytes, traffic.total_gigabytes, epsilon)
        rows.append(
            [
                count,
                round(1000 * elapsed / NUM_ANSWERS, 4),
                total_bytes // NUM_ANSWERS,
                round(traffic.total_gigabytes, 3),
                round(epsilon, 4),
            ]
        )

    report.title("Ablation: number of proxies")
    report.table(
        [
            "# proxies",
            "client encrypt+decrypt time per answer (ms)",
            "bytes per answer",
            "traffic at 1M clients, s=0.6 (GB)",
            "epsilon_zk (s=0.6, p=0.9, q=0.6)",
        ],
        rows,
    )
    report.note(
        "More proxies strengthen non-collusion but cost one extra share per "
        "answer; the privacy level itself is independent of the proxy count."
    )

    # Per-answer wire size grows linearly with the proxy count.
    bytes_per_answer = {count: measurements[count][1] / NUM_ANSWERS for count in PROXY_COUNTS}
    assert bytes_per_answer[4] == pytest.approx(2 * bytes_per_answer[2], rel=0.05)
    # Modelled traffic grows proportionally as well.
    assert measurements[5][2] == pytest.approx(2.5 * measurements[2][2], rel=0.05)
    # The privacy level does not depend on the number of proxies.
    assert len({measurements[count][3] for count in PROXY_COUNTS}) == 1
