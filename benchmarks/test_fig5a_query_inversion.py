"""Figure 5(a): accuracy loss of native vs inverted queries vs the Yes fraction.

Paper setup: 10,000 answers; s = 0.9, p = 0.9, q = 0.6; the truthful "Yes"
fraction sweeps 10%..90%.  Expected shape: the native query's loss is highest
when the Yes fraction is far below q and shrinks as the fraction approaches
~60%; the inverted query mirrors that behaviour, so for small Yes fractions
inversion reduces the loss substantially (the paper quotes 2.54% -> 0.4% at a
10% Yes fraction).
"""

from __future__ import annotations

import random

import pytest

from repro.analytics import accuracy_loss
from repro.core.inversion import InvertedEstimator, should_invert
from repro.core.randomized_response import RandomizedResponder, estimate_true_yes
from repro.core.sampling import SimpleRandomSampler

TOTAL_ANSWERS = 10_000
S, P, Q = 0.9, 0.9, 0.6
YES_FRACTIONS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
TRIALS = 8


def run_survey(yes_fraction: float, inverted: bool, rng: random.Random) -> float:
    """Mean accuracy loss of the (native or inverted) estimate of the Yes count."""
    true_yes = round(TOTAL_ANSWERS * yes_fraction)
    losses = []
    for _ in range(TRIALS):
        sampler = SimpleRandomSampler(S, rng=rng)
        responder = RandomizedResponder(p=P, q=Q, rng=rng)
        sampled_total = 0
        observed = 0
        for i in range(TOTAL_ANSWERS):
            if not sampler.should_participate():
                continue
            sampled_total += 1
            truthful = 1 if i < true_yes else 0
            bit = (1 - truthful) if inverted else truthful
            observed += responder.randomize_bit(bit)
        if sampled_total == 0:
            losses.append(1.0)
            continue
        if inverted:
            estimator = InvertedEstimator(p=P, q=Q)
            estimate_sampled = estimator.estimate_yes(observed, sampled_total)
        else:
            estimate_sampled = estimate_true_yes(observed, sampled_total, P, Q)
        estimate = (TOTAL_ANSWERS / sampled_total) * estimate_sampled
        losses.append(accuracy_loss(max(true_yes, 1), estimate))
    return sum(losses) / len(losses)


@pytest.mark.benchmark(group="fig5a")
def test_fig5a_native_vs_inverted_query(benchmark, report):
    benchmark(run_survey, 0.1, False, random.Random(3))

    rng = random.Random(37)
    rows = []
    native = {}
    inverted = {}
    for fraction in YES_FRACTIONS:
        native[fraction] = run_survey(fraction, inverted=False, rng=rng)
        inverted[fraction] = run_survey(fraction, inverted=True, rng=rng)
        rows.append(
            [
                f"{fraction:.0%}",
                round(100 * native[fraction], 3),
                round(100 * inverted[fraction], 3),
                should_invert(fraction, Q),
            ]
        )

    report.title("Figure 5(a): accuracy loss vs truthful Yes fraction (s=0.9, p=0.9, q=0.6)")
    report.table(
        ["Yes fraction", "native query loss (%)", "inverted query loss (%)", "invert?"], rows
    )
    report.note(
        "Paper: at a 10% Yes fraction the native loss is ~2.54% and inversion "
        "reduces it to ~0.4%; the native loss shrinks as the fraction nears q."
    )

    # Inversion helps substantially for rare-Yes queries (the paper reports a
    # ~6x reduction; the Monte-Carlo estimate here is noisier, so we assert a
    # conservative >1.5x improvement).
    assert inverted[0.1] < native[0.1]
    assert native[0.1] / max(inverted[0.1], 1e-6) > 1.5
    # The native query is better (or comparable) when the Yes fraction is large.
    assert native[0.9] <= inverted[0.9] + 0.01
    # The native loss at a 10% Yes fraction is clearly worse than near 60%.
    assert native[0.1] > native[0.6]
    # The decision rule agrees with the measurement at the extremes.
    assert should_invert(0.1, Q)
    assert not should_invert(0.6, Q)
