"""Figure 9: network traffic and end-to-end latency vs sampling fraction.

Paper setup: the taxi and electricity workloads replayed at different
client-side sampling fractions; Figure 9(a) reports the total client-to-proxy
network traffic and 9(b) the latency of processing the dataset.

Expected shape: both traffic and latency fall roughly proportionally with the
sampling fraction; at s = 0.6 the paper measures a ~1.6x traffic reduction and
a ~1.66-1.68x latency speedup relative to no sampling.
"""

from __future__ import annotations

import pytest

from repro.datasets import ELECTRICITY_BUCKETS, TAXI_DISTANCE_BUCKETS
from repro.netsim import NetworkModel

SAMPLING_FRACTIONS = [0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
NUM_ANSWERS = 30_000_000  # answers replayed per workload
WORKLOADS = {
    "NYC Taxi": TAXI_DISTANCE_BUCKETS.num_buckets,
    "Electricity": ELECTRICITY_BUCKETS.num_buckets,
}


@pytest.mark.benchmark(group="fig9")
def test_fig9_network_traffic_and_latency(benchmark, report):
    model = NetworkModel()

    def sweep():
        out = {}
        for workload, buckets in WORKLOADS.items():
            out[workload] = {
                "traffic": model.traffic_sweep(NUM_ANSWERS, SAMPLING_FRACTIONS, buckets),
                "latency": model.latency_sweep(NUM_ANSWERS, SAMPLING_FRACTIONS, buckets),
            }
        return out

    series = benchmark(sweep)

    traffic_rows = []
    latency_rows = []
    for index, fraction in enumerate(SAMPLING_FRACTIONS):
        traffic_rows.append(
            [
                f"{fraction:.0%}",
                round(series["NYC Taxi"]["traffic"][index].total_gigabytes, 2),
                round(series["Electricity"]["traffic"][index].total_gigabytes, 2),
            ]
        )
        latency_rows.append(
            [
                f"{fraction:.0%}",
                round(series["NYC Taxi"]["latency"][index].total_seconds, 2),
                round(series["Electricity"]["latency"][index].total_seconds, 2),
            ]
        )

    report.title("Figure 9: network traffic and latency vs sampling fraction")
    report.note("(a) total client-to-proxy traffic (GB)")
    report.table(["sampling fraction", "NYC Taxi", "Electricity"], traffic_rows)
    report.note("(b) end-to-end processing latency (seconds)")
    report.table(["sampling fraction", "NYC Taxi", "Electricity"], latency_rows)
    report.note(
        "Paper: at s = 0.6 the traffic shrinks by ~1.62x (taxi) / 1.58x "
        "(electricity) and the latency by ~1.68x / 1.66x versus no sampling."
    )

    for workload in WORKLOADS:
        traffic = [r.total_bytes for r in series[workload]["traffic"]]
        latency = [r.total_seconds for r in series[workload]["latency"]]
        assert traffic == sorted(traffic)
        assert latency == sorted(latency)
        # The s = 0.6 point gives roughly the paper's 1.6x reduction.
        full_traffic = series[workload]["traffic"][-1]
        sampled_traffic = series[workload]["traffic"][3]
        assert sampled_traffic.reduction_versus(full_traffic) == pytest.approx(1.0 / 0.6, rel=0.05)
        full_latency = series[workload]["latency"][-1]
        sampled_latency = series[workload]["latency"][3]
        assert sampled_latency.speedup_versus(full_latency) == pytest.approx(1.0 / 0.6, rel=0.1)
    # The electricity workload (smaller answers) generates less traffic.
    assert (
        series["Electricity"]["traffic"][-1].total_bytes
        < series["NYC Taxi"]["traffic"][-1].total_bytes
    )
