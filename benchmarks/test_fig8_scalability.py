"""Figure 8: proxy and aggregator throughput — scale-up and scale-out.

Paper setup: proxy throughput measured with 2-8 cores (scale-up) and 1-4
nodes (scale-out); aggregator throughput with 2-8 cores and 1-20 nodes; both
for the taxi and electricity workloads (the latter has smaller messages).

Expected shape: throughput grows near-linearly with cores and nodes; the
proxies are much faster than the aggregator (which pays for the join and the
analytics); the electricity workload achieves higher proxy throughput because
its messages are smaller, while the aggregator is largely insensitive to the
message size.

The benchmark also measures the real in-memory broker to confirm the relay
path scales with partition count on this machine.
"""

from __future__ import annotations

import pytest

from repro.core.encryption import AnswerCodec
from repro.core.query import QueryAnswer
from repro.crypto.prng import KeystreamGenerator
from repro.netsim import ClusterTier
from repro.pubsub import BrokerCluster, Producer

CORE_COUNTS = [2, 4, 6, 8]
PROXY_NODE_COUNTS = [1, 2, 3, 4]
AGGREGATOR_NODE_COUNTS = [1, 5, 10, 15, 20]
TAXI_MESSAGE_BYTES = 88 // 8 + 48      # 11 distance buckets
ELECTRICITY_MESSAGE_BYTES = 56 // 8 + 48  # 7 consumption buckets


@pytest.mark.benchmark(group="fig8-local")
def test_broker_relay_throughput_local(benchmark):
    codec = AnswerCodec()
    keystream = KeystreamGenerator(seed=b"f8")
    shares = []
    for i in range(200):
        answer = QueryAnswer(query_id="analyst-00000001", bits=(1, 0) * 6, epoch=0)
        shares.extend(codec.encrypt(answer, num_proxies=2, keystream=keystream).shares)

    def publish_all():
        cluster = BrokerCluster(num_brokers=4)
        cluster.create_topic("answers", num_partitions=8)
        producer = Producer(cluster)
        for share in shares:
            producer.send("answers", share, key=share.message_id)
        return cluster.total_records()

    assert benchmark(publish_all) == 400


@pytest.mark.benchmark(group="fig8")
def test_fig8_scalability_report(benchmark, report):
    proxy = ClusterTier.proxy_tier()
    aggregator = ClusterTier.aggregator_tier()

    def build_series():
        return {
            "proxy_scale_up": {
                workload: proxy.scale_up_series(CORE_COUNTS, size)
                for workload, size in (("taxi", TAXI_MESSAGE_BYTES), ("electricity", ELECTRICITY_MESSAGE_BYTES))
            },
            "proxy_scale_out": {
                workload: proxy.scale_out_series(PROXY_NODE_COUNTS, size)
                for workload, size in (("taxi", TAXI_MESSAGE_BYTES), ("electricity", ELECTRICITY_MESSAGE_BYTES))
            },
            "aggregator_scale_up": {
                workload: aggregator.scale_up_series(CORE_COUNTS, size)
                for workload, size in (("taxi", TAXI_MESSAGE_BYTES), ("electricity", ELECTRICITY_MESSAGE_BYTES))
            },
            "aggregator_scale_out": {
                workload: aggregator.scale_out_series(AGGREGATOR_NODE_COUNTS, size)
                for workload, size in (("taxi", TAXI_MESSAGE_BYTES), ("electricity", ELECTRICITY_MESSAGE_BYTES))
            },
        }

    series = benchmark(build_series)

    report.title("Figure 8: throughput (K messages/sec) at proxies and aggregator")
    for label, key, axis in (
        ("Proxy scale-up (1 node)", "proxy_scale_up", CORE_COUNTS),
        ("Proxy scale-out (8 cores/node)", "proxy_scale_out", PROXY_NODE_COUNTS),
        ("Aggregator scale-up (1 node)", "aggregator_scale_up", CORE_COUNTS),
        ("Aggregator scale-out (8 cores/node)", "aggregator_scale_out", AGGREGATOR_NODE_COUNTS),
    ):
        rows = []
        for index, axis_value in enumerate(axis):
            rows.append(
                [
                    axis_value,
                    round(series[key]["taxi"][index].throughput_k_per_sec, 1),
                    round(series[key]["electricity"][index].throughput_k_per_sec, 1),
                ]
            )
        report.note(label)
        report.table(["cores/nodes", "NYC Taxi", "Electricity"], rows)
    report.note(
        "Paper: both tiers scale near-linearly; proxies reach ~2.5M answers/sec "
        "on 4 nodes; the aggregator is slower (join + analytics) and largely "
        "insensitive to message size."
    )

    # Near-linear monotone scaling everywhere.
    for key in series:
        for workload in ("taxi", "electricity"):
            values = [r.throughput_msgs_per_sec for r in series[key][workload]]
            assert values == sorted(values)
    # Proxies outperform the aggregator per configuration.
    assert (
        series["proxy_scale_up"]["taxi"][-1].throughput_msgs_per_sec
        > series["aggregator_scale_up"]["taxi"][-1].throughput_msgs_per_sec
    )
    # The electricity workload (smaller messages) gives higher proxy throughput...
    assert (
        series["proxy_scale_out"]["electricity"][-1].throughput_msgs_per_sec
        >= series["proxy_scale_out"]["taxi"][-1].throughput_msgs_per_sec
    )
    # ...but similar aggregator throughput (message size matters less there).
    taxi_aggregator = series["aggregator_scale_out"]["taxi"][-1].throughput_msgs_per_sec
    electricity_aggregator = series["aggregator_scale_out"]["electricity"][-1].throughput_msgs_per_sec
    assert electricity_aggregator / taxi_aggregator < 1.1
    # Scale-up from 2 to 8 cores delivers at least a 2.5x improvement (near-linear).
    scale_up = series["proxy_scale_up"]["taxi"]
    assert scale_up[-1].throughput_msgs_per_sec / scale_up[0].throughput_msgs_per_sec > 2.5
