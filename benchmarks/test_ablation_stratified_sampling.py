"""Ablation: stratified sampling vs simple random sampling on skewed strata.

The paper's body assumes all client streams share one distribution and defers
stratified sampling to the technical report.  This ablation quantifies what
stratification buys when the assumption is violated: a small stratum of
heavy-consumption clients next to a large stratum of light ones.

Shape asserted: both estimators are roughly unbiased, but the stratified
estimator's error is consistently smaller on the skewed population.
"""

from __future__ import annotations

import random

import pytest

from repro.core.sampling import SimpleRandomSampler, StratifiedSampler, estimate_sum

SAMPLING_FRACTION = 0.2
TRIALS = 30


def build_population(rng: random.Random) -> dict[str, list[float]]:
    return {
        "heavy": [rng.uniform(80.0, 120.0) for _ in range(400)],
        "light": [rng.uniform(0.0, 2.0) for _ in range(7_600)],
    }


def srs_error(population: list[float], truth: float, rng: random.Random) -> float:
    sampler = SimpleRandomSampler(SAMPLING_FRACTION, rng=rng)
    sample = sampler.select(population)
    estimate = estimate_sum(sample, population_size=len(population)).estimate
    return abs(estimate - truth) / truth


def stratified_error(strata: dict[str, list[float]], truth: float, rng: random.Random) -> float:
    sampler = StratifiedSampler(SAMPLING_FRACTION, rng=rng)
    estimate = sampler.estimate(strata).estimate
    return abs(estimate - truth) / truth


@pytest.mark.benchmark(group="ablation-stratified")
def test_ablation_stratified_vs_srs(benchmark, report):
    rng = random.Random(47)
    strata = build_population(rng)
    population = strata["heavy"] + strata["light"]
    truth = sum(population)

    benchmark(stratified_error, strata, truth, rng)

    srs_errors = [srs_error(population, truth, rng) for _ in range(TRIALS)]
    stratified_errors = [stratified_error(strata, truth, rng) for _ in range(TRIALS)]
    srs_mean = sum(srs_errors) / TRIALS
    stratified_mean = sum(stratified_errors) / TRIALS

    report.title("Ablation: stratified vs simple random sampling (s = 0.2, skewed strata)")
    report.table(
        ["estimator", "mean relative error (%)", "max relative error (%)"],
        [
            ["simple random sampling", round(100 * srs_mean, 3), round(100 * max(srs_errors), 3)],
            [
                "stratified sampling",
                round(100 * stratified_mean, 3),
                round(100 * max(stratified_errors), 3),
            ],
        ],
    )
    report.note(
        "A 5% heavy-consumption stratum dominates the population sum; sampling "
        "each stratum separately removes the variance caused by how many heavy "
        "clients happen to be drawn."
    )

    assert stratified_mean < srs_mean
    assert max(stratified_errors) < max(srs_errors)
    # Both estimators remain approximately unbiased (errors are small fractions).
    assert srs_mean < 0.25
    assert stratified_mean < 0.05
