"""Table 1: utility and privacy of query results across randomization parameters.

Paper setup: 10,000 original answers, 60% of which are "Yes"; sampling
parameter s = 0.6; p and q swept over {0.3, 0.6, 0.9}.  Reported per cell:
accuracy loss (eta, Eq. 6) and the privacy level.

Expected shape (asserted): larger p -> smaller accuracy loss and larger
(weaker) epsilon; q closest to the Yes fraction (0.6) -> best utility for a
given p; every accuracy loss is small (a few percent).
"""

from __future__ import annotations

import random

import pytest

from repro.core.privacy import randomized_response_epsilon, zero_knowledge_epsilon
from repro.core.randomized_response import rr_accuracy_loss, simulate_randomized_survey
from repro.core.sampling import SimpleRandomSampler
from repro.datasets import generate_binary_answers

TOTAL_ANSWERS = 10_000
YES_FRACTION = 0.6
SAMPLING_FRACTION = 0.6
PARAMETERS = [0.3, 0.6, 0.9]
TRIALS = 5


def run_cell(p: float, q: float, seed: int) -> float:
    """Mean accuracy loss for one (p, q) cell with sampling at s = 0.6."""
    rng = random.Random(seed)
    population = generate_binary_answers(TOTAL_ANSWERS, YES_FRACTION, seed=seed).as_list()
    true_yes = sum(population)
    losses = []
    for _ in range(TRIALS):
        sampler = SimpleRandomSampler(SAMPLING_FRACTION, rng=rng)
        sampled = sampler.select(population)
        sampled_yes = sum(sampled)
        _, rr_estimate = simulate_randomized_survey(
            true_yes=sampled_yes, total=len(sampled), p=p, q=q, rng=rng
        )
        estimate = (TOTAL_ANSWERS / len(sampled)) * rr_estimate
        losses.append(rr_accuracy_loss(true_yes, estimate))
    return sum(losses) / len(losses)


@pytest.mark.benchmark(group="table1")
def test_table1_randomization_parameters(benchmark, report):
    """Regenerate Table 1 and check its qualitative shape."""
    # Time one representative cell on the real code path.
    benchmark(run_cell, 0.6, 0.6, 42)

    rows = []
    losses = {}
    for p in PARAMETERS:
        for q in PARAMETERS:
            loss = run_cell(p, q, seed=hash((p, q)) % 10_000)
            eps_dp = randomized_response_epsilon(p, q)
            eps_zk = zero_knowledge_epsilon(p, q, SAMPLING_FRACTION)
            losses[(p, q)] = loss
            rows.append([p, q, loss, eps_dp, eps_zk])

    report.title("Table 1: utility and privacy vs randomization parameters (s = 0.6)")
    report.table(
        ["p", "q", "accuracy loss (eta)", "epsilon_dp (Eq. 8)", "epsilon_zk"], rows
    )
    report.note(
        "Paper: eta in 0.0079..0.0278; epsilon 1.25..4.18; higher p -> higher "
        "utility and weaker privacy; q closest to the Yes fraction is best."
    )

    # Shape assertions.
    for q in PARAMETERS:
        assert losses[(0.9, q)] < losses[(0.3, q)], "higher p must improve utility"
        assert randomized_response_epsilon(0.9, q) > randomized_response_epsilon(0.3, q)
    for p in PARAMETERS:
        # Privacy level decreases as q grows (Table 1's epsilon column).
        eps = [randomized_response_epsilon(p, q) for q in PARAMETERS]
        assert eps == sorted(eps, reverse=True)
    # All losses are small (the paper reports at most ~2.8%; allow slack for
    # the Monte-Carlo trials).
    assert all(loss < 0.08 for loss in losses.values())
    # Zero-knowledge epsilon is tighter than the plain DP epsilon everywhere.
    for p in PARAMETERS:
        for q in PARAMETERS:
            assert zero_knowledge_epsilon(p, q, SAMPLING_FRACTION) <= randomized_response_epsilon(p, q)
