"""Figure 4(b): error decomposition — sampling vs randomized response vs combined.

Paper setup: 10,000 answers, 60% Yes.  The sampling-only curve sets p = 1
(no randomization); the randomized-response-only point sets s = 1 with
p = 0.3, q = 0.6; the combined curve runs both.  The claim: the two error
sources are statistically independent, so the combined accuracy loss is
approximately the sum of the individual losses.
"""

from __future__ import annotations

import random

import pytest

from repro.core.randomized_response import rr_accuracy_loss, simulate_randomized_survey
from repro.core.sampling import SimpleRandomSampler
from repro.datasets import generate_binary_answers

TOTAL_ANSWERS = 10_000
YES_FRACTION = 0.6
P, Q = 0.3, 0.6
SAMPLING_FRACTIONS = [0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
TRIALS = 10


def _mean(values):
    return sum(values) / len(values)


def sampling_only_loss(sampling_fraction: float, rng: random.Random) -> float:
    population = generate_binary_answers(TOTAL_ANSWERS, YES_FRACTION, seed=1).as_list()
    true_yes = sum(population)
    losses = []
    for _ in range(TRIALS):
        sampled = SimpleRandomSampler(sampling_fraction, rng=rng).select(population)
        if not sampled:
            losses.append(1.0)
            continue
        estimate = (TOTAL_ANSWERS / len(sampled)) * sum(sampled)
        losses.append(rr_accuracy_loss(true_yes, estimate))
    return _mean(losses)


def rr_only_loss(rng: random.Random) -> float:
    true_yes = round(TOTAL_ANSWERS * YES_FRACTION)
    losses = []
    for _ in range(TRIALS):
        _, estimate = simulate_randomized_survey(true_yes, TOTAL_ANSWERS, P, Q, rng)
        losses.append(rr_accuracy_loss(true_yes, estimate))
    return _mean(losses)


def combined_loss(sampling_fraction: float, rng: random.Random) -> float:
    population = generate_binary_answers(TOTAL_ANSWERS, YES_FRACTION, seed=1).as_list()
    true_yes = sum(population)
    losses = []
    for _ in range(TRIALS):
        sampled = SimpleRandomSampler(sampling_fraction, rng=rng).select(population)
        if not sampled:
            losses.append(1.0)
            continue
        _, rr_estimate = simulate_randomized_survey(sum(sampled), len(sampled), P, Q, rng)
        estimate = (TOTAL_ANSWERS / len(sampled)) * rr_estimate
        losses.append(rr_accuracy_loss(true_yes, estimate))
    return _mean(losses)


@pytest.mark.benchmark(group="fig4b")
def test_fig4b_error_decomposition(benchmark, report):
    rng = random.Random(17)
    benchmark(combined_loss, 0.6, rng)

    rng = random.Random(23)
    rr_component = rr_only_loss(rng)
    rows = []
    sampling_losses = []
    combined_losses = []
    for fraction in SAMPLING_FRACTIONS:
        sampling = sampling_only_loss(fraction, rng)
        combined = combined_loss(fraction, rng)
        sampling_losses.append(sampling)
        combined_losses.append(combined)
        rows.append(
            [
                f"{fraction:.0%}",
                round(100 * sampling, 3),
                round(100 * rr_component, 3),
                round(100 * combined, 3),
                round(100 * (sampling + rr_component), 3),
            ]
        )

    report.title("Figure 4(b): error decomposition (accuracy loss %, p=0.3, q=0.6)")
    report.table(
        ["sampling fraction", "sampling only", "RR only (s=1)", "combined", "sum of parts"],
        rows,
    )
    report.note(
        "Paper: the two error sources are independent; the combined loss is "
        "approximately the sum of the sampling loss and the RR loss."
    )

    # The combined loss tracks the sum of the components (independence claim):
    # it is never dramatically larger than the sum, and at low sampling
    # fractions it is dominated by the sampling term.
    for sampling, combined in zip(sampling_losses, combined_losses):
        assert combined <= 2.0 * (sampling + rr_component) + 0.01
    # Sampling-only error decreases with the fraction and hits zero at s = 1.
    assert sampling_losses[-1] == pytest.approx(0.0, abs=1e-9)
    assert sampling_losses[0] > sampling_losses[-2] >= 0.0
    # At full sampling the combined loss reduces to (roughly) the RR-only loss.
    assert combined_losses[-1] == pytest.approx(rr_component, abs=0.03)
