"""Ablation: the error-feedback loop vs static execution parameters.

The aggregator re-tunes (s, p, q) whenever a window's error bound exceeds the
analyst's accuracy target (Section 5).  This ablation starts two identical
deployments from deliberately under-provisioned parameters (low sampling
fraction, heavy randomization) and lets one of them adapt.

Shape asserted: the adaptive deployment raises its sampling fraction over the
epochs and ends with a lower error bound relative to the estimate than the
static one.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)

NUM_CLIENTS = 150
NUM_EPOCHS = 6
INITIAL = ExecutionParameters(sampling_fraction=0.3, p=0.3, q=0.6)


def run_deployment(adaptive: bool, seed: int = 13):
    """Run one deployment; returns (final parameters, relative error per epoch)."""
    system = PrivApproxSystem(SystemConfig(num_clients=NUM_CLIENTS, seed=seed))
    rng = random.Random(seed)
    system.provision_clients(
        [("value", "REAL")], lambda i: [{"value": rng.gammavariate(2.0, 1.0)}]
    )
    analyst = Analyst("feedback")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(
            buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0, 3.0), open_ended=True),
            value_column="value",
        ),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    budget = QueryBudget(target_accuracy_loss=0.02) if adaptive else QueryBudget()
    system.submit_query(analyst, query, budget, parameters=INITIAL)
    relative_errors = []
    for epoch in range(NUM_EPOCHS):
        system.run_epoch(query.query_id, epoch)
    system.flush(query.query_id)
    for result in analyst.results_for(query.query_id):
        total = result.histogram.total()
        bounds = [b.error_bound for b in result.histogram.buckets if b.error_bound != float("inf")]
        if total > 0 and bounds:
            relative_errors.append(sum(bounds) / total)
    return system.parameters_for(query.query_id), relative_errors


@pytest.mark.benchmark(group="ablation-feedback")
def test_ablation_feedback_loop(benchmark, report):
    benchmark.pedantic(run_deployment, args=(True,), rounds=1, iterations=1)

    static_params, static_errors = run_deployment(adaptive=False)
    adaptive_params, adaptive_errors = run_deployment(adaptive=True)

    report.title("Ablation: feedback re-tuning vs static parameters")
    report.table(
        ["configuration", "final s", "final p", "first-window rel. error", "last-window rel. error"],
        [
            [
                "static",
                round(static_params.sampling_fraction, 3),
                round(static_params.p, 3),
                round(static_errors[0], 3),
                round(static_errors[-1], 3),
            ],
            [
                "adaptive (feedback)",
                round(adaptive_params.sampling_fraction, 3),
                round(adaptive_params.p, 3),
                round(adaptive_errors[0], 3),
                round(adaptive_errors[-1], 3),
            ],
        ],
    )
    report.note(
        "Both deployments start at s=0.3, p=0.3; only the adaptive one is "
        "allowed to re-tune when a window's error exceeds the 2% target."
    )

    # The static deployment never changes its parameters.
    assert static_params == INITIAL
    # The adaptive deployment raises the sampling fraction (and possibly p).
    assert adaptive_params.sampling_fraction > INITIAL.sampling_fraction
    # By the last window the adaptive deployment's relative error bound is lower.
    assert adaptive_errors[-1] < static_errors[-1]
