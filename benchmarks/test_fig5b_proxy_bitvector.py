"""Figure 5(b): proxy throughput vs the answer's bit-vector size.

Paper setup: a 3-node Kafka cluster; the client answer bit-vector size sweeps
10^2 ... 10^4 bits.  Expected shape: throughput (responses/sec) is inversely
proportional to the bit-vector size.

The benchmark measures the real in-memory pub/sub relay for several bit-vector
sizes (group ``fig5b-local``) and prints the cluster-model series used for the
full-scale figure.
"""

from __future__ import annotations

import pytest

from repro.core.encryption import AnswerCodec
from repro.core.proxy import ProxyNetwork
from repro.core.query import QueryAnswer
from repro.crypto.prng import KeystreamGenerator
from repro.netsim import ClusterTier

BIT_VECTOR_SIZES = [100, 400, 1_000, 4_000, 10_000]


def relay_answers(network: ProxyNetwork, encrypted_answers) -> int:
    for shares in encrypted_answers:
        network.transmit(shares)
    return network.total_shares_relayed()


def prepare_answers(bits: int, count: int):
    codec = AnswerCodec()
    keystream = KeystreamGenerator(seed=b"5b")
    out = []
    for i in range(count):
        answer = QueryAnswer(query_id="analyst-00000001", bits=tuple([i % 2] * bits), epoch=0)
        out.append(list(codec.encrypt(answer, num_proxies=2, keystream=keystream).shares))
    return out


@pytest.mark.benchmark(group="fig5b-local")
@pytest.mark.parametrize("bits", [100, 1_000, 10_000])
def test_proxy_relay_throughput_local(benchmark, bits):
    answers = prepare_answers(bits, count=50)

    def run():
        network = ProxyNetwork(num_proxies=2)
        return relay_answers(network, answers)

    relayed = benchmark(run)
    assert relayed == 100  # 50 answers x 2 shares


@pytest.mark.benchmark(group="fig5b")
def test_fig5b_throughput_vs_bitvector_size(benchmark, report):
    tier = ClusterTier.proxy_tier(num_nodes=3)

    def model_series():
        return {
            bits: tier.throughput(message_size_bytes=bits // 8).throughput_k_per_sec
            for bits in BIT_VECTOR_SIZES
        }

    series = benchmark(model_series)

    report.title("Figure 5(b): proxy throughput vs answer bit-vector size (3-node cluster)")
    report.table(
        ["bit-vector size", "throughput (K responses/sec)"],
        [[bits, round(series[bits], 1)] for bits in BIT_VECTOR_SIZES],
    )
    report.note(
        "Paper: throughput is inversely proportional to the bit-vector size, "
        "falling from ~2,000K/sec at 10^2 bits toward ~100K/sec at 10^4 bits."
    )

    throughputs = [series[bits] for bits in BIT_VECTOR_SIZES]
    # Monotonically non-increasing in the answer size.
    assert all(a >= b for a, b in zip(throughputs, throughputs[1:]))
    # Roughly inverse proportionality across a 10x size change in the large-message regime.
    ratio = series[1_000] / series[10_000]
    assert 5.0 < ratio < 15.0
