"""Table 2: computational overhead of crypto operations (ops/sec).

The paper compares XOR (PrivApprox) with RSA, Goldwasser-Micali and Paillier
(prior systems), each with 1024-bit keys, on a phone, a laptop and a server.
We cannot measure those devices, so the benchmark does two things:

1. measures the *real* pure-Python implementations on this machine
   (pytest-benchmark groups ``table2-local``) to confirm the scheme ordering
   on an actual code path, and
2. prints the device-calibrated table from the cost model
   (:mod:`repro.netsim.devices`), which reproduces the paper's per-device
   numbers and ratios.

Expected shape: XOR is orders of magnitude faster than every public-key
scheme on every device; Paillier is the slowest.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto import (
    XorCipher,
    generate_gm_keypair,
    generate_paillier_keypair,
    generate_rsa_keypair,
)
from repro.crypto.prng import KeystreamGenerator
from repro.netsim import DeviceProfile, OperationKind

KEY_BITS = 1024
MESSAGE = bytes(range(64))  # a 512-bit answer message


@pytest.fixture(scope="module")
def rsa_keys():
    return generate_rsa_keypair(KEY_BITS, seed=1)


@pytest.fixture(scope="module")
def gm_keys():
    return generate_gm_keypair(KEY_BITS, seed=2)


@pytest.fixture(scope="module")
def paillier_keys():
    return generate_paillier_keypair(KEY_BITS, seed=3)


@pytest.mark.benchmark(group="table2-local")
def test_xor_encryption_local(benchmark):
    cipher = XorCipher(num_shares=2, keystream=KeystreamGenerator(seed=b"bench"))
    result = benchmark(cipher.encrypt, MESSAGE)
    assert len(result) == 2


@pytest.mark.benchmark(group="table2-local")
def test_rsa_encryption_local(benchmark, rsa_keys):
    message_int = int.from_bytes(MESSAGE, "big")
    ciphertext = benchmark(rsa_keys.public.encrypt_int, message_int)
    assert rsa_keys.private.decrypt_int(ciphertext) == message_int


@pytest.mark.benchmark(group="table2-local")
def test_goldwasser_micali_encryption_local(benchmark, gm_keys):
    rng = random.Random(7)
    bits = [1, 0, 1, 1, 0, 0, 1, 0]
    ciphertexts = benchmark(gm_keys.public.encrypt_bits, bits, rng)
    assert gm_keys.private.decrypt_bits(ciphertexts) == bits


@pytest.mark.benchmark(group="table2-local")
def test_paillier_encryption_local(benchmark, paillier_keys):
    rng = random.Random(9)
    ciphertext = benchmark(paillier_keys.public.encrypt, 123456, rng)
    assert paillier_keys.private.decrypt(ciphertext) == 123456


@pytest.mark.benchmark(group="table2")
def test_table2_device_calibrated_report(benchmark, report):
    """Regenerate the full device table and assert the scheme ordering."""

    def build_rows():
        rows = []
        schemes = [
            ("RSA", OperationKind.RSA_ENCRYPT, OperationKind.RSA_DECRYPT),
            ("Goldwasser-Micali", OperationKind.GM_ENCRYPT, OperationKind.GM_DECRYPT),
            ("Paillier", OperationKind.PAILLIER_ENCRYPT, OperationKind.PAILLIER_DECRYPT),
        ]
        devices = DeviceProfile.all_devices()
        for name, enc_op, dec_op in schemes:
            row = [name]
            for device in devices:
                row.append(round(device.ops_per_second(enc_op)))
            for device in devices:
                row.append(round(device.ops_per_second(dec_op)))
            rows.append(row)
        xor_row = ["PrivApprox (XOR)"]
        for device in devices:
            xor_row.append(round(device.ops_per_second(OperationKind.XOR_ENCRYPTION)))
        for device in devices:
            xor_row.append(round(device.xor_decrypt_ops_per_second()))
        rows.append(xor_row)
        return rows

    rows = benchmark(build_rows)

    report.title("Table 2: crypto operations per second (1024-bit keys)")
    report.table(
        [
            "scheme",
            "enc phone",
            "enc laptop",
            "enc server",
            "dec phone",
            "dec laptop",
            "dec server",
        ],
        rows,
    )
    report.note(
        "Paper: XOR reaches 15K/944K/1.35M enc ops/sec vs 937/2,770/4,909 for "
        "RSA; the XOR advantage spans 2-4 orders of magnitude."
    )

    xor = rows[-1]
    for public_key_row in rows[:-1]:
        for column in range(1, 7):
            assert xor[column] > public_key_row[column], (
                "XOR must beat every public-key scheme on every device/operation"
            )
    # Paillier is the slowest encryption on every device.
    paillier = rows[2]
    rsa = rows[0]
    gm = rows[1]
    for column in range(1, 4):
        assert paillier[column] < rsa[column]
        assert paillier[column] < gm[column]
