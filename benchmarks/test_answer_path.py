"""Answer-stage timing: compiled columnar path vs the row-scan reference.

The acceptance benchmark for the index-backed answer path
(``repro.sqldb.columnar`` / ``repro.sqldb.compile``): 1000 client
databases of 256 rows each answer the same analyst SELECT, once with
``force_scan`` pinning the frozen row-scan interpreter and once on the
default compiled path, across a selectivity sweep (~1%, 10%, 50%, 100% of
rows matching).  The claim under test: **>= 3x speedup on the selective
predicate** (the B+Tree range probe touches a handful of rows instead of
interpreting the WHERE AST over 256 row dicts per client), with results
byte-identical to the scan on every database.

Steady-state is what matters — a deployment builds each client's columnar
store once, then reuses it across every epoch — so the compiled path is
timed after a warm-up pass; the cold first pass (store + index build) is
reported separately in the JSON artifact.  Timings are best-of-N to keep a
loaded CI runner from failing the suite; all rows land in
``results/BENCH_answer_path.json`` for the non-blocking benchmarks job to
archive.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.sqldb import Database

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

NUM_CLIENTS = 1_000
ROWS_PER_CLIENT = 256
TIMING_ROUNDS = 3
SPEEDUP_FLOOR = 3.0

# rank is uniform in [0, 1000): BETWEEN 0 AND K-1 matches ~K/1000 of rows.
SELECTIVITY_SWEEP = [
    ("1%", "SELECT value FROM private_data WHERE rank BETWEEN 0 AND 9"),
    ("10%", "SELECT value FROM private_data WHERE rank BETWEEN 0 AND 99"),
    ("50%", "SELECT value FROM private_data WHERE rank BETWEEN 0 AND 499"),
    ("100%", "SELECT value FROM private_data"),
]
SELECTIVE_LABEL = "1%"


def _build_population(seed: int = 20260808) -> list[Database]:
    rng = random.Random(seed)
    databases = []
    for _ in range(NUM_CLIENTS):
        db = Database()
        db.create_table(
            "private_data", [("value", "REAL"), ("rank", "INTEGER"), ("tag", "TEXT")]
        )
        db.insert_rows(
            "private_data",
            [
                {
                    "value": rng.uniform(0.0, 8.0),
                    "rank": rng.randrange(1000),
                    "tag": rng.choice(["phone", "laptop", "server"]),
                }
                for _ in range(ROWS_PER_CLIENT)
            ],
        )
        databases.append(db)
    return databases


def _answer_pass(databases: list[Database], sql: str) -> int:
    """One answer stage: every client runs the query; returns total rows."""
    total = 0
    for db in databases:
        total += len(db.query(sql).rows)
    return total


def _time_pass(databases: list[Database], sql: str) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        _answer_pass(databases, sql)
        best = min(best, time.perf_counter() - start)
    return best


def test_answer_path_speedup(report):
    databases = _build_population()

    # Cold pass: first compiled query pays the columnar store + index build.
    cold_start = time.perf_counter()
    _answer_pass(databases, SELECTIVITY_SWEEP[0][1])
    cold_seconds = time.perf_counter() - cold_start

    json_rows = []
    speedups = {}
    for label, sql in SELECTIVITY_SWEEP:
        for db in databases:
            db.force_scan = True
        scan_rows = _answer_pass(databases, sql)  # warm caches symmetrically
        scan_seconds = _time_pass(databases, sql)
        for db in databases:
            db.force_scan = False
        compiled_rows = _answer_pass(databases, sql)
        compiled_seconds = _time_pass(databases, sql)
        # The escape hatch must stay semantically invisible.
        assert compiled_rows == scan_rows
        speedup = scan_seconds / compiled_seconds
        speedups[label] = speedup
        json_rows.append(
            {
                "selectivity": label,
                "sql": sql,
                "scan_ms": scan_seconds * 1e3,
                "compiled_ms": compiled_seconds * 1e3,
                "speedup": speedup,
                "matched_rows": scan_rows,
            }
        )

    # Persist before asserting so CI archives numbers even for a failing run.
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_answer_path.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {
                "benchmark": "answer_path",
                "num_clients": NUM_CLIENTS,
                "rows_per_client": ROWS_PER_CLIENT,
                "timing_rounds": TIMING_ROUNDS,
                "cold_build_ms": cold_seconds * 1e3,
                "speedup_floor": SPEEDUP_FLOOR,
                "rows": json_rows,
            },
            handle,
            indent=2,
        )

    report.title(
        f"Answer stage: compiled columnar vs row scan "
        f"({NUM_CLIENTS} clients x {ROWS_PER_CLIENT} rows)"
    )
    report.table(
        ["selectivity", "scan ms", "compiled ms", "speedup"],
        [
            [row["selectivity"], row["scan_ms"], row["compiled_ms"], row["speedup"]]
            for row in json_rows
        ],
    )
    report.note(f"cold store+index build pass: {cold_seconds * 1e3:.1f} ms")

    assert speedups[SELECTIVE_LABEL] >= SPEEDUP_FLOOR, (
        f"selective predicate speedup {speedups[SELECTIVE_LABEL]:.2f}x "
        f"is below the {SPEEDUP_FLOOR}x acceptance floor"
    )
    # Even the full scan-equivalent workload must not regress: the columnar
    # path still avoids per-row dicts and per-call parsing.
    assert speedups["100%"] >= 1.0


# -- shard-wide arena vs per-client compiled ----------------------------------
#
# The PR-10 acceptance benchmark: one ShardArena concatenating every client
# in a shard answers the selective analyst SELECT with a single probe plus
# span-table splitting, against the same clients each probing their own
# ColumnStore.  Swept at 10^2..10^4 clients per shard; the claim under test
# is **>= 3x median speedup at 10^4 clients/shard**.  Results append into
# BENCH_answer_path.json next to the per-client-vs-scan rows (read-modify-
# write, so either test can run alone without clobbering the other).

ARENA_SWEEP_SIZES = [100, 1_000, 10_000]
ARENA_ROWS_PER_CLIENT = 32
ARENA_TIMING_ROUNDS = 5
ARENA_SPEEDUP_FLOOR = 3.0
ARENA_SQL = "SELECT value FROM private_data WHERE rank BETWEEN 0 AND 9"


def _build_shard(num_clients: int, seed: int = 20260808) -> list[Database]:
    rng = random.Random(seed)
    databases = []
    for _ in range(num_clients):
        db = Database()
        db.create_table(
            "private_data", [("value", "REAL"), ("rank", "INTEGER"), ("tag", "TEXT")]
        )
        db.insert_rows(
            "private_data",
            [
                {
                    "value": rng.uniform(0.0, 8.0),
                    "rank": rng.randrange(1000),
                    "tag": rng.choice(["phone", "laptop", "server"]),
                }
                for _ in range(ARENA_ROWS_PER_CLIENT)
            ],
        )
        databases.append(db)
    return databases


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def test_arena_vs_per_client_sweep(report):
    from repro.sqldb import ShardArena, arena_select_per_client

    json_rows = []
    speedups = {}
    for num_clients in ARENA_SWEEP_SIZES:
        databases = _build_shard(num_clients)
        arena = ShardArena(databases)

        # Warm both paths: per-client stores+indexes and the arena+indexes.
        per_client_results = [db.query(ARENA_SQL).rows for db in databases]
        arena_build_start = time.perf_counter()
        arena_results = arena_select_per_client(arena, ARENA_SQL)
        arena_build_ms = (time.perf_counter() - arena_build_start) * 1e3
        assert arena_results is not None
        assert [outcome.rows for outcome in arena_results] == per_client_results

        per_client_samples = []
        arena_samples = []
        for _ in range(ARENA_TIMING_ROUNDS):
            start = time.perf_counter()
            for db in databases:
                db.query(ARENA_SQL)
            per_client_samples.append(time.perf_counter() - start)
            start = time.perf_counter()
            arena_select_per_client(arena, ARENA_SQL)
            arena_samples.append(time.perf_counter() - start)

        per_client_ms = _median(per_client_samples) * 1e3
        arena_ms = _median(arena_samples) * 1e3
        speedup = per_client_ms / arena_ms
        speedups[num_clients] = speedup
        json_rows.append(
            {
                "clients_per_shard": num_clients,
                "rows_per_client": ARENA_ROWS_PER_CLIENT,
                "sql": ARENA_SQL,
                "per_client_ms": per_client_ms,
                "arena_ms": arena_ms,
                "arena_cold_probe_ms": arena_build_ms,
                "speedup": speedup,
            }
        )

    # Read-modify-write: the per-client-vs-scan test owns the other keys.
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_answer_path.json")
    data = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    data["arena_vs_per_client"] = {
        "timing_rounds": ARENA_TIMING_ROUNDS,
        "speedup_floor": ARENA_SPEEDUP_FLOOR,
        "rows": json_rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)

    report.title(
        f"Answer stage: shard arena vs per-client columnar "
        f"({ARENA_ROWS_PER_CLIENT} rows/client, ~1% selectivity)"
    )
    report.table(
        ["clients/shard", "per-client ms", "arena ms", "speedup"],
        [
            [
                row["clients_per_shard"],
                row["per_client_ms"],
                row["arena_ms"],
                row["speedup"],
            ]
            for row in json_rows
        ],
    )

    assert speedups[10_000] >= ARENA_SPEEDUP_FLOOR, (
        f"arena speedup {speedups[10_000]:.2f}x at 10^4 clients/shard "
        f"is below the {ARENA_SPEEDUP_FLOOR}x acceptance floor"
    )
