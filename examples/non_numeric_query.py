#!/usr/bin/env python3
"""Non-numeric queries: categorical answer buckets defined by matching rules.

The PrivApprox query model supports not only numeric range buckets but also
non-numeric answers where "each bucket is specified by a matching rule or a
regular expression" (Section 2.2).  This example runs a web-analytics style
query — "which browser family do users run?" — where each client's locally
stored user-agent string is matched against per-bucket regular expressions,
then flows through the same sampling / randomized response / XOR pipeline as
every other query.  It also prints the operational metrics snapshot an
operator would watch.

Run with:  python examples/non_numeric_query.py
"""

from __future__ import annotations

import random

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RuleBuckets,
    SystemConfig,
)
from repro.core.metrics import SystemMetrics

NUM_CLIENTS = 800
# Rule order matters: the first matching rule wins, and Edge's user agent also
# contains a "Chrome/..." token, so the Edge rule must come first.
BROWSER_BUCKETS = RuleBuckets.from_patterns(
    [
        ("Edge", r"Edg/\d+"),
        ("Chrome", r"Chrome/\d+"),
        ("Firefox", r"Firefox/\d+"),
        ("Safari", r"Version/\d+.*Safari"),
        ("Other", r"."),
    ]
)
USER_AGENTS = {
    "Chrome": "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 Chrome/120.0 Safari/537.36",
    "Firefox": "Mozilla/5.0 (X11; Linux x86_64; rv:121.0) Gecko/20100101 Firefox/121.0",
    "Safari": "Mozilla/5.0 (Macintosh) AppleWebKit/605.1.15 Version/17.1 Safari/605.1.15",
    "Edge": "Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 Chrome/120.0 Safari/537.36 Edg/120.0",
    "Other": "curl/8.4.0",
}
POPULARITY = {"Chrome": 0.55, "Firefox": 0.2, "Safari": 0.12, "Edge": 0.08, "Other": 0.05}


def main() -> None:
    system = PrivApproxSystem(SystemConfig(num_clients=NUM_CLIENTS, num_proxies=2, seed=31))
    rng = random.Random(31)

    def data_for_client(index: int) -> list[dict]:
        family = rng.choices(list(POPULARITY), weights=list(POPULARITY.values()), k=1)[0]
        return [{"user_agent": USER_AGENTS[family], "consent": "analytics"}]

    system.provision_clients(
        columns=[("user_agent", "TEXT"), ("consent", "TEXT")],
        data_for_client=data_for_client,
    )

    analyst = Analyst("web-analytics")
    query = analyst.create_query(
        sql="SELECT user_agent FROM private_data WHERE consent = 'analytics'",
        answer_spec=AnswerSpec(buckets=BROWSER_BUCKETS, value_column="user_agent"),
        frequency_seconds=300.0,
        window_seconds=300.0,
        slide_seconds=300.0,
    )
    parameters = ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.3)
    system.submit_query(analyst, query, QueryBudget(), parameters=parameters)

    metrics = SystemMetrics(system)
    metrics.run_and_record(query.query_id, epoch=0)
    result = system.flush(query.query_id)[0]
    exact = system.exact_bucket_counts(query.query_id)

    print("Estimated browser-family distribution (non-numeric rule buckets):\n")
    print(f"{'family':>8}  {'estimate':>9}  {'error bound':>12}  {'exact':>6}")
    for bucket, truth in zip(result.histogram.buckets, exact):
        print(f"{bucket.label:>8}  {bucket.estimate:>9.1f}  ±{bucket.error_bound:>11.1f}  {truth:>6d}")

    print("\nOperational metrics:")
    print(metrics.format_snapshot(query.query_id))


if __name__ == "__main__":
    main()
