#!/usr/bin/env python3
"""Quickstart: privacy-preserving stream analytics over a toy client population.

This example walks through the whole PrivApprox pipeline on a small synthetic
deployment:

1. provision a few hundred clients, each holding one private speed reading;
2. have an analyst publish the paper's driving-speed query together with an
   execution budget;
3. run several answering epochs (sampling -> randomized response -> XOR
   shares -> proxies -> aggregator);
4. print the windowed histogram results with their error bounds next to the
   exact (non-private) ground truth.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import (
    Analyst,
    AnswerSpec,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)

NUM_CLIENTS = 500
NUM_EPOCHS = 3


def provision_system(seed: int = 7) -> PrivApproxSystem:
    """Create the deployment and load each client's private speed reading."""
    system = PrivApproxSystem(SystemConfig(num_clients=NUM_CLIENTS, num_proxies=2, seed=seed))
    rng = random.Random(seed)

    def data_for_client(index: int) -> list[dict]:
        return [{"speed": rng.uniform(0.0, 110.0), "location": "San Francisco"}]

    system.provision_clients(
        columns=[("speed", "REAL"), ("location", "TEXT")],
        data_for_client=data_for_client,
    )
    return system


def main() -> None:
    system = provision_system()

    # The analyst formulates the paper's example query: the driving-speed
    # distribution across vehicles in San Francisco, with 12 speed buckets.
    analyst = Analyst(analyst_id="quickstart-analyst")
    speed_buckets = RangeBuckets(
        boundaries=(0.0, 1.0, 11.0, 21.0, 31.0, 41.0, 51.0, 61.0, 71.0, 81.0, 91.0, 101.0),
        open_ended=True,
    )
    query = analyst.create_query(
        sql="SELECT speed FROM private_data WHERE location = 'San Francisco'",
        answer_spec=AnswerSpec(buckets=speed_buckets, value_column="speed"),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )

    # The budget asks for at most 5% accuracy loss and a zero-knowledge
    # privacy level of at most 1.5; the planner converts it into (s, p, q).
    budget = QueryBudget(
        target_accuracy_loss=0.05,
        max_epsilon=1.5,
        expected_clients=NUM_CLIENTS,
        answer_bits=speed_buckets.num_buckets,
    )
    parameters = system.submit_query(analyst, query, budget)
    print("Execution parameters derived from the budget:")
    print(f"  sampling fraction s = {parameters.sampling_fraction:.2f}")
    print(f"  randomization     p = {parameters.p:.2f}, q = {parameters.q:.2f}")
    print(f"  zero-knowledge privacy level epsilon_zk = {parameters.epsilon_zk:.3f}")
    print()

    for epoch in range(NUM_EPOCHS):
        report = system.run_epoch(query.query_id, epoch)
        print(
            f"epoch {epoch}: {report.num_participants}/{report.num_clients} clients participated"
        )
    results = system.flush(query.query_id)
    all_results = analyst.results_for(query.query_id)
    print(f"\n{len(all_results)} window results delivered to the analyst\n")

    exact = system.exact_bucket_counts(query.query_id)
    last = all_results[-1]
    print(f"Window [{last.window.start:.0f}s, {last.window.end:.0f}s) — estimated speed histogram:")
    print(f"{'bucket':>16}  {'estimate':>10}  {'error bound':>12}  {'exact':>7}")
    for bucket, exact_count in zip(last.histogram.buckets, exact):
        print(
            f"{bucket.label:>16}  {bucket.estimate:>10.1f}  ±{bucket.error_bound:>11.1f}  {exact_count:>7d}"
        )
    print(
        "\nNote: 'exact' is computed by the simulation for comparison only — in a"
        "\nreal deployment no component ever sees the truthful answers."
    )


if __name__ == "__main__":
    main()
