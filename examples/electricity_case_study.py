#!/usr/bin/env python3
"""Case study 2: household electricity consumption over sliding windows.

Reproduces the second case study of the paper: households (clients) record
their half-hourly electricity consumption locally; the analyst continuously
asks for the usage distribution over the past 30 minutes, updated every
epoch, and also runs a historical batch query over everything collected so
far (Section 3.3.1).

Run with:  python examples/electricity_case_study.py
"""

from __future__ import annotations

from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    HistoricalAnalytics,
    PrivApproxSystem,
    QueryBudget,
    SystemConfig,
)
from repro.datasets import ELECTRICITY_BUCKETS, ElectricityGenerator

NUM_HOUSEHOLDS = 800
READINGS_PER_HOUSEHOLD = 4
NUM_EPOCHS = 4
PARAMETERS = ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.3)


def main() -> None:
    system = PrivApproxSystem(
        SystemConfig(num_clients=NUM_HOUSEHOLDS, num_proxies=2, seed=23, keep_historical=True)
    )
    generator = ElectricityGenerator(seed=23)
    system.provision_clients(
        ElectricityGenerator.table_columns(),
        lambda i: generator.readings_for_client(i, num_readings=READINGS_PER_HOUSEHOLD),
    )

    analyst = Analyst("utility-analyst")
    query = analyst.create_query(
        ElectricityGenerator.case_study_sql(),
        AnswerSpec(buckets=ELECTRICITY_BUCKETS, value_column="kwh"),
        frequency_seconds=1800.0,   # clients answer every 30 minutes
        window_seconds=1800.0,      # the analyst looks at the past 30 minutes
        slide_seconds=1800.0,
    )
    budget = QueryBudget(target_accuracy_loss=0.1, expected_clients=NUM_HOUSEHOLDS)
    system.submit_query(analyst, query, budget, parameters=PARAMETERS)

    print(f"Streaming: {NUM_EPOCHS} half-hour epochs over {NUM_HOUSEHOLDS} households\n")
    for epoch in range(NUM_EPOCHS):
        system.run_epoch(query.query_id, epoch)
    system.flush(query.query_id)

    for result in analyst.results_for(query.query_id):
        window = result.window
        fractions = result.histogram.fractions()
        bars = "  ".join(
            f"{label}:{100 * fraction:4.1f}%"
            for label, fraction in zip(result.histogram.labels(), fractions)
        )
        print(f"window [{window.start / 60:5.0f}min, {window.end / 60:5.0f}min)  {bars}")

    # Historical analytics: a batch query over every stored (randomized)
    # response, re-sampled at the aggregator to fit a cost budget.
    print("\nHistorical batch query over all stored responses (cost budget: 1,000 scans)")
    analytics = HistoricalAnalytics(store=system.historical_store, seed=23)
    histogram = analytics.run_batch_query(
        query,
        PARAMETERS,
        total_clients_per_epoch=NUM_HOUSEHOLDS,
        budget=QueryBudget(max_cost_units=1_000),
    )
    print(f"  answers scanned: {histogram.num_answers}")
    for bucket in histogram.buckets:
        print(f"  {bucket.label:>14}  {bucket.estimate:8.1f}  ±{bucket.error_bound:.1f}")


if __name__ == "__main__":
    main()
