#!/usr/bin/env python3
"""Adaptive execution: budgets, the feedback loop, and query inversion.

This example demonstrates the three "knob-turning" mechanisms of PrivApprox
that the other examples keep fixed:

* the budget planner converting latency / accuracy / privacy budgets into the
  (s, p, q) system parameters;
* the feedback loop re-tuning the parameters when a window's observed error
  exceeds the analyst's accuracy target;
* query inversion improving utility when truthful "Yes" answers are rare.

Run with:  python examples/adaptive_budget.py
"""

from __future__ import annotations

import random

from repro.analytics import accuracy_loss
from repro.core import (
    Analyst,
    AnswerSpec,
    BudgetPlanner,
    ExecutionParameters,
    InvertedEstimator,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
    should_invert,
)
from repro.core.randomized_response import RandomizedResponder, estimate_true_yes


def show_budget_conversion() -> None:
    print("1. Budget conversion (the aggregator's initializer module)")
    planner = BudgetPlanner()
    budgets = {
        "accuracy 1%":               QueryBudget(target_accuracy_loss=0.01),
        "privacy eps <= 0.8":        QueryBudget(max_epsilon=0.8),
        "latency 10 s, 50M clients": QueryBudget(max_latency_seconds=10, expected_clients=50_000_000),
        "all three":                 QueryBudget(
            target_accuracy_loss=0.01, max_epsilon=0.8, max_latency_seconds=10,
            expected_clients=50_000_000,
        ),
    }
    for label, budget in budgets.items():
        params = planner.plan(budget)
        print(
            f"   {label:<28} -> s={params.sampling_fraction:.2f}  p={params.p:.2f}  "
            f"q={params.q:.2f}  (eps_zk={params.epsilon_zk:.2f})"
        )
    print()


def show_feedback_loop() -> None:
    print("2. Feedback loop (error above target raises the sampling fraction)")
    system = PrivApproxSystem(SystemConfig(num_clients=60, num_proxies=2, seed=3))
    rng = random.Random(3)
    system.provision_clients([("value", "REAL")], lambda i: [{"value": rng.uniform(0, 3)}])
    analyst = Analyst("ops")
    query = analyst.create_query(
        "SELECT value FROM private_data",
        AnswerSpec(buckets=RangeBuckets(boundaries=(0.0, 1.0, 2.0), open_ended=True)),
        frequency_seconds=60.0,
        window_seconds=60.0,
        slide_seconds=60.0,
    )
    initial = ExecutionParameters(sampling_fraction=0.3, p=0.3, q=0.6)
    system.submit_query(
        analyst, query, QueryBudget(target_accuracy_loss=0.02), parameters=initial
    )
    print(f"   initial parameters: s={initial.sampling_fraction:.2f}, p={initial.p:.2f}")
    for epoch in range(5):
        system.run_epoch(query.query_id, epoch)
        current = system.parameters_for(query.query_id)
        print(f"   after epoch {epoch}: s={current.sampling_fraction:.2f}, p={current.p:.2f}")
    print()


def show_query_inversion() -> None:
    print("3. Query inversion (rare-Yes query, q = 0.9)")
    rng = random.Random(7)
    total, true_yes = 20_000, 1_000  # only 5% truthful Yes answers
    p, q = 0.9, 0.9
    trials = 15
    print(f"   truthful Yes fraction: {true_yes / total:.0%}; invert? {should_invert(true_yes / total, q)}")

    native_losses = []
    inverted_losses = []
    for _ in range(trials):
        responder = RandomizedResponder(p=p, q=q, rng=rng)
        native_observed = sum(responder.randomize_bit(1) for _ in range(true_yes)) + sum(
            responder.randomize_bit(0) for _ in range(total - true_yes)
        )
        native_estimate = estimate_true_yes(native_observed, total, p, q)
        native_losses.append(accuracy_loss(true_yes, native_estimate))

        inverted_observed = sum(responder.randomize_bit(0) for _ in range(true_yes)) + sum(
            responder.randomize_bit(1) for _ in range(total - true_yes)
        )
        inverted_estimate = InvertedEstimator(p=p, q=q).estimate_yes(inverted_observed, total)
        inverted_losses.append(accuracy_loss(true_yes, inverted_estimate))

    native_mean = sum(native_losses) / trials
    inverted_mean = sum(inverted_losses) / trials
    print(f"   native query mean loss over {trials} runs:   {100 * native_mean:.2f}%")
    print(f"   inverted query mean loss over {trials} runs: {100 * inverted_mean:.2f}%")


def main() -> None:
    show_budget_conversion()
    show_feedback_loop()
    show_query_inversion()


if __name__ == "__main__":
    main()
