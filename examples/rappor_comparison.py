#!/usr/bin/env python3
"""Comparison with RAPPOR and SplitX (paper Section 6, #VIII).

PrivApprox's two closest relatives are RAPPOR (same randomized-response core,
no sampling, no stream support) and SplitX (same architecture, but proxies
must synchronize).  This example reproduces both comparisons:

* the privacy levels of PrivApprox and RAPPOR under the parameter mapping
  p = 1 - f, q = 0.5, h = 1 (Figure 5c);
* the proxy latency of PrivApprox and SplitX as the client population grows
  (Figure 6).

Run with:  python examples/rappor_comparison.py
"""

from __future__ import annotations

import random

from repro.baselines import (
    PrivApproxLatencyModel,
    RapporAggregator,
    RapporClient,
    RapporParams,
    SplitXModel,
)
from repro.core.privacy import (
    privapprox_epsilon_for_rappor_mapping,
    randomized_response_epsilon,
)


def privacy_comparison() -> None:
    f = 0.5
    rappor_level = randomized_response_epsilon(p=1.0 - f, q=0.5)
    print("Privacy comparison (f = 0.5, h = 1, q = 0.5):")
    print(f"{'sampling fraction':>18}  {'PrivApprox eps':>14}  {'RAPPOR eps':>10}")
    for s in (0.1, 0.2, 0.4, 0.6, 0.8, 1.0):
        ours = privapprox_epsilon_for_rappor_mapping(f, s)
        print(f"{s:>17.0%}  {ours:>14.3f}  {rappor_level:>10.3f}")
    print(
        "PrivApprox's client-side sampling amplifies privacy, so its level is\n"
        "below RAPPOR's for every sampling fraction under 100%.\n"
    )


def rappor_utility_demo() -> None:
    """Run the actual RAPPOR pipeline to show it still yields useful aggregates."""
    params = RapporParams(num_bits=32, num_hashes=1, f=0.5)
    rng = random.Random(5)
    candidate_values = ["chrome", "firefox", "safari", "edge"]
    weights = [0.55, 0.25, 0.15, 0.05]
    truth = {value: 0 for value in candidate_values}
    reports = []
    for _ in range(5_000):
        value = rng.choices(candidate_values, weights=weights, k=1)[0]
        truth[value] += 1
        reports.append(RapporClient(params, rng=rng).report(value))
    estimates = RapporAggregator(params).estimate_value_counts(reports, candidate_values)
    print("RAPPOR aggregate decoding (5,000 clients reporting their browser):")
    print(f"{'value':>10}  {'true count':>10}  {'estimate':>10}")
    for value in candidate_values:
        print(f"{value:>10}  {truth[value]:>10d}  {estimates[value]:>10.0f}")
    print()


def latency_comparison() -> None:
    splitx = SplitXModel()
    privapprox = PrivApproxLatencyModel()
    print("Proxy latency comparison (seconds):")
    print(f"{'# clients':>12}  {'SplitX':>10}  {'PrivApprox':>10}  {'speedup':>8}")
    for exponent in range(2, 9):
        n = 10**exponent
        splitx_total = splitx.latency(n).total_seconds
        ours = privapprox.latency(n)
        print(f"{n:>12,}  {splitx_total:>10.3f}  {ours:>10.3f}  {splitx_total / ours:>7.2f}x")
    print(
        "\nSplitX proxies add noise, intersect and shuffle answers (and must\n"
        "synchronize to do it); PrivApprox proxies only relay opaque shares."
    )


def main() -> None:
    privacy_comparison()
    rappor_utility_demo()
    latency_comparison()


if __name__ == "__main__":
    main()
