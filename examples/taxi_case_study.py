#!/usr/bin/env python3
"""Case study 1: the NYC-taxi ride-distance distribution (paper Section 7).

Reproduces the workflow of the first case study: a fleet of taxis (clients)
each store their recent rides locally; an analyst asks for the distribution of
ride distances in New York with 11 one-mile buckets; PrivApprox answers the
query under several privacy settings so the utility/privacy trade-off is
visible.

Run with:  python examples/taxi_case_study.py
"""

from __future__ import annotations

from repro.analytics import histogram_accuracy_loss
from repro.core import (
    Analyst,
    AnswerSpec,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    SystemConfig,
)
from repro.core.privacy import zero_knowledge_epsilon
from repro.datasets import TAXI_DISTANCE_BUCKETS, TaxiRideGenerator

NUM_TAXIS = 1_000
RIDES_PER_TAXI = 3
SETTINGS = [
    ("strong privacy", ExecutionParameters(sampling_fraction=0.5, p=0.3, q=0.3)),
    ("balanced", ExecutionParameters(sampling_fraction=0.8, p=0.6, q=0.3)),
    ("high utility", ExecutionParameters(sampling_fraction=0.9, p=0.9, q=0.3)),
]


def build_system(seed: int = 11) -> PrivApproxSystem:
    system = PrivApproxSystem(SystemConfig(num_clients=NUM_TAXIS, num_proxies=2, seed=seed))
    generator = TaxiRideGenerator(seed=seed)
    system.provision_clients(
        TaxiRideGenerator.table_columns(),
        lambda i: generator.rides_for_client(i, num_rides=RIDES_PER_TAXI),
    )
    return system


def run_setting(label: str, parameters: ExecutionParameters) -> None:
    system = build_system()
    analyst = Analyst("nyc-taxi-analyst")
    query = analyst.create_query(
        TaxiRideGenerator.case_study_sql(),
        AnswerSpec(buckets=TAXI_DISTANCE_BUCKETS, value_column="distance"),
        frequency_seconds=600.0,
        window_seconds=600.0,
        slide_seconds=600.0,
    )
    system.submit_query(analyst, query, QueryBudget(), parameters=parameters)
    system.run_epoch(query.query_id, 0)
    result = system.flush(query.query_id)[0]
    exact = system.exact_bucket_counts(query.query_id)
    loss = histogram_accuracy_loss(exact, result.histogram.estimates())
    epsilon = zero_knowledge_epsilon(parameters.p, parameters.q, parameters.sampling_fraction)

    print(f"--- {label}:  s={parameters.sampling_fraction}, p={parameters.p}, q={parameters.q}")
    print(f"    zero-knowledge privacy level: {epsilon:.3f}")
    print(f"    histogram accuracy loss:      {100 * loss:.2f}%")
    print(f"    {'distance bucket':>16}  {'estimate':>9}  {'exact':>6}")
    for bucket, exact_count in zip(result.histogram.buckets, exact):
        print(f"    {bucket.label:>16}  {bucket.estimate:>9.1f}  {exact_count:>6d}")
    print()


def main() -> None:
    print(f"NYC taxi case study: {NUM_TAXIS} taxis, {RIDES_PER_TAXI} rides each\n")
    print(
        "Roughly a third of the synthetic rides are shorter than one mile, "
        "matching the DEBS 2015 trace the paper used.\n"
    )
    for label, parameters in SETTINGS:
        run_setting(label, parameters)
    print(
        "As in Figure 7 of the paper: more sampling and a larger p buy accuracy "
        "at the cost of a weaker (larger) privacy level."
    )


if __name__ == "__main__":
    main()
