"""Scale-up / scale-out throughput model for the proxy and aggregator tiers.

Figure 8 of the paper measures proxy and aggregator throughput as the number
of CPU cores per node (scale-up) and the number of nodes (scale-out) grow.
Figure 5(b) measures proxy throughput against the answer bit-vector size.

We model a tier (proxies or aggregator) as a set of identical nodes.  Each
core processes messages at a base rate that falls with message size (larger
answer vectors cost more per message); parallel efficiency decays mildly with
the number of cores and nodes, reproducing the slightly sub-linear scaling the
paper observes.  The aggregator's base rate is lower than the proxies' because
it performs the join, XOR decryption and analytics, whereas proxies only relay
messages (Section 7.2 #I).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClusterNode:
    """One node of a tier: a core count and a per-core base throughput."""

    cores: int = 8
    core_rate_msgs_per_sec: float = 150_000.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("a node needs at least one core")
        if self.core_rate_msgs_per_sec <= 0:
            raise ValueError("core rate must be positive")


@dataclass(frozen=True)
class ScalingResult:
    """Throughput prediction for one tier configuration."""

    nodes: int
    cores_per_node: int
    message_size_bytes: int
    throughput_msgs_per_sec: float

    @property
    def throughput_k_per_sec(self) -> float:
        """Throughput in thousands of messages per second (paper's unit)."""
        return self.throughput_msgs_per_sec / 1_000.0


@dataclass
class ClusterTier:
    """A tier of identical nodes with a message-size-dependent throughput model.

    Parameters
    ----------
    name:
        Human-readable tier name ("proxy" or "aggregator").
    node:
        The node hardware profile.
    num_nodes:
        Number of nodes in the tier.
    per_message_overhead_bytes:
        Fixed framing overhead added to every message.
    reference_message_bytes:
        Message size at which a core achieves exactly its base rate; larger
        messages scale cost proportionally to their size.
    scale_up_efficiency / scale_out_efficiency:
        Parallel efficiency per doubling of cores / nodes, in ``(0, 1]``.  A
        value of 0.9 means each doubling delivers 1.8x, matching the paper's
        near-linear but not perfectly linear scaling.
    min_cost_factor:
        Lower bound on the per-message cost multiplier.  Relay-only tiers
        (proxies) benefit from very small messages down to the per-message
        framing overhead, so their floor is below 1; tiers dominated by
        per-message work independent of size (the aggregator's join and
        analytics) keep the floor at 1, which is why the paper observes the
        aggregator to be largely insensitive to message size.
    """

    name: str
    node: ClusterNode = field(default_factory=ClusterNode)
    num_nodes: int = 1
    per_message_overhead_bytes: int = 32
    reference_message_bytes: int = 128
    scale_up_efficiency: float = 0.92
    scale_out_efficiency: float = 0.95
    min_cost_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("a tier needs at least one node")
        if not 0 < self.scale_up_efficiency <= 1:
            raise ValueError("scale_up_efficiency must be in (0, 1]")
        if not 0 < self.scale_out_efficiency <= 1:
            raise ValueError("scale_out_efficiency must be in (0, 1]")

    @classmethod
    def proxy_tier(cls, num_nodes: int = 1, cores: int = 8) -> "ClusterTier":
        """A proxy tier: relay-only, high per-core rate, message-size sensitive."""
        return cls(
            name="proxy",
            node=ClusterNode(cores=cores, core_rate_msgs_per_sec=100_000.0),
            num_nodes=num_nodes,
            scale_out_efficiency=0.8,
            min_cost_factor=0.2,
        )

    @classmethod
    def aggregator_tier(cls, num_nodes: int = 1, cores: int = 8) -> "ClusterTier":
        """An aggregator tier: join + decryption + analytics, lower per-core rate."""
        return cls(
            name="aggregator",
            node=ClusterNode(cores=cores, core_rate_msgs_per_sec=22_000.0),
            num_nodes=num_nodes,
            # The join and analytics cost dominates, so message size matters
            # less for the aggregator (Section 7.2 #I).
            reference_message_bytes=1024,
        )

    # -- throughput model ---------------------------------------------------

    def _parallel_factor(self, units: int, efficiency: float) -> float:
        """Effective parallelism of ``units`` workers with per-doubling efficiency."""
        if units < 1:
            raise ValueError("units must be at least 1")
        factor = 1.0
        effective = 1.0
        while factor * 2 <= units:
            factor *= 2
            effective = effective * 2 * efficiency
        # Interpolate linearly for the remainder beyond the last power of two.
        if factor < units:
            fraction = (units - factor) / factor
            effective += effective * fraction * efficiency
        return effective

    def _message_cost_factor(self, message_size_bytes: int) -> float:
        """Cost multiplier for a message of the given size."""
        if message_size_bytes < 0:
            raise ValueError("message size must be non-negative")
        total = message_size_bytes + self.per_message_overhead_bytes
        reference = self.reference_message_bytes + self.per_message_overhead_bytes
        return max(self.min_cost_factor, total / reference)

    def throughput(
        self,
        message_size_bytes: int = 128,
        num_nodes: int | None = None,
        cores_per_node: int | None = None,
    ) -> ScalingResult:
        """Predicted tier throughput for a configuration and message size."""
        nodes = num_nodes if num_nodes is not None else self.num_nodes
        cores = cores_per_node if cores_per_node is not None else self.node.cores
        core_parallelism = self._parallel_factor(cores, self.scale_up_efficiency)
        node_parallelism = self._parallel_factor(nodes, self.scale_out_efficiency)
        per_core = self.node.core_rate_msgs_per_sec / self._message_cost_factor(message_size_bytes)
        total = per_core * core_parallelism * node_parallelism
        return ScalingResult(
            nodes=nodes,
            cores_per_node=cores,
            message_size_bytes=message_size_bytes,
            throughput_msgs_per_sec=total,
        )

    def scale_up_series(
        self, core_counts: list[int], message_size_bytes: int = 128
    ) -> list[ScalingResult]:
        """Throughput for several core counts on a single node (Figure 8, left)."""
        return [
            self.throughput(message_size_bytes, num_nodes=1, cores_per_node=cores)
            for cores in core_counts
        ]

    def scale_out_series(
        self, node_counts: list[int], message_size_bytes: int = 128, cores_per_node: int = 8
    ) -> list[ScalingResult]:
        """Throughput for several node counts (Figure 8, right)."""
        return [
            self.throughput(message_size_bytes, num_nodes=nodes, cores_per_node=cores_per_node)
            for nodes in node_counts
        ]

    def processing_latency(
        self, num_messages: int, message_size_bytes: int = 128
    ) -> float:
        """Seconds to process ``num_messages`` at the tier's predicted throughput."""
        if num_messages < 0:
            raise ValueError("num_messages must be non-negative")
        result = self.throughput(message_size_bytes)
        return num_messages / result.throughput_msgs_per_sec
