"""Device, cluster and network simulation.

The paper's performance numbers come from physical hardware we do not have: an
Android phone, a MacBook laptop, a 32-core Linux server (Tables 2-3) and a
44-node Gigabit cluster running Kafka and Flink (Figures 5b, 6, 8, 9).  This
package substitutes first-principles cost models for that hardware:

* :mod:`repro.netsim.devices` — per-device cost models for the client-side
  operations (database read, randomized response, crypto), calibrated so the
  *relative* ordering and rough magnitudes match the published measurements,
  plus the ability to measure the real operations on the local machine.
* :mod:`repro.netsim.cluster` — scale-up / scale-out throughput model for the
  proxy and aggregator tiers (cores, nodes, per-message cost, parallel
  efficiency).
* :mod:`repro.netsim.network` — traffic and latency accounting between
  clients, proxies and the aggregator as a function of the sampling fraction,
  answer size and number of proxies.

Every experiment that in the paper ran on the testbed runs here against these
models; the goal is to reproduce shapes (scaling curves, crossovers, ratios),
not absolute numbers.
"""

from repro.netsim.devices import DeviceProfile, DeviceKind, OperationKind
from repro.netsim.cluster import ClusterNode, ClusterTier, ScalingResult
from repro.netsim.network import NetworkModel, TrafficReport, LatencyReport

__all__ = [
    "DeviceProfile",
    "DeviceKind",
    "OperationKind",
    "ClusterNode",
    "ClusterTier",
    "ScalingResult",
    "NetworkModel",
    "TrafficReport",
    "LatencyReport",
]
