"""Client device cost models (phone, laptop, server).

Tables 2 and 3 of the paper report operations-per-second for the client-side
pipeline (SQLite read, randomized response, XOR encryption) and for the
public-key comparators (RSA, Goldwasser-Micali, Paillier) on three devices: an
Android Galaxy S III mini, a MacBook Air, and a 32-core Linux server.

We model each device as a relative speed factor applied to a per-operation
base cost.  The base costs are anchored to the paper's *server* column, so the
model reproduces both the device ordering (phone < laptop < server) and the
scheme ordering (XOR orders of magnitude faster than RSA/GM/Paillier).  The
crypto benchmarks additionally measure the real pure-Python implementations on
the local machine to confirm the scheme ordering on an actual code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class DeviceKind(str, Enum):
    """The three device classes used in the paper's client-side evaluation."""

    PHONE = "phone"
    LAPTOP = "laptop"
    SERVER = "server"


class OperationKind(str, Enum):
    """Client-side operations whose throughput the paper reports."""

    SQLITE_READ = "sqlite_read"
    RANDOMIZED_RESPONSE = "randomized_response"
    XOR_ENCRYPTION = "xor_encryption"
    RSA_ENCRYPT = "rsa_encrypt"
    RSA_DECRYPT = "rsa_decrypt"
    GM_ENCRYPT = "gm_encrypt"
    GM_DECRYPT = "gm_decrypt"
    PAILLIER_ENCRYPT = "paillier_encrypt"
    PAILLIER_DECRYPT = "paillier_decrypt"


# Paper-calibrated operations per second (Tables 2 and 3).  Keys: (device, op).
_CALIBRATED_OPS_PER_SEC: dict[tuple[DeviceKind, OperationKind], float] = {
    # Table 3 — client pipeline.
    (DeviceKind.PHONE, OperationKind.SQLITE_READ): 1_162,
    (DeviceKind.LAPTOP, OperationKind.SQLITE_READ): 19_646,
    (DeviceKind.SERVER, OperationKind.SQLITE_READ): 23_418,
    (DeviceKind.PHONE, OperationKind.RANDOMIZED_RESPONSE): 168_938,
    (DeviceKind.LAPTOP, OperationKind.RANDOMIZED_RESPONSE): 418_668,
    (DeviceKind.SERVER, OperationKind.RANDOMIZED_RESPONSE): 1_809_662,
    (DeviceKind.PHONE, OperationKind.XOR_ENCRYPTION): 15_026,
    (DeviceKind.LAPTOP, OperationKind.XOR_ENCRYPTION): 943_902,
    (DeviceKind.SERVER, OperationKind.XOR_ENCRYPTION): 1_351_937,
    # Table 2 — public-key comparators (encryption / decryption).
    (DeviceKind.PHONE, OperationKind.RSA_ENCRYPT): 937,
    (DeviceKind.LAPTOP, OperationKind.RSA_ENCRYPT): 2_770,
    (DeviceKind.SERVER, OperationKind.RSA_ENCRYPT): 4_909,
    (DeviceKind.PHONE, OperationKind.RSA_DECRYPT): 126,
    (DeviceKind.LAPTOP, OperationKind.RSA_DECRYPT): 698,
    (DeviceKind.SERVER, OperationKind.RSA_DECRYPT): 859,
    (DeviceKind.PHONE, OperationKind.GM_ENCRYPT): 2_106,
    (DeviceKind.LAPTOP, OperationKind.GM_ENCRYPT): 17_064,
    (DeviceKind.SERVER, OperationKind.GM_ENCRYPT): 22_902,
    (DeviceKind.PHONE, OperationKind.GM_DECRYPT): 127,
    (DeviceKind.LAPTOP, OperationKind.GM_DECRYPT): 6_329,
    (DeviceKind.SERVER, OperationKind.GM_DECRYPT): 7_068,
    (DeviceKind.PHONE, OperationKind.PAILLIER_ENCRYPT): 116,
    (DeviceKind.LAPTOP, OperationKind.PAILLIER_ENCRYPT): 489,
    (DeviceKind.SERVER, OperationKind.PAILLIER_ENCRYPT): 579,
    (DeviceKind.PHONE, OperationKind.PAILLIER_DECRYPT): 72,
    (DeviceKind.LAPTOP, OperationKind.PAILLIER_DECRYPT): 250,
    (DeviceKind.SERVER, OperationKind.PAILLIER_DECRYPT): 309,
    # XOR decryption at the aggregator (Table 2, "Decryption" column).
}

# XOR decryption throughput from Table 2 (aggregator side).
_XOR_DECRYPT_OPS: dict[DeviceKind, float] = {
    DeviceKind.PHONE: 3_262_186,
    DeviceKind.LAPTOP: 16_519_076,
    DeviceKind.SERVER: 22_678_285,
}


@dataclass(frozen=True)
class DeviceProfile:
    """A device with calibrated per-operation throughput.

    The profile answers two questions the benchmarks need: how many operations
    of a kind the device performs per second, and how long a batch of mixed
    operations (the client query-answering pipeline) takes.
    """

    kind: DeviceKind
    clock_ghz: float
    cores: int

    @classmethod
    def phone(cls) -> "DeviceProfile":
        """Android Galaxy S III mini: 1.5 GHz, dual core."""
        return cls(kind=DeviceKind.PHONE, clock_ghz=1.5, cores=2)

    @classmethod
    def laptop(cls) -> "DeviceProfile":
        """MacBook Air: 2.2 GHz Core i7."""
        return cls(kind=DeviceKind.LAPTOP, clock_ghz=2.2, cores=4)

    @classmethod
    def server(cls) -> "DeviceProfile":
        """Linux server: 2.2 GHz, 32 cores."""
        return cls(kind=DeviceKind.SERVER, clock_ghz=2.2, cores=32)

    @classmethod
    def all_devices(cls) -> list["DeviceProfile"]:
        return [cls.phone(), cls.laptop(), cls.server()]

    # -- throughput model ----------------------------------------------------

    def ops_per_second(self, operation: OperationKind) -> float:
        """Calibrated operations per second for one operation kind."""
        key = (self.kind, operation)
        if key not in _CALIBRATED_OPS_PER_SEC:
            raise KeyError(f"no calibration for {self.kind.value}/{operation.value}")
        return _CALIBRATED_OPS_PER_SEC[key]

    def xor_decrypt_ops_per_second(self) -> float:
        """Calibrated XOR decryption throughput (aggregator-side operation)."""
        return _XOR_DECRYPT_OPS[self.kind]

    def seconds_per_op(self, operation: OperationKind) -> float:
        """Time for one operation, in seconds."""
        return 1.0 / self.ops_per_second(operation)

    def pipeline_ops_per_second(self, operations: list[OperationKind]) -> float:
        """Throughput of a pipeline executing each operation once per item.

        The client query-answering pipeline runs SQLite read, randomized
        response and XOR encryption in sequence; its throughput is the inverse
        of the summed per-operation times (Table 3's "Total" row).
        """
        if not operations:
            raise ValueError("pipeline must contain at least one operation")
        total_time = sum(self.seconds_per_op(op) for op in operations)
        return 1.0 / total_time

    def time_for(self, operation: OperationKind, count: int) -> float:
        """Seconds needed to run ``count`` operations of one kind."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return count * self.seconds_per_op(operation)

    def speedup_versus(self, other: "DeviceProfile", operation: OperationKind) -> float:
        """How many times faster this device is than ``other`` for an operation."""
        return self.ops_per_second(operation) / other.ops_per_second(operation)
