"""Synthetic workload generators used by the evaluation.

The paper's case studies replay two real datasets we do not have — the NYC
Taxi rides from the DEBS 2015 Grand Challenge and a household electricity
consumption trace.  The generators here produce synthetic equivalents whose
bucket-fraction distributions match the published characteristics (about a
third of taxi rides fall into the first distance bucket; household power draw
is skewed toward low consumption), which is the only property the utility and
privacy results depend on.

A generic yes/no answer generator backs the microbenchmarks that need "10,000
original answers, 60% of which are Yes".
"""

from repro.datasets.synthetic import SyntheticAnswers, generate_binary_answers
from repro.datasets.taxi import TaxiRideGenerator, TAXI_DISTANCE_BUCKETS
from repro.datasets.electricity import ElectricityGenerator, ELECTRICITY_BUCKETS

__all__ = [
    "SyntheticAnswers",
    "generate_binary_answers",
    "TaxiRideGenerator",
    "TAXI_DISTANCE_BUCKETS",
    "ElectricityGenerator",
    "ELECTRICITY_BUCKETS",
]
