"""Synthetic household electricity consumption stream.

The second case study analyses "the electricity usage distribution of
households over the past 30 minutes" with six answer buckets between 0 and
3 kWh (Section 7.1).  Real half-hourly household consumption is strongly
right-skewed — most intervals draw little power, with occasional peaks from
heating or cooking — so the generator draws from a gamma distribution whose
mass is concentrated in the first buckets.  Records carry a household
identifier, a reading timestamp and a tariff band, giving the client-side SQL
realistic columns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.query import RangeBuckets

# The paper's six buckets: [0, 0.5], (0.5, 1], ..., (2.5, 3] kWh.  We model
# them as half-open ranges [0, 0.5), [0.5, 1.0), ..., [2.5, 3.0) with a final
# catch-all so every reading is bucketable.
ELECTRICITY_BUCKETS = RangeBuckets(
    boundaries=(0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0), open_ended=True
)

_TARIFFS = ["standard", "economy", "peak"]

# Gamma parameters: mean ~0.55 kWh per 30-minute interval, right-skewed.
_GAMMA_SHAPE = 1.6
_GAMMA_SCALE = 0.35


@dataclass
class ElectricityGenerator:
    """Generates synthetic half-hourly household consumption readings."""

    seed: int | None = None
    rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def reading_kwh(self) -> float:
        """One 30-minute consumption reading in kWh."""
        return min(5.0, self.rng.gammavariate(_GAMMA_SHAPE, _GAMMA_SCALE))

    def reading(self, household_index: int, timestamp: float) -> dict:
        return {
            "household_id": f"home-{household_index:05d}",
            "reading_time": timestamp,
            "kwh": round(self.reading_kwh(), 4),
            "tariff": self.rng.choice(_TARIFFS),
            "region": "metro",
        }

    def readings_for_client(
        self,
        household_index: int,
        num_readings: int,
        start_time: float = 0.0,
        interval: float = 1800.0,
    ) -> list[dict]:
        """The reading history of one household (one PrivApprox client)."""
        if num_readings < 0:
            raise ValueError("num_readings must be non-negative")
        return [
            self.reading(household_index, start_time + i * interval)
            for i in range(num_readings)
        ]

    def readings(self, count: int) -> list[float]:
        return [self.reading_kwh() for _ in range(count)]

    def bucket_indices(self, count: int) -> list[int]:
        out = []
        for _ in range(count):
            index = ELECTRICITY_BUCKETS.bucket_of(self.reading_kwh())
            out.append(index if index is not None else ELECTRICITY_BUCKETS.num_buckets - 1)
        return out

    @staticmethod
    def table_columns() -> list[tuple[str, str]]:
        return [
            ("household_id", "TEXT"),
            ("reading_time", "REAL"),
            ("kwh", "REAL"),
            ("tariff", "TEXT"),
            ("region", "TEXT"),
        ]

    @staticmethod
    def case_study_sql() -> str:
        """The case-study query: electricity usage over the last 30 minutes."""
        return "SELECT kwh FROM private_data WHERE region = 'metro'"
