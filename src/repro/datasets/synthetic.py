"""Generic synthetic yes/no answer populations for the microbenchmarks."""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class SyntheticAnswers:
    """A population of binary answers with a known truthful-Yes count."""

    answers: tuple
    yes_fraction: float

    @property
    def total(self) -> int:
        return len(self.answers)

    @property
    def true_yes(self) -> int:
        return sum(self.answers)

    def as_list(self) -> list[int]:
        return list(self.answers)


def generate_binary_answers(
    total: int, yes_fraction: float, seed: int | None = None, shuffle: bool = True
) -> SyntheticAnswers:
    """Generate ``total`` binary answers with an exact Yes fraction.

    The microbenchmarks require an exact count ("10,000 original answers, 60%
    of which are Yes"), so the Yes answers are materialized deterministically
    and only their order is randomized.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not 0.0 <= yes_fraction <= 1.0:
        raise ValueError("yes_fraction must lie in [0, 1]")
    num_yes = round(total * yes_fraction)
    answers = [1] * num_yes + [0] * (total - num_yes)
    if shuffle:
        random.Random(seed).shuffle(answers)
    return SyntheticAnswers(answers=tuple(answers), yes_fraction=yes_fraction)


def generate_bucketed_answers(
    total: int,
    bucket_fractions: list[float],
    seed: int | None = None,
) -> list[int]:
    """Generate bucket indices following a target fraction per bucket.

    Used to synthesize multi-bucket populations (e.g. a histogram query with a
    known ground-truth distribution).  The counts are assigned largest-remainder
    style so they sum exactly to ``total``.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not bucket_fractions:
        raise ValueError("need at least one bucket")
    if any(f < 0 for f in bucket_fractions):
        raise ValueError("bucket fractions must be non-negative")
    weight = sum(bucket_fractions)
    if weight == 0:
        raise ValueError("bucket fractions must not all be zero")
    normalized = [f / weight for f in bucket_fractions]
    exact = [total * f for f in normalized]
    counts = [int(x) for x in exact]
    remainder = total - sum(counts)
    fractional = sorted(
        range(len(exact)), key=lambda i: exact[i] - counts[i], reverse=True
    )
    for i in range(remainder):
        counts[fractional[i % len(fractional)]] += 1
    indices: list[int] = []
    for bucket, count in enumerate(counts):
        indices.extend([bucket] * count)
    random.Random(seed).shuffle(indices)
    return indices
