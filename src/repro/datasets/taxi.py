"""Synthetic NYC-taxi-like ride stream (DEBS 2015 Grand Challenge substitute).

The first case study asks "What is the distance distribution of taxi rides in
New York?" with 11 answer buckets of one mile each plus an open-ended tail
(Section 7.1).  The paper notes that the fraction of rides in the first bucket
is 33.57%, which is why the accuracy loss is smallest around ``q = 0.3``
(Section 7.2 #III).

The generator draws trip distances from a log-normal distribution whose
parameters are chosen so that roughly a third of the rides fall below one
mile, reproducing that crucial property of the real trace.  Each record also
carries a pickup timestamp, a synthetic taxi identifier and a borough, so the
client-side SQL (projection + WHERE filter) has realistic columns to work on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.query import RangeBuckets

# The paper's 11 distance buckets: [0,1), [1,2), ..., [9,10), [10, +inf) miles.
TAXI_DISTANCE_BUCKETS = RangeBuckets(
    boundaries=tuple(float(i) for i in range(11)), open_ended=True
)

_BOROUGHS = ["Manhattan", "Brooklyn", "Queens", "Bronx", "Staten Island"]
_BOROUGH_WEIGHTS = [0.62, 0.18, 0.13, 0.05, 0.02]

# Log-normal parameters: median exp(mu) ~ 1.7 miles, P(distance < 1) ~ 0.34,
# matching the ~33.6% first-bucket share the paper reports.
_LOGNORMAL_MU = 0.54
_LOGNORMAL_SIGMA = 1.30


@dataclass
class TaxiRideGenerator:
    """Generates synthetic taxi ride records and per-client partitions."""

    seed: int | None = None
    rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def ride_distance(self) -> float:
        """One trip distance in miles (log-normal, heavy right tail)."""
        return self.rng.lognormvariate(_LOGNORMAL_MU, _LOGNORMAL_SIGMA)

    def ride(self, taxi_index: int, timestamp: float) -> dict:
        """One ride record with the columns the case-study query uses."""
        distance = self.ride_distance()
        borough = self.rng.choices(_BOROUGHS, weights=_BOROUGH_WEIGHTS, k=1)[0]
        fare = 2.5 + 2.5 * distance + self.rng.uniform(0.0, 3.0)
        duration_minutes = max(1.0, distance * self.rng.uniform(3.0, 7.0))
        return {
            "taxi_id": f"taxi-{taxi_index:05d}",
            "pickup_time": timestamp,
            "distance": round(distance, 3),
            "fare": round(fare, 2),
            "duration_minutes": round(duration_minutes, 1),
            "borough": borough,
            "city": "New York",
        }

    def rides_for_client(
        self, taxi_index: int, num_rides: int, start_time: float = 0.0, interval: float = 600.0
    ) -> list[dict]:
        """The ride history of one taxi (one PrivApprox client)."""
        if num_rides < 0:
            raise ValueError("num_rides must be non-negative")
        return [
            self.ride(taxi_index, start_time + i * interval) for i in range(num_rides)
        ]

    def distances(self, count: int) -> list[float]:
        """A flat list of trip distances (for analytical benchmarks)."""
        return [self.ride_distance() for _ in range(count)]

    def bucket_indices(self, count: int) -> list[int]:
        """Bucket index of each generated ride distance."""
        out = []
        for _ in range(count):
            index = TAXI_DISTANCE_BUCKETS.bucket_of(self.ride_distance())
            out.append(index if index is not None else TAXI_DISTANCE_BUCKETS.num_buckets - 1)
        return out

    def expected_first_bucket_fraction(self) -> float:
        """Analytical P(distance < 1 mile) of the generating distribution."""
        z = (math.log(1.0) - _LOGNORMAL_MU) / _LOGNORMAL_SIGMA
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    @staticmethod
    def table_columns() -> list[tuple[str, str]]:
        """Column definitions for the client-local rides table."""
        return [
            ("taxi_id", "TEXT"),
            ("pickup_time", "REAL"),
            ("distance", "REAL"),
            ("fare", "REAL"),
            ("duration_minutes", "REAL"),
            ("borough", "TEXT"),
            ("city", "TEXT"),
        ]

    @staticmethod
    def case_study_sql() -> str:
        """The case-study query: ride distances in New York."""
        return "SELECT distance FROM private_data WHERE city = 'New York'"
