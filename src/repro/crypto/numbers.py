"""Number-theoretic helpers shared by the public-key schemes.

These routines back the from-scratch RSA, Goldwasser-Micali and Paillier
implementations used as comparators in Table 2.  They favour clarity over raw
speed — the benchmark only needs the relative ordering of the schemes, which a
straightforward implementation preserves (XOR remains orders of magnitude
cheaper than any modular-exponentiation scheme).
"""

from __future__ import annotations

import math
import random

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def is_probable_prime(n: int, rounds: int = 20, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test with ``rounds`` random witnesses."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random()
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random | None = None) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    rng = rng or random.Random()
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``; raises if it does not exist."""
    g, x, _ = _extended_gcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    return abs(a * b) // math.gcd(a, b)


def jacobi_symbol(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd ``n`` > 0."""
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol requires odd positive n")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def random_coprime(n: int, rng: random.Random) -> int:
    """Return a random integer in ``[1, n)`` coprime to ``n``."""
    while True:
        candidate = rng.randrange(1, n)
        if math.gcd(candidate, n) == 1:
            return candidate
