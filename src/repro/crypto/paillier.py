"""Paillier additively homomorphic encryption.

Used by "Differentially private aggregation of distributed time-series"
(SIGMOD'10), another comparator in Table 2.  Paillier supports adding
ciphertexts, which those systems use for aggregate queries; the cost of the
modular exponentiations is what PrivApprox's XOR scheme avoids.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.crypto.numbers import generate_prime, lcm, modinv


@dataclass(frozen=True)
class PaillierPublicKey:
    """Paillier public key ``(n, g)`` with ``g = n + 1``."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def g(self) -> int:
        return self.n + 1

    def encrypt(self, message: int, rng: random.Random | None = None) -> int:
        """Encrypt an integer ``0 <= message < n``."""
        if not 0 <= message < self.n:
            raise ValueError("message out of range for this key")
        rng = rng or random.Random()
        n_sq = self.n_squared
        while True:
            r = rng.randrange(1, self.n)
            if math.gcd(r, self.n) == 1:
                break
        # With g = n + 1, g^m mod n^2 == 1 + m*n, avoiding one exponentiation.
        gm = (1 + message * self.n) % n_sq
        return (gm * pow(r, self.n, n_sq)) % n_sq

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphically add two ciphertexts."""
        return (ciphertext_a * ciphertext_b) % self.n_squared

    def add_plain(self, ciphertext: int, plaintext: int) -> int:
        """Homomorphically add a plaintext constant to a ciphertext."""
        gm = (1 + plaintext * self.n) % self.n_squared
        return (ciphertext * gm) % self.n_squared


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Paillier private key ``(lambda, mu)`` bound to a public key."""

    public: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, ciphertext: int) -> int:
        n = self.public.n
        n_sq = self.public.n_squared
        if not 0 <= ciphertext < n_sq:
            raise ValueError("ciphertext out of range for this key")
        u = pow(ciphertext, self.lam, n_sq)
        l_value = (u - 1) // n
        return (l_value * self.mu) % n


@dataclass(frozen=True)
class PaillierKeyPair:
    public: PaillierPublicKey
    private: PaillierPrivateKey


def generate_paillier_keypair(key_size_bits: int = 1024, seed: int | None = None) -> PaillierKeyPair:
    """Generate a Paillier key pair with modulus of roughly ``key_size_bits`` bits."""
    rng = random.Random(seed)
    half = key_size_bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(key_size_bits - half, rng)
        if p != q and math.gcd(p * q, (p - 1) * (q - 1)) == 1:
            break
    n = p * q
    lam = lcm(p - 1, q - 1)
    public = PaillierPublicKey(n=n)
    # mu = (L(g^lambda mod n^2))^-1 mod n, with g = n + 1 this is lambda^-1 mod n.
    u = pow(public.g, lam, public.n_squared)
    l_value = (u - 1) // n
    mu = modinv(l_value, n)
    return PaillierKeyPair(public=public, private=PaillierPrivateKey(public=public, lam=lam, mu=mu))
