"""XOR-based encryption used for the synchronization-free proxy pipeline.

Section 3.2.3 of the paper describes the scheme: to send a message ``M`` of
length ``l`` through ``n`` proxies, the client generates ``n - 1`` random key
strings ``MK_2 ... MK_n`` of the same length; their XOR is the secret ``MK``;
the encrypted payload is ``ME = M xor MK``.  The encrypted message goes to one
proxy and each key string to another proxy, all tagged with the same message
identifier ``MID`` so the aggregator can re-join and decrypt them.  Because the
n shares are individually indistinguishable from random bit strings, no proxy
learns anything about the answer, and no proxy coordination is needed.

This module implements the byte-level primitives:

* :func:`xor_bytes` — constant-helper bitwise XOR of equal-length byte strings.
* :class:`XorCipher` — a stateful cipher bound to a set of key shares.
* :func:`split_message` / :func:`join_shares` — the share-splitting protocol
  used by clients and the aggregator.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

from repro.crypto.prng import KeystreamGenerator


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Return the bitwise XOR of two equal-length byte strings.

    The XOR is computed word-at-a-time by treating each operand as one large
    integer, which is an order of magnitude faster than a per-byte Python loop
    for the keystream lengths the clients use.  ``xor_bytes_scalar`` keeps the
    byte-level reference implementation.
    """
    length = len(a)
    if length != len(b):
        raise ValueError(
            f"xor_bytes requires equal lengths, got {len(a)} and {len(b)}"
        )
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(length, "little")


def xor_bytes_scalar(a: bytes, b: bytes) -> bytes:
    """Byte-at-a-time reference implementation of :func:`xor_bytes`.

    Kept (and exercised by the regression tests) as the executable
    specification the vectorized path must match bit-for-bit.
    """
    if len(a) != len(b):
        raise ValueError(
            f"xor_bytes requires equal lengths, got {len(a)} and {len(b)}"
        )
    return bytes(x ^ y for x, y in zip(a, b))


def xor_many(parts: list[bytes]) -> bytes:
    """XOR together an arbitrary number of equal-length byte strings."""
    if not parts:
        raise ValueError("xor_many requires at least one part")
    length = len(parts[0])
    if any(len(part) != length for part in parts):
        raise ValueError("xor_many requires equal-length parts")
    accumulator = 0
    for part in parts:
        accumulator ^= int.from_bytes(part, "little")
    return accumulator.to_bytes(length, "little")


@dataclass(frozen=True)
class MessageShare:
    """A single share of a split message.

    Attributes
    ----------
    message_id:
        The ``MID`` joining all shares of one message.
    payload:
        Either the encrypted message ``ME`` or one key string ``MK_i``; the
        two are computationally indistinguishable by design.
    index:
        Position of the share (0 for ``ME``, 1..n-1 for key shares).  The
        aggregator does not need it for decryption — XOR of all shares
        recovers ``M`` regardless — but it is useful for routing and tests.
    """

    message_id: str
    payload: bytes
    index: int

    def size_bytes(self) -> int:
        """Wire size of this share (payload plus a 16-byte MID)."""
        return len(self.payload) + 16


@dataclass
class XorCipher:
    """One-time-pad cipher over a fixed number of key shares.

    Parameters
    ----------
    num_shares:
        Total number of shares ``n`` (encrypted message plus ``n - 1`` keys).
        The paper requires at least two proxies, hence ``n >= 2``.
    keystream:
        Optional deterministic keystream generator (used by tests); a fresh
        randomly seeded generator is created when omitted.
    """

    num_shares: int = 2
    keystream: KeystreamGenerator = field(default_factory=KeystreamGenerator)

    def __post_init__(self) -> None:
        if self.num_shares < 2:
            raise ValueError(
                f"XOR encryption needs at least 2 shares, got {self.num_shares}"
            )

    def encrypt(self, message: bytes, message_id: str | None = None) -> list[MessageShare]:
        """Split ``message`` into ``num_shares`` shares.

        The first returned share carries the encrypted payload ``ME``; the
        remaining shares carry the key strings ``MK_i``.  All shares have the
        same length as the message.
        """
        if message_id is None:
            message_id = uuid.uuid4().hex
        keys = [self.keystream.next_bytes(len(message)) for _ in range(self.num_shares - 1)]
        secret = keys[0]
        for key in keys[1:]:
            secret = xor_bytes(secret, key)
        encrypted = xor_bytes(message, secret)
        shares = [MessageShare(message_id=message_id, payload=encrypted, index=0)]
        shares.extend(
            MessageShare(message_id=message_id, payload=key, index=i + 1)
            for i, key in enumerate(keys)
        )
        return shares

    @staticmethod
    def decrypt(shares: list[MessageShare]) -> bytes:
        """Recover the original message from all shares of one ``MID``.

        The aggregator "just XORs all the n received messages" (Section 3.2.4):
        it cannot and need not distinguish ``ME`` from the key shares.
        """
        return join_shares(shares)


def split_message(
    message: bytes,
    num_proxies: int,
    keystream: KeystreamGenerator | None = None,
    message_id: str | None = None,
) -> list[MessageShare]:
    """Split ``message`` into one share per proxy (convenience wrapper)."""
    cipher = XorCipher(
        num_shares=num_proxies,
        keystream=keystream if keystream is not None else KeystreamGenerator(),
    )
    return cipher.encrypt(message, message_id=message_id)


def join_shares(shares: list[MessageShare]) -> bytes:
    """Join all shares of one message id and recover the plaintext."""
    if len(shares) < 2:
        raise ValueError("joining requires at least two shares")
    message_ids = {share.message_id for share in shares}
    if len(message_ids) != 1:
        raise ValueError(f"shares belong to different messages: {sorted(message_ids)}")
    lengths = {len(share.payload) for share in shares}
    if len(lengths) != 1:
        raise ValueError("shares of one message must have equal length")
    return xor_many([share.payload for share in shares])


def _group_is_joinable(shares: list[MessageShare]) -> bool:
    """The :func:`join_shares` preconditions as a predicate (no raising)."""
    if len(shares) < 2:
        return False
    if len({share.message_id for share in shares}) != 1:
        return False
    return len({len(share.payload) for share in shares}) == 1


def join_shares_batch(groups: list[list[MessageShare]]) -> list[bytes | None]:
    """Join many complete share groups in one vectorized XOR pass.

    The batched counterpart of calling :func:`join_shares` per group — the
    decrypt hot loop of the aggregator's grouped ``MID`` join.  Groups with
    the same share count and payload length (within one epoch's shard that is
    *all* of them: every answer to one query has the same encoded length) are
    concatenated per share position and XOR-ed as single big integers, so a
    shard of ``m`` answers costs ``n`` int conversions of ``m * l`` bytes
    instead of ``m * n`` conversions of ``l`` bytes.

    Returns one plaintext per group, in input order — or ``None`` where
    :func:`join_shares` would have raised (too few shares, mixed message ids,
    unequal lengths), so a malformed group degrades to a per-group skip
    instead of poisoning the batch.  The scalar reference stays the
    executable specification; the regression tests pin the two together.
    """
    plaintexts: list[bytes | None] = [None] * len(groups)
    buckets: dict[tuple[int, int], list[int]] = {}
    for index, shares in enumerate(groups):
        if _group_is_joinable(shares):
            key = (len(shares), len(shares[0].payload))
            buckets.setdefault(key, []).append(index)
    for (num_shares, length), indices in buckets.items():
        if len(indices) == 1 or length == 0:
            for index in indices:
                plaintexts[index] = xor_many([s.payload for s in groups[index]])
            continue
        accumulator = 0
        for position in range(num_shares):
            concatenated = b"".join(groups[index][position].payload for index in indices)
            accumulator ^= int.from_bytes(concatenated, "little")
        joined = accumulator.to_bytes(len(indices) * length, "little")
        for offset, index in enumerate(indices):
            plaintexts[index] = joined[offset * length : (offset + 1) * length]
    return plaintexts
