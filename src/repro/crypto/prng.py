"""Pseudo-random keystream generation for the XOR-based encryption scheme.

The paper requires each client to generate ``n - 1`` random bit strings using a
"cryptographic pseudo-random number generator (PRNG) seeded with a
cryptographically strong random number" (Section 3.2.3).  We provide a
:class:`KeystreamGenerator` built on SHA-256 in counter mode, which is a
standard construction for deriving an arbitrary-length keystream from a short
seed, plus a small helper for obtaining strong random seeds from the operating
system.
"""

from __future__ import annotations

import hashlib
import os
import struct

_DIGEST_SIZE = hashlib.sha256().digest_size


def secure_random_bytes(length: int) -> bytes:
    """Return ``length`` bytes of operating-system entropy.

    This is the "cryptographically strong random number" used to seed the
    keystream generator.  It simply wraps :func:`os.urandom` so that tests can
    monkeypatch a single location.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    return os.urandom(length)


class KeystreamGenerator:
    """SHA-256 counter-mode keystream generator.

    The generator produces a deterministic byte stream from a seed.  Two
    generators created with the same seed yield identical streams, which is
    what makes the XOR one-time-pad shares reproducible in tests while still
    being unpredictable to an attacker who does not know the seed.

    Parameters
    ----------
    seed:
        Seed bytes.  If ``None`` a fresh 32-byte seed is drawn from
        :func:`secure_random_bytes`.
    """

    def __init__(self, seed: bytes | None = None):
        if seed is None:
            seed = secure_random_bytes(32)
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = bytearray()

    @property
    def seed(self) -> bytes:
        """The seed this generator was created with."""
        return self._seed

    def getstate(self) -> tuple[bytes, int, bytes]:
        """Snapshot the full generator state as ``(seed, counter, buffer)``.

        Together with :meth:`setstate` this lets a client's keystream travel
        to another process (the process-pool epoch runtime serializes it into
        a shard task) and resume mid-stream: a restored generator produces
        exactly the bytes the original would have produced next.
        """
        return (self._seed, self._counter, bytes(self._buffer))

    def setstate(self, state: tuple[bytes, int, bytes]) -> None:
        """Restore a state captured by :meth:`getstate`."""
        seed, counter, buffer = state
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("state seed must be bytes")
        if not isinstance(counter, int) or counter < 0:
            raise ValueError(f"state counter must be a non-negative int, got {counter!r}")
        if not isinstance(buffer, (bytes, bytearray)):
            raise TypeError("state buffer must be bytes")
        self._seed = bytes(seed)
        self._counter = counter
        self._buffer = bytearray(buffer)

    def _refill(self, min_bytes: int = 1) -> None:
        """Extend the buffer with however many counter-mode blocks are needed.

        Generating all the blocks for a bulk request in one pass (and joining
        them once) keeps large ``next_bytes`` calls cheap; the byte stream is
        identical to refilling one block at a time.
        """
        num_blocks = max(1, -(-min_bytes // _DIGEST_SIZE))
        seed = self._seed
        counter = self._counter
        self._buffer.extend(
            b"".join(
                hashlib.sha256(seed + struct.pack(">Q", counter + i)).digest()
                for i in range(num_blocks)
            )
        )
        self._counter = counter + num_blocks

    def next_bytes(self, length: int) -> bytes:
        """Return the next ``length`` bytes of the keystream."""
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        missing = length - len(self._buffer)
        if missing > 0:
            self._refill(missing)
        out = bytes(self._buffer[:length])
        del self._buffer[:length]
        return out

    def next_bits(self, nbits: int) -> int:
        """Return an integer holding the next ``nbits`` bits of the keystream."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        if nbits == 0:
            return 0
        nbytes = (nbits + 7) // 8
        value = int.from_bytes(self.next_bytes(nbytes), "big")
        return value >> (nbytes * 8 - nbits)

    def randint_below(self, upper: int) -> int:
        """Return a uniformly distributed integer in ``[0, upper)``.

        Uses rejection sampling over the keystream so the result is unbiased.
        """
        if upper <= 0:
            raise ValueError(f"upper must be positive, got {upper}")
        nbits = upper.bit_length()
        while True:
            candidate = self.next_bits(nbits)
            if candidate < upper:
                return candidate

    def random_fraction(self) -> float:
        """Return a float uniformly distributed in ``[0, 1)``.

        53 bits of keystream are used, matching the precision of a Python
        float mantissa.
        """
        return self.next_bits(53) / (1 << 53)
