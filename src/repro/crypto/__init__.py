"""Cryptographic primitives used by PrivApprox and its comparators.

PrivApprox itself only needs the XOR one-time-pad scheme (:mod:`repro.crypto.xor`)
driven by a seeded pseudo-random generator (:mod:`repro.crypto.prng`).  The
public-key schemes — RSA, Goldwasser-Micali and Paillier — are implemented from
scratch so that Table 2 of the paper ("computational overhead of crypto
operations") can be regenerated: they are the schemes used by the prior systems
PrivApprox compares against.

All schemes expose an ``encrypt``/``decrypt`` pair over byte strings or small
integers and a ``keygen`` routine; see each module for details.
"""

from repro.crypto.prng import KeystreamGenerator, secure_random_bytes
from repro.crypto.xor import (
    XorCipher,
    split_message,
    join_shares,
    xor_bytes,
)
from repro.crypto.rsa import RSAKeyPair, generate_rsa_keypair
from repro.crypto.goldwasser_micali import GMKeyPair, generate_gm_keypair
from repro.crypto.paillier import PaillierKeyPair, generate_paillier_keypair

__all__ = [
    "KeystreamGenerator",
    "secure_random_bytes",
    "XorCipher",
    "split_message",
    "join_shares",
    "xor_bytes",
    "RSAKeyPair",
    "generate_rsa_keypair",
    "GMKeyPair",
    "generate_gm_keypair",
    "PaillierKeyPair",
    "generate_paillier_keypair",
]
