"""Textbook RSA used as the "public-key crypto" comparator from [10] in Table 2.

Only encryption/decryption of short messages is needed for the overhead
comparison; no padding scheme is implemented (the paper's comparison likewise
measures raw crypto operations).  The implementation supports arbitrary key
sizes; the benchmark uses 1024-bit keys to match the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.numbers import generate_prime, modinv


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def key_size_bits(self) -> int:
        return self.n.bit_length()

    def encrypt_int(self, message: int) -> int:
        """Encrypt an integer ``0 <= message < n``."""
        if not 0 <= message < self.n:
            raise ValueError("message out of range for this key")
        return pow(message, self.e, self.n)

    def encrypt_bytes(self, message: bytes) -> int:
        value = int.from_bytes(message, "big")
        return self.encrypt_int(value)


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key ``(n, d)`` with CRT parameters for faster decryption."""

    n: int
    d: int
    p: int
    q: int

    def decrypt_int(self, ciphertext: int) -> int:
        """Decrypt using the Chinese Remainder Theorem."""
        if not 0 <= ciphertext < self.n:
            raise ValueError("ciphertext out of range for this key")
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = modinv(self.q, self.p)
        m1 = pow(ciphertext, dp, self.p)
        m2 = pow(ciphertext, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q

    def decrypt_bytes(self, ciphertext: int, length: int) -> bytes:
        value = self.decrypt_int(ciphertext)
        return value.to_bytes(length, "big")


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA public/private key pair."""

    public: RSAPublicKey
    private: RSAPrivateKey


def generate_rsa_keypair(key_size_bits: int = 1024, seed: int | None = None) -> RSAKeyPair:
    """Generate an RSA key pair with modulus of roughly ``key_size_bits`` bits."""
    if key_size_bits < 64:
        raise ValueError("key size too small")
    rng = random.Random(seed)
    e = 65537
    half = key_size_bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(key_size_bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        d = modinv(e, phi)
        return RSAKeyPair(
            public=RSAPublicKey(n=n, e=e),
            private=RSAPrivateKey(n=n, d=d, p=p, q=q),
        )
