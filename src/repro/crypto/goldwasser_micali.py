"""Goldwasser-Micali bit-wise probabilistic encryption.

Used by "Towards Statistical Queries over Distributed Private User Data"
(NSDI'12), one of the systems PrivApprox compares against in Table 2.  GM
encrypts one bit at a time: a ciphertext is a quadratic residue modulo ``n``
iff the plaintext bit is 0.  It is therefore dramatically more expensive per
answer bit than the XOR one-time pad, which is exactly the point of the
comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.numbers import generate_prime, jacobi_symbol, random_coprime


@dataclass(frozen=True)
class GMPublicKey:
    """Goldwasser-Micali public key ``(n, x)`` with ``x`` a non-residue."""

    n: int
    x: int

    def encrypt_bit(self, bit: int, rng: random.Random) -> int:
        """Encrypt a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        y = random_coprime(self.n, rng)
        c = (y * y) % self.n
        if bit == 1:
            c = (c * self.x) % self.n
        return c

    def encrypt_bits(self, bits: list[int], rng: random.Random | None = None) -> list[int]:
        """Encrypt a bit vector (e.g. a client answer vector)."""
        rng = rng or random.Random()
        return [self.encrypt_bit(b, rng) for b in bits]


@dataclass(frozen=True)
class GMPrivateKey:
    """Goldwasser-Micali private key: the factorization ``(p, q)``."""

    p: int
    q: int

    def decrypt_bit(self, ciphertext: int) -> int:
        """Return 0 if the ciphertext is a quadratic residue, else 1."""
        legendre_p = pow(ciphertext, (self.p - 1) // 2, self.p)
        return 0 if legendre_p == 1 else 1

    def decrypt_bits(self, ciphertexts: list[int]) -> list[int]:
        return [self.decrypt_bit(c) for c in ciphertexts]


@dataclass(frozen=True)
class GMKeyPair:
    public: GMPublicKey
    private: GMPrivateKey


def generate_gm_keypair(key_size_bits: int = 1024, seed: int | None = None) -> GMKeyPair:
    """Generate a Goldwasser-Micali key pair."""
    rng = random.Random(seed)
    half = key_size_bits // 2
    p = generate_prime(half, rng)
    q = generate_prime(key_size_bits - half, rng)
    while q == p:
        q = generate_prime(key_size_bits - half, rng)
    n = p * q
    # Find x that is a quadratic non-residue mod both p and q (Jacobi symbol 1
    # but not a residue), the standard GM construction.
    while True:
        x = rng.randrange(2, n)
        if jacobi_symbol(x, p) == -1 and jacobi_symbol(x, q) == -1:
            break
    return GMKeyPair(public=GMPublicKey(n=n, x=x), private=GMPrivateKey(p=p, q=q))
