"""PrivApprox: privacy-preserving stream analytics — full Python reproduction.

This package reproduces the system described in *PrivApprox:
Privacy-Preserving Stream Analytics* (Quoc, Beck, Bhatotia, Chen, Fetzer,
Strufe — USENIX ATC 2017), including every substrate the paper builds on:

* :mod:`repro.core` — the paper's contribution: client-side sampling,
  randomized response, XOR share splitting through non-colluding proxies,
  window aggregation with error estimation, query inversion, historical
  analytics and the adaptive execution-budget interface.
* :mod:`repro.streaming` — a Flink-like dataflow engine (sliding windows,
  keyed joins) the aggregator runs on.
* :mod:`repro.pubsub` — a Kafka-like topic/partition broker the proxies run on.
* :mod:`repro.sqldb` — a SQLite-like SQL engine for client-local private data.
* :mod:`repro.crypto` — the XOR one-time pad plus the RSA / Goldwasser-Micali
  / Paillier comparators.
* :mod:`repro.netsim` — device, cluster and network cost models replacing the
  paper's physical testbed.
* :mod:`repro.storage` — an HDFS-like block store for historical analytics.
* :mod:`repro.baselines` — RAPPOR and SplitX comparison models.
* :mod:`repro.datasets` — synthetic NYC-taxi and household-electricity
  workload generators.
* :mod:`repro.analytics` — histogram results and utility metrics.

Quickstart::

    from repro.core import (
        Analyst, AnswerSpec, PrivApproxSystem, QueryBudget, SystemConfig,
    )
    from repro.datasets import TaxiRideGenerator, TAXI_DISTANCE_BUCKETS

    system = PrivApproxSystem(SystemConfig(num_clients=500, seed=7))
    generator = TaxiRideGenerator(seed=7)
    system.provision_clients(
        TaxiRideGenerator.table_columns(),
        lambda i: generator.rides_for_client(i, num_rides=5),
    )
    analyst = Analyst("acme")
    query = analyst.create_query(
        TaxiRideGenerator.case_study_sql(),
        AnswerSpec(buckets=TAXI_DISTANCE_BUCKETS, value_column="distance"),
        window_seconds=600, slide_seconds=600, frequency_seconds=600,
    )
    system.submit_query(analyst, query, QueryBudget(target_accuracy_loss=0.05))
    system.run_epochs(query.query_id, num_epochs=3)
    results = system.flush(query.query_id)
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "streaming",
    "pubsub",
    "sqldb",
    "crypto",
    "netsim",
    "storage",
    "baselines",
    "datasets",
    "analytics",
]
