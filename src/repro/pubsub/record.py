"""Record type for the in-memory pub/sub broker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def payload_size(value: Any) -> int:
    """Approximate wire size of a record payload.

    Understands sized objects (anything with ``size_bytes()``), raw bytes and
    strings, and — for the shard-batch records the pipelined runtime publishes
    — lists/tuples of payloads, which are sized as the sum of their elements
    (batch framing is charged once, at the record level).  The runtime's wire
    format (``repro.runtime.wire``) reuses this sizing for its shard batches,
    so a decoded batch and the records it came from agree on byte accounting.
    """
    if hasattr(value, "size_bytes"):
        return value.size_bytes()
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple)):
        return sum(payload_size(item) for item in value)
    return len(repr(value).encode("utf-8"))


@dataclass(frozen=True)
class Record:
    """A single published record.

    Attributes
    ----------
    value:
        Arbitrary payload (PrivApprox publishes :class:`~repro.crypto.xor.MessageShare`
        objects, batches of them, or serialized bytes).
    key:
        Optional partitioning key; records with the same key land in the same
        partition, preserving per-key order.
    timestamp:
        Logical event time in seconds, assigned by the producer.
    headers:
        Optional metadata attached by the producer.
    offset / partition / topic:
        Assigned by the broker when the record is appended.
    """

    value: Any
    key: str | None = None
    timestamp: float = 0.0
    headers: dict = field(default_factory=dict)
    topic: str | None = None
    partition: int | None = None
    offset: int | None = None

    def with_position(self, topic: str, partition: int, offset: int) -> "Record":
        """Return a copy annotated with its committed position in the log."""
        return Record(
            value=self.value,
            key=self.key,
            timestamp=self.timestamp,
            headers=self.headers,
            topic=topic,
            partition=partition,
            offset=offset,
        )

    def size_bytes(self) -> int:
        """Approximate wire size of the record, used by the network model."""
        key_size = len(self.key.encode("utf-8")) if self.key else 0
        return payload_size(self.value) + key_size + 16  # 16 bytes framing/timestamp
