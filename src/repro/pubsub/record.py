"""Record type for the in-memory pub/sub broker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Record:
    """A single published record.

    Attributes
    ----------
    value:
        Arbitrary payload (PrivApprox publishes :class:`~repro.crypto.xor.MessageShare`
        objects or serialized bytes).
    key:
        Optional partitioning key; records with the same key land in the same
        partition, preserving per-key order.
    timestamp:
        Logical event time in seconds, assigned by the producer.
    headers:
        Optional metadata attached by the producer.
    offset / partition / topic:
        Assigned by the broker when the record is appended.
    """

    value: Any
    key: str | None = None
    timestamp: float = 0.0
    headers: dict = field(default_factory=dict)
    topic: str | None = None
    partition: int | None = None
    offset: int | None = None

    def with_position(self, topic: str, partition: int, offset: int) -> "Record":
        """Return a copy annotated with its committed position in the log."""
        return Record(
            value=self.value,
            key=self.key,
            timestamp=self.timestamp,
            headers=self.headers,
            topic=topic,
            partition=partition,
            offset=offset,
        )

    def size_bytes(self) -> int:
        """Approximate wire size of the record, used by the network model."""
        value = self.value
        if hasattr(value, "size_bytes"):
            payload = value.size_bytes()
        elif isinstance(value, (bytes, bytearray)):
            payload = len(value)
        elif isinstance(value, str):
            payload = len(value.encode("utf-8"))
        else:
            payload = len(repr(value).encode("utf-8"))
        key_size = len(self.key.encode("utf-8")) if self.key else 0
        return payload + key_size + 16  # 16 bytes of framing/timestamp overhead
