"""Exceptions raised by the in-memory pub/sub broker."""


class PubSubError(Exception):
    """Base class for pub/sub errors."""


class UnknownTopicError(PubSubError):
    """Raised when producing to or consuming from a topic that does not exist."""


class UnknownPartitionError(PubSubError):
    """Raised when addressing a partition index outside the topic's range."""
