"""Topics and partitions: append-only ordered logs."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.pubsub.errors import UnknownPartitionError
from repro.pubsub.record import Record


@dataclass
class Partition:
    """One partition of a topic: an append-only log of records."""

    topic_name: str
    index: int
    records: list[Record] = field(default_factory=list)

    def append(self, record: Record) -> Record:
        """Append a record and return it annotated with its offset."""
        positioned = record.with_position(self.topic_name, self.index, len(self.records))
        self.records.append(positioned)
        return positioned

    def append_value(
        self, value, key: str | None, timestamp: float, headers: dict | None = None
    ) -> Record:
        """Construct a record directly at its committed position and append it.

        Equivalent to building an unpositioned :class:`Record` and calling
        :meth:`append`, but with a single dataclass construction — the batch
        publish path uses this to halve per-record allocation.
        """
        record = Record(
            value=value,
            key=key,
            timestamp=timestamp,
            headers=headers or {},
            topic=self.topic_name,
            partition=self.index,
            offset=len(self.records),
        )
        self.records.append(record)
        return record

    def read(self, offset: int = 0, max_records: int | None = None) -> list[Record]:
        """Read records starting at ``offset`` (up to ``max_records`` of them)."""
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        end = len(self.records) if max_records is None else offset + max_records
        return self.records[offset:end]

    @property
    def end_offset(self) -> int:
        """Offset one past the last record (the next offset to be assigned)."""
        return len(self.records)

    def total_bytes(self) -> int:
        """Total approximate wire size of all records in the partition."""
        return sum(record.size_bytes() for record in self.records)

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class Topic:
    """A named stream of records split into a fixed number of partitions."""

    name: str
    num_partitions: int = 1

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ValueError("a topic needs at least one partition")
        self.partitions = [Partition(self.name, i) for i in range(self.num_partitions)]

    def partition_for(self, key: str | None, round_robin_counter: int) -> int:
        """Choose a partition: hash of the key if present, else round-robin."""
        if key is None:
            return round_robin_counter % self.num_partitions
        digest = hashlib.sha1(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % self.num_partitions

    def partition(self, index: int) -> Partition:
        if not 0 <= index < self.num_partitions:
            raise UnknownPartitionError(
                f"topic {self.name} has {self.num_partitions} partitions, asked for {index}"
            )
        return self.partitions[index]

    def append(self, record: Record, round_robin_counter: int = 0) -> Record:
        """Route a record to a partition and append it."""
        index = self.partition_for(record.key, round_robin_counter)
        return self.partitions[index].append(record)

    def all_records(self) -> list[Record]:
        """All records across partitions, ordered by (partition, offset)."""
        out: list[Record] = []
        for partition in self.partitions:
            out.extend(partition.records)
        return out

    def total_records(self) -> int:
        return sum(len(p) for p in self.partitions)

    def total_bytes(self) -> int:
        return sum(p.total_bytes() for p in self.partitions)
