"""Producer API for the in-memory pub/sub broker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.pubsub.broker import BrokerCluster
from repro.pubsub.record import Record


@dataclass
class Producer:
    """Publishes records to topics on a broker cluster.

    Tracks how many records and bytes it has sent, which the network model
    uses to compute client → proxy traffic.
    """

    cluster: BrokerCluster
    client_id: str = "producer"
    records_sent: int = 0
    bytes_sent: int = 0
    _clock: float = field(default=0.0, repr=False)

    def send(
        self,
        topic: str,
        value: Any,
        key: str | None = None,
        timestamp: float | None = None,
        headers: dict | None = None,
    ) -> Record:
        """Publish one record and return it with its assigned position."""
        if timestamp is None:
            self._clock += 1.0
            timestamp = self._clock
        record = Record(
            value=value,
            key=key,
            timestamp=timestamp,
            headers=headers or {},
        )
        positioned = self.cluster.publish(topic, record)
        self.records_sent += 1
        self.bytes_sent += positioned.size_bytes()
        return positioned

    def send_batch(self, topic: str, values: list[Any], key: str | None = None) -> list[Record]:
        """Publish a list of values in order."""
        return [self.send(topic, value, key=key) for value in values]

    def send_many(
        self, topic: str, values: list[Any], keys: list[str] | None = None
    ) -> list[Record]:
        """Publish many values in one broker round-trip (per-value keys).

        Behaves exactly like calling :meth:`send` once per value — the same
        producer clock progression, partition routing and byte accounting —
        but goes through :meth:`BrokerCluster.publish_values`, which is what
        makes per-shard transmission cheaper than per-client sends.
        """
        if keys is not None and len(keys) != len(values):
            raise ValueError("send_many needs one key per value")
        if keys is None:
            keys = [None] * len(values)
        clock = self._clock
        timestamps = [clock + offset for offset in range(1, len(values) + 1)]
        self._clock = clock + len(values)
        positioned_batch = self.cluster.publish_values(topic, values, keys, timestamps)
        self.records_sent += len(positioned_batch)
        self.bytes_sent += sum(record.size_bytes() for record in positioned_batch)
        return positioned_batch
