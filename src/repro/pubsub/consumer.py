"""Consumer API for the in-memory pub/sub broker."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pubsub.broker import BrokerCluster
from repro.pubsub.errors import PubSubError
from repro.pubsub.record import Record


@dataclass
class Consumer:
    """A consumer that tracks its own offset in every partition it reads.

    ``poll`` returns new records since the last poll; ``seek_to_beginning``
    rewinds, mirroring the Kafka consumer API surface the aggregator needs.
    """

    cluster: BrokerCluster
    group_id: str = "default"
    consumer_id: str = "consumer"

    def __post_init__(self) -> None:
        self._offsets: dict[tuple[str, int], int] = {}
        self._subscriptions: list[str] = []

    def subscribe(self, topics: list[str]) -> None:
        """Subscribe to a list of topics (resets nothing; offsets start at 0)."""
        for name in topics:
            self.cluster.topic(name)  # validate existence
            if name not in self._subscriptions:
                self._subscriptions.append(name)

    @property
    def subscriptions(self) -> list[str]:
        return list(self._subscriptions)

    def poll(self, max_records: int | None = None) -> list[Record]:
        """Return records published since the previous poll, across topics."""
        if not self._subscriptions:
            raise PubSubError("poll() before subscribe()")
        out: list[Record] = []
        for topic_name in self._subscriptions:
            topic = self.cluster.topic(topic_name)
            for partition in topic.partitions:
                key = (topic_name, partition.index)
                offset = self._offsets.get(key, 0)
                remaining = None if max_records is None else max_records - len(out)
                if remaining is not None and remaining <= 0:
                    return out
                records = partition.read(offset, remaining)
                self._offsets[key] = offset + len(records)
                out.extend(records)
        return out

    def seek_to_beginning(self) -> None:
        """Rewind all partition offsets to zero."""
        self._offsets = {}

    def position(self, topic: str, partition: int) -> int:
        """Current offset for a topic partition."""
        return self._offsets.get((topic, partition), 0)

    def lag(self) -> int:
        """Total number of unconsumed records across subscribed topics."""
        total = 0
        for topic_name in self._subscriptions:
            topic = self.cluster.topic(topic_name)
            for partition in topic.partitions:
                consumed = self._offsets.get((topic_name, partition.index), 0)
                total += partition.end_offset - consumed
        return total


@dataclass
class ConsumerGroup:
    """A set of consumers sharing partitions of the subscribed topics.

    Partitions are assigned range-style across members, as Kafka does: member
    ``i`` of ``k`` handles partitions ``p`` with ``p % k == i``.
    """

    cluster: BrokerCluster
    group_id: str
    num_members: int = 1
    members: list[Consumer] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_members < 1:
            raise PubSubError("a consumer group needs at least one member")
        if not self.members:
            self.members = [
                Consumer(self.cluster, group_id=self.group_id, consumer_id=f"{self.group_id}-{i}")
                for i in range(self.num_members)
            ]
        self._topics: list[str] = []

    def subscribe(self, topics: list[str]) -> None:
        for name in topics:
            self.cluster.topic(name)
            if name not in self._topics:
                self._topics.append(name)

    def poll_all(self) -> list[Record]:
        """Poll every member and merge results, respecting partition assignment."""
        if not self._topics:
            raise PubSubError("poll_all() before subscribe()")
        out: list[Record] = []
        for member_index, member in enumerate(self.members):
            for topic_name in self._topics:
                topic = self.cluster.topic(topic_name)
                for partition in topic.partitions:
                    if partition.index % self.num_members != member_index:
                        continue
                    key = (topic_name, partition.index)
                    offset = member._offsets.get(key, 0)
                    records = partition.read(offset)
                    member._offsets[key] = offset + len(records)
                    out.extend(records)
        return out
