"""An in-memory publish-subscribe message broker, standing in for Apache Kafka.

PrivApprox proxies are implemented on Kafka: clients publish their encrypted
answer shares and key shares to two topics ("answer" and "key"), and the
aggregator consumes both (Section 5, "Proxies").  This package reproduces the
parts of Kafka the system relies on:

* topics split into partitions, each an append-only ordered log;
* brokers hosting partitions, grouped in a :class:`BrokerCluster` so that
  partition leadership can be spread over several nodes;
* producers that publish records (optionally keyed, for stable partitioning);
* consumers and consumer groups with per-partition offsets, supporting both
  "read everything so far" batch consumption and incremental polling.

The implementation is single-process and synchronous; the simulated cluster in
:mod:`repro.netsim` supplies the throughput model for the scalability
experiments, while this package supplies the real routing semantics the
PrivApprox pipeline is built on.
"""

from repro.pubsub.record import Record, payload_size
from repro.pubsub.topic import Topic, Partition
from repro.pubsub.broker import Broker, BrokerCluster
from repro.pubsub.producer import Producer
from repro.pubsub.consumer import Consumer, ConsumerGroup
from repro.pubsub.errors import PubSubError, UnknownTopicError

__all__ = [
    "Record",
    "payload_size",
    "Topic",
    "Partition",
    "Broker",
    "BrokerCluster",
    "Producer",
    "Consumer",
    "ConsumerGroup",
    "PubSubError",
    "UnknownTopicError",
]
