"""Brokers and broker clusters hosting topics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pubsub.errors import PubSubError, UnknownTopicError
from repro.pubsub.record import Record
from repro.pubsub.topic import Topic


@dataclass
class Broker:
    """A single broker node hosting a set of topics.

    In a real Kafka deployment partitions are spread over brokers; in this
    in-memory model a :class:`BrokerCluster` owns the topics and assigns
    partition leadership to brokers, while each broker tracks the counters
    needed for throughput accounting (records and bytes handled).
    """

    broker_id: int
    records_handled: int = 0
    bytes_handled: int = 0

    def account(self, record: Record) -> None:
        """Record that this broker handled one record (for metrics)."""
        self.records_handled += 1
        self.bytes_handled += record.size_bytes()

    def account_batch(self, num_records: int, num_bytes: int) -> None:
        """Record a whole batch of handled records with one counter update."""
        self.records_handled += num_records
        self.bytes_handled += num_bytes

    def reset_metrics(self) -> None:
        self.records_handled = 0
        self.bytes_handled = 0


@dataclass
class BrokerCluster:
    """A cluster of brokers sharing a topic namespace.

    Partition leadership is assigned round-robin over brokers, mirroring
    Kafka's default balanced assignment.  All appends go through the cluster
    so that per-broker accounting stays accurate.
    """

    num_brokers: int = 1
    brokers: list[Broker] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_brokers < 1:
            raise PubSubError("a cluster needs at least one broker")
        if not self.brokers:
            self.brokers = [Broker(broker_id=i) for i in range(self.num_brokers)]
        self._topics: dict[str, Topic] = {}
        self._leaders: dict[tuple[str, int], int] = {}
        self._round_robin = 0

    # -- topic management -------------------------------------------------

    def create_topic(self, name: str, num_partitions: int = 1) -> Topic:
        """Create a topic and assign partition leaders round-robin."""
        if name in self._topics:
            raise PubSubError(f"topic {name} already exists")
        topic = Topic(name=name, num_partitions=num_partitions)
        self._topics[name] = topic
        for index in range(num_partitions):
            self._leaders[(name, index)] = index % self.num_brokers
        return topic

    def ensure_topic(self, name: str, num_partitions: int = 1) -> Topic:
        """Create the topic if needed, otherwise return the existing one."""
        if name in self._topics:
            return self._topics[name]
        return self.create_topic(name, num_partitions)

    def topic(self, name: str) -> Topic:
        if name not in self._topics:
            raise UnknownTopicError(f"unknown topic: {name}")
        return self._topics[name]

    def topic_names(self) -> list[str]:
        return sorted(self._topics)

    def leader_for(self, topic_name: str, partition_index: int) -> Broker:
        """The broker leading a given partition."""
        key = (topic_name, partition_index)
        if key not in self._leaders:
            raise UnknownTopicError(f"unknown topic/partition: {key}")
        return self.brokers[self._leaders[key]]

    # -- produce / consume --------------------------------------------------

    def publish(self, topic_name: str, record: Record) -> Record:
        """Append a record to the topic, accounting it to the partition leader."""
        topic = self.topic(topic_name)
        self._round_robin += 1
        positioned = topic.append(record, round_robin_counter=self._round_robin)
        leader = self.leader_for(topic_name, positioned.partition)
        leader.account(positioned)
        return positioned

    def publish_values(
        self,
        topic_name: str,
        values: list,
        keys: list[str | None],
        timestamps: list[float],
    ) -> list[Record]:
        """Append many values to one topic with aggregated accounting.

        Equivalent to wrapping each value in a :class:`Record` and calling
        :meth:`publish` once per record (same partition routing, same
        round-robin progression, same counters) but with one topic lookup,
        a single record construction per value, and one accounting update per
        partition leader — the fast path the sharded epoch runtime batches
        into.
        """
        topic = self.topic(topic_name)
        round_robin = self._round_robin
        positioned_batch: list[Record] = []
        per_partition: dict[int, list[int]] = {}
        for value, key, timestamp in zip(values, keys, timestamps):
            round_robin += 1
            index = topic.partition_for(key, round_robin)
            positioned = topic.partitions[index].append_value(value, key, timestamp)
            positioned_batch.append(positioned)
            stats = per_partition.setdefault(index, [0, 0])
            stats[0] += 1
            stats[1] += positioned.size_bytes()
        self._round_robin = round_robin
        for index, (count, num_bytes) in per_partition.items():
            self.leader_for(topic_name, index).account_batch(count, num_bytes)
        return positioned_batch

    def fetch(
        self,
        topic_name: str,
        partition_index: int,
        offset: int,
        max_records: int | None = None,
    ) -> list[Record]:
        """Read records from one partition starting at ``offset``."""
        return self.topic(topic_name).partition(partition_index).read(offset, max_records)

    # -- metrics ----------------------------------------------------------------

    def total_records(self) -> int:
        return sum(topic.total_records() for topic in self._topics.values())

    def total_bytes(self) -> int:
        return sum(topic.total_bytes() for topic in self._topics.values())

    def reset_metrics(self) -> None:
        for broker in self.brokers:
            broker.reset_metrics()
