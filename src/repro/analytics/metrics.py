"""Utility metrics: accuracy loss and relative error.

The paper defines the accuracy loss of an estimate as
``η = |A_y - E_y| / A_y`` (Equation 6) where ``A_y`` is the actual value and
``E_y`` the estimated one; the case studies use the same metric written as
``|estimate - exact| / exact`` (Section 7.1).
"""

from __future__ import annotations

from typing import Sequence


def accuracy_loss(actual: float, estimate: float) -> float:
    """Relative accuracy loss ``|actual - estimate| / actual`` (Equation 6).

    A zero actual with a zero estimate is a perfect answer (loss 0); a zero
    actual with a non-zero estimate is reported as the absolute estimate so the
    metric stays finite and monotone in the error.
    """
    if actual == 0:
        return abs(estimate)
    return abs(actual - estimate) / abs(actual)


def relative_error(actual: float, estimate: float) -> float:
    """Signed relative error ``(estimate - actual) / actual``."""
    if actual == 0:
        return estimate
    return (estimate - actual) / actual


def mean_accuracy_loss(actuals: Sequence[float], estimates: Sequence[float]) -> float:
    """Mean accuracy loss over paired actual/estimated values.

    Pairs whose actual value is zero are skipped (they carry no relative
    information); if every pair is zero the loss is zero.
    """
    if len(actuals) != len(estimates):
        raise ValueError("actuals and estimates must have the same length")
    losses = [
        accuracy_loss(actual, estimate)
        for actual, estimate in zip(actuals, estimates)
        if actual != 0
    ]
    if not losses:
        return 0.0
    return sum(losses) / len(losses)


def histogram_accuracy_loss(exact_counts: Sequence[float], estimated_counts: Sequence[float]) -> float:
    """Accuracy loss of a whole histogram.

    Computed as the total absolute deviation over the total exact count, which
    matches the way the case studies report a single utility number per
    query result.
    """
    if len(exact_counts) != len(estimated_counts):
        raise ValueError("histograms must have the same number of buckets")
    total_exact = sum(abs(v) for v in exact_counts)
    if total_exact == 0:
        return sum(abs(v) for v in estimated_counts)
    deviation = sum(abs(e - a) for a, e in zip(exact_counts, estimated_counts))
    return deviation / total_exact
