"""Small helpers for working with bucket-fraction distributions."""

from __future__ import annotations

from typing import Sequence


def normalize(values: Sequence[float]) -> list[float]:
    """Scale non-negative values so they sum to 1 (all-zero input stays zero)."""
    if any(v < 0 for v in values):
        raise ValueError("normalize expects non-negative values")
    total = sum(values)
    if total == 0:
        return [0.0 for _ in values]
    return [v / total for v in values]


def empirical_fractions(bucket_indices: Sequence[int], num_buckets: int) -> list[float]:
    """Fraction of items falling into each of ``num_buckets`` buckets."""
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    counts = [0] * num_buckets
    for index in bucket_indices:
        if not 0 <= index < num_buckets:
            raise ValueError(f"bucket index {index} out of range [0, {num_buckets})")
        counts[index] += 1
    return normalize(counts)


def counts_from_indices(bucket_indices: Sequence[int], num_buckets: int) -> list[int]:
    """Raw per-bucket counts for a list of bucket indices."""
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    counts = [0] * num_buckets
    for index in bucket_indices:
        if not 0 <= index < num_buckets:
            raise ValueError(f"bucket index {index} out of range [0, {num_buckets})")
        counts[index] += 1
    return counts
