"""Histogram-bucket query results with confidence intervals."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BucketEstimate:
    """The estimate for one answer bucket: a value and its error bound.

    The aggregator reports ``estimate ± error_bound`` for every bucket
    (Section 3.2.4); ``confidence_level`` records the significance level the
    bound was computed at (e.g. 0.95).
    """

    bucket_index: int
    label: str
    estimate: float
    error_bound: float = 0.0
    confidence_level: float = 0.95

    @property
    def lower(self) -> float:
        return self.estimate - self.error_bound

    @property
    def upper(self) -> float:
        return self.estimate + self.error_bound

    def contains(self, value: float) -> bool:
        """Whether the confidence interval covers ``value``."""
        return self.lower <= value <= self.upper


@dataclass
class HistogramResult:
    """A complete query result: one estimate per answer bucket.

    This is what the analyst receives for every sliding window.  The optional
    ``window`` field carries the (start, end) pair the result belongs to;
    historical (batch) results leave it as ``None``.
    """

    buckets: list[BucketEstimate] = field(default_factory=list)
    window: tuple[float, float] | None = None
    num_answers: int = 0

    def add_bucket(self, bucket: BucketEstimate) -> None:
        self.buckets.append(bucket)

    def estimates(self) -> list[float]:
        """Bucket estimates in index order."""
        return [b.estimate for b in sorted(self.buckets, key=lambda b: b.bucket_index)]

    def error_bounds(self) -> list[float]:
        return [b.error_bound for b in sorted(self.buckets, key=lambda b: b.bucket_index)]

    def labels(self) -> list[str]:
        return [b.label for b in sorted(self.buckets, key=lambda b: b.bucket_index)]

    def total(self) -> float:
        """Total estimated count across buckets."""
        return sum(b.estimate for b in self.buckets)

    def fractions(self) -> list[float]:
        """Bucket estimates normalized to fractions of the total (0 if empty)."""
        total = self.total()
        if total <= 0:
            return [0.0 for _ in self.buckets]
        return [value / total for value in self.estimates()]

    def bucket(self, index: int) -> BucketEstimate:
        for candidate in self.buckets:
            if candidate.bucket_index == index:
                return candidate
        raise KeyError(f"no bucket with index {index}")

    def __len__(self) -> int:
        return len(self.buckets)
