"""Analytics helpers: histogram results, utility metrics, distribution tools.

PrivApprox expresses every query result as counts within histogram buckets
(Section 2.2), and its evaluation repeatedly compares an estimated histogram
to the exact one via the accuracy-loss metric ``|estimate - exact| / exact``.
This package centralizes those result types and metrics so the core pipeline,
the benchmarks and the case studies all measure utility the same way.
"""

from repro.analytics.histogram import HistogramResult, BucketEstimate
from repro.analytics.metrics import (
    accuracy_loss,
    mean_accuracy_loss,
    histogram_accuracy_loss,
    relative_error,
)
from repro.analytics.distributions import empirical_fractions, normalize

__all__ = [
    "HistogramResult",
    "BucketEstimate",
    "accuracy_loss",
    "mean_accuracy_loss",
    "histogram_accuracy_loss",
    "relative_error",
    "empirical_fractions",
    "normalize",
]
