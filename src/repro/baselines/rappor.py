"""Basic RAPPOR (Randomized Aggregatable Privacy-Preserving Ordinal Response).

RAPPOR (Erlingsson, Pihur, Korolova — CCS 2014) is the closest prior system to
PrivApprox's randomized-response core: each client encodes its value into a
Bloom filter of ``k`` bits using ``h`` hash functions, applies a *permanent*
randomized response with parameter ``f`` (memoized, protecting longitudinal
privacy), and optionally an *instantaneous* randomized response with
parameters ``(p, q)`` on every report.

PrivApprox's Figure 5(c) compares the two systems' differential-privacy levels
under the mapping ``p = 1 - f``, ``q = 0.5``, ``h = 1``, where both share the
same per-report randomization but PrivApprox additionally samples at the
source.  This module implements enough of RAPPOR — the one-hash "basic
RAPPOR" configuration plus the aggregate decoder — to run that comparison on
real code, and to serve as an independent randomized-response baseline in
tests.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RapporParams:
    """RAPPOR configuration.

    Attributes
    ----------
    num_bits:
        Bloom filter size ``k``.  Basic RAPPOR uses one bit per candidate
        value (no hashing collisions), which is the paper's comparison setup.
    num_hashes:
        Number of hash functions ``h``.
    f:
        Permanent randomized response parameter (probability mass moved to
        random bits, split evenly between 1 and 0).
    p, q:
        Instantaneous randomized response parameters: a permanent 1 is
        reported as 1 with probability ``q``; a permanent 0 with probability
        ``p``.  Setting ``p = 0, q = 1`` disables the instantaneous step
        (one-time collection), which is the configuration Figure 5(c) uses.
    """

    num_bits: int = 16
    num_hashes: int = 1
    f: float = 0.5
    p: float = 0.0
    q: float = 1.0

    def __post_init__(self) -> None:
        if self.num_bits < 1:
            raise ValueError("num_bits must be positive")
        if self.num_hashes < 1:
            raise ValueError("num_hashes must be positive")
        if not 0.0 < self.f < 1.0:
            raise ValueError("f must lie in (0, 1)")
        if not 0.0 <= self.p <= 1.0 or not 0.0 <= self.q <= 1.0:
            raise ValueError("p and q must lie in [0, 1]")

    def one_time_epsilon(self) -> float:
        """Differential-privacy level of the permanent (one-time) report."""
        return 2.0 * self.num_hashes * math.log((1.0 - 0.5 * self.f) / (0.5 * self.f))


@dataclass
class RapporClient:
    """One RAPPOR reporting client."""

    params: RapporParams
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        self._permanent: dict[str, list[int]] = {}

    def _bloom_bits(self, value: str) -> list[int]:
        bits = [0] * self.params.num_bits
        for hash_index in range(self.params.num_hashes):
            digest = hashlib.sha256(f"{hash_index}:{value}".encode("utf-8")).digest()
            position = int.from_bytes(digest[:4], "big") % self.params.num_bits
            bits[position] = 1
        return bits

    def _permanent_response(self, value: str) -> list[int]:
        """Memoized permanent randomized response for a value."""
        if value in self._permanent:
            return self._permanent[value]
        bloom = self._bloom_bits(value)
        permanent = []
        for bit in bloom:
            roll = self.rng.random()
            if roll < 0.5 * self.params.f:
                permanent.append(1)
            elif roll < self.params.f:
                permanent.append(0)
            else:
                permanent.append(bit)
        self._permanent[value] = permanent
        return permanent

    def report(self, value: str) -> list[int]:
        """Produce one report for a value (permanent + instantaneous RR)."""
        permanent = self._permanent_response(value)
        if self.params.p == 0.0 and self.params.q == 1.0:
            return list(permanent)
        report = []
        for bit in permanent:
            probability = self.params.q if bit == 1 else self.params.p
            report.append(1 if self.rng.random() < probability else 0)
        return report


@dataclass
class RapporAggregator:
    """Decodes aggregate bit counts back into per-value frequency estimates."""

    params: RapporParams

    def estimate_bit_counts(self, reports: list[list[int]]) -> list[float]:
        """Estimated number of clients whose true Bloom bit is 1, per position.

        For one-time basic RAPPOR the observed count of a bit is
        ``c = t (1 - f/2) + (n - t) (f/2)`` where ``t`` is the true count, so
        ``t = (c - n f/2) / (1 - f)``.
        """
        if not reports:
            return [0.0] * self.params.num_bits
        n = len(reports)
        f = self.params.f
        estimates = []
        for position in range(self.params.num_bits):
            observed = sum(report[position] for report in reports)
            estimate = (observed - 0.5 * f * n) / (1.0 - f)
            estimates.append(estimate)
        return estimates

    def estimate_value_counts(
        self, reports: list[list[int]], candidate_values: list[str]
    ) -> dict[str, float]:
        """Frequency estimate per candidate value (basic RAPPOR, h = 1)."""
        bit_estimates = self.estimate_bit_counts(reports)
        out: dict[str, float] = {}
        for value in candidate_values:
            digest = hashlib.sha256(f"0:{value}".encode("utf-8")).digest()
            position = int.from_bytes(digest[:4], "big") % self.params.num_bits
            out[value] = bit_estimates[position]
        return out
