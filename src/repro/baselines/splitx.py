"""SplitX latency model: the synchronization-bound comparator of Figure 6.

SplitX (Chen, Akkus, Francis — SIGCOMM 2013) shares PrivApprox's
client/proxy/aggregator architecture, but its proxies participate in the
privacy mechanism: they add noise to answers, intersect answer sets and
shuffle them, all of which requires the proxies to synchronize per query.
PrivApprox proxies only relay opaque shares, so their per-answer work is pure
transmission.

Figure 6 plots the proxy-side latency of both systems against the number of
clients (10^2 ... 10^8) and breaks SplitX's latency into its transmission,
computation and shuffling components.  At 10^6 clients the paper reports
40.27 s for SplitX versus 6.21 s for PrivApprox — a 6.48x speedup.

This module models both systems with explicit per-phase cost parameters
calibrated to reproduce those anchor points, so the benchmark regenerates the
figure's series and the crossing-free ordering (PrivApprox below SplitX at
every scale, by roughly an order of magnitude).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SplitXLatencyBreakdown:
    """Per-phase proxy latency of SplitX for one client count."""

    num_clients: int
    transmission_seconds: float
    computation_seconds: float
    shuffling_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.transmission_seconds + self.computation_seconds + self.shuffling_seconds


@dataclass(frozen=True)
class SplitXModel:
    """Analytical latency model of SplitX's proxy pipeline.

    The three phases scale differently with the number of clients ``n``:

    * transmission — linear in ``n`` (every answer crosses the proxy);
    * computation (noise addition + answer intersection) — linear in ``n``
      with a larger constant, plus a fixed synchronization cost per query;
    * shuffling — ``n log n`` (the answer set must be permuted and exchanged
      between proxies).

    The default constants are calibrated so that the total at 10^6 clients is
    about 40 s, matching the paper's measurement.
    """

    transmission_cost_per_answer: float = 6.2e-6
    computation_cost_per_answer: float = 2.2e-5
    shuffle_cost_per_answer: float = 6.0e-7
    synchronization_overhead_seconds: float = 0.05

    def latency(self, num_clients: int) -> SplitXLatencyBreakdown:
        """Proxy latency breakdown for a given number of clients."""
        if num_clients < 1:
            raise ValueError("num_clients must be positive")
        transmission = num_clients * self.transmission_cost_per_answer
        computation = (
            num_clients * self.computation_cost_per_answer
            + self.synchronization_overhead_seconds
        )
        shuffling = num_clients * self.shuffle_cost_per_answer * math.log2(max(2, num_clients))
        return SplitXLatencyBreakdown(
            num_clients=num_clients,
            transmission_seconds=transmission,
            computation_seconds=computation,
            shuffling_seconds=shuffling,
        )

    def latency_series(self, client_counts: list[int]) -> list[SplitXLatencyBreakdown]:
        return [self.latency(n) for n in client_counts]


@dataclass(frozen=True)
class PrivApproxLatencyModel:
    """Proxy latency model of PrivApprox for the same comparison.

    PrivApprox proxies only transmit answers — there is no noise addition,
    intersection or shuffling, and no synchronization — so the latency is a
    single linear term.  The default constant reproduces the paper's ~6.2 s at
    10^6 clients.
    """

    transmission_cost_per_answer: float = 6.2e-6
    fixed_overhead_seconds: float = 0.01

    def latency(self, num_clients: int) -> float:
        if num_clients < 1:
            raise ValueError("num_clients must be positive")
        return num_clients * self.transmission_cost_per_answer + self.fixed_overhead_seconds

    def latency_series(self, client_counts: list[int]) -> list[float]:
        return [self.latency(n) for n in client_counts]

    def speedup_versus_splitx(self, num_clients: int, splitx: SplitXModel | None = None) -> float:
        """How many times faster PrivApprox's proxies are than SplitX's."""
        splitx = splitx or SplitXModel()
        return splitx.latency(num_clients).total_seconds / self.latency(num_clients)
