"""Baseline systems PrivApprox is compared against in the evaluation.

* :mod:`repro.baselines.rappor` — Google's RAPPOR (CCS 2014): Bloom-filter
  encoding plus permanent and instantaneous randomized response.  Used for
  the privacy-level comparison of Figure 5(c).
* :mod:`repro.baselines.splitx` — SplitX (SIGCOMM 2013): a high-performance
  private analytics system whose proxies must synchronize (noise addition,
  answer intersection and shuffling).  Used for the proxy-latency comparison
  of Figure 6.
"""

from repro.baselines.rappor import RapporClient, RapporAggregator, RapporParams
from repro.baselines.splitx import SplitXModel, SplitXLatencyBreakdown, PrivApproxLatencyModel

__all__ = [
    "RapporClient",
    "RapporAggregator",
    "RapporParams",
    "SplitXModel",
    "SplitXLatencyBreakdown",
    "PrivApproxLatencyModel",
]
