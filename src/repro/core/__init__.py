"""PrivApprox core: the paper's primary contribution.

The core package implements the full PrivApprox pipeline from Section 3 of the
paper:

* the **query model** — SQL queries whose answers are histogram bucket
  vectors, plus window/frequency parameters and signing
  (:mod:`repro.core.query`);
* the **execution budget** interface that converts an analyst budget into the
  sampling parameter ``s`` and randomization parameters ``p, q``
  (:mod:`repro.core.budget`);
* **Step I** — client-side simple random sampling and stratified sampling
  (:mod:`repro.core.sampling`);
* **Step II** — randomized response and its estimator
  (:mod:`repro.core.randomized_response`), with the differential-privacy and
  zero-knowledge-privacy accounting in :mod:`repro.core.privacy`;
* **Step III** — XOR-based share splitting and transmission through proxies
  (:mod:`repro.core.encryption`, :mod:`repro.core.client`,
  :mod:`repro.core.proxy`);
* **Step IV** — joining, decrypting, window aggregation and error estimation
  at the aggregator (:mod:`repro.core.aggregator`,
  :mod:`repro.core.estimation`);
* the practical enhancements — query inversion (:mod:`repro.core.inversion`)
  and historical/batch analytics (:mod:`repro.core.historical`);
* :mod:`repro.core.system`, which wires clients, proxies, the aggregator and
  the analyst into a runnable end-to-end deployment.
"""

from repro.core.query import (
    Query,
    AnswerSpec,
    RangeBuckets,
    RuleBuckets,
    QueryAnswer,
)
from repro.core.budget import QueryBudget, ExecutionParameters, BudgetPlanner
from repro.core.sampling import (
    SimpleRandomSampler,
    StratifiedSampler,
    SamplingEstimate,
    estimate_sum,
)
from repro.core.randomized_response import (
    RandomizedResponder,
    estimate_true_yes,
    rr_accuracy_loss,
)
from repro.core.privacy import (
    randomized_response_epsilon,
    epsilon_from_probabilities,
    amplify_epsilon_by_sampling,
    zero_knowledge_epsilon,
    PrivacyAccountant,
)
from repro.core.estimation import (
    sampling_error_bound,
    estimated_variance,
    combined_error_bound,
    ErrorEstimator,
)
from repro.core.encryption import AnswerCodec, EncryptedAnswer
from repro.core.client import Client, ClientConfig, ClientResponse
from repro.core.proxy import Proxy, ProxyNetwork
from repro.core.aggregator import Aggregator, WindowResult
from repro.core.analyst import Analyst
from repro.core.inversion import invert_answer_vector, should_invert, InvertedEstimator
from repro.core.historical import HistoricalStore, HistoricalAnalytics
from repro.core.distribution import QueryDistributor, QueryAnnouncement
from repro.core.admission import AnswerAdmissionController, participation_token
from repro.core.validation import AnswerValidator, ValidationResult
from repro.core.stratification import (
    StratifiedDeployment,
    StratumSpec,
    combine_stratum_histograms,
)
from repro.core.system import PrivApproxSystem, SystemConfig, EpochReport
from repro.core.metrics import SystemMetrics, QueryMetrics

__all__ = [
    "Query",
    "AnswerSpec",
    "RangeBuckets",
    "RuleBuckets",
    "QueryAnswer",
    "QueryBudget",
    "ExecutionParameters",
    "BudgetPlanner",
    "SimpleRandomSampler",
    "StratifiedSampler",
    "SamplingEstimate",
    "estimate_sum",
    "RandomizedResponder",
    "estimate_true_yes",
    "rr_accuracy_loss",
    "randomized_response_epsilon",
    "epsilon_from_probabilities",
    "amplify_epsilon_by_sampling",
    "zero_knowledge_epsilon",
    "PrivacyAccountant",
    "sampling_error_bound",
    "estimated_variance",
    "combined_error_bound",
    "ErrorEstimator",
    "AnswerCodec",
    "EncryptedAnswer",
    "Client",
    "ClientConfig",
    "ClientResponse",
    "Proxy",
    "ProxyNetwork",
    "Aggregator",
    "WindowResult",
    "Analyst",
    "invert_answer_vector",
    "should_invert",
    "InvertedEstimator",
    "HistoricalStore",
    "HistoricalAnalytics",
    "QueryDistributor",
    "QueryAnnouncement",
    "AnswerAdmissionController",
    "participation_token",
    "AnswerValidator",
    "ValidationResult",
    "StratifiedDeployment",
    "StratumSpec",
    "combine_stratum_histograms",
    "PrivApproxSystem",
    "SystemConfig",
    "EpochReport",
    "SystemMetrics",
    "QueryMetrics",
]
