"""Historical (batch) analytics over stored responses (Section 3.3.1).

Besides real-time results, PrivApprox lets analysts run queries over the
randomized responses accumulated at the aggregator over a longer time period.
Responses are appended to a fault-tolerant distributed store (HDFS in the
paper, the :mod:`repro.storage` block store here); a batch job later reads the
stored responses for the requested time range, optionally applies a *second*
round of sampling at the aggregator to stay within the analyst's cost budget,
and produces the same kind of error-bounded histogram as the streaming path.

Storing randomized responses is privacy-safe: they are already
zero-knowledge private, and any computation over them stays private
(Section 4).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.analytics.histogram import BucketEstimate, HistogramResult
from repro.core.budget import BudgetPlanner, ExecutionParameters, QueryBudget
from repro.core.estimation import ErrorEstimator
from repro.core.query import Query, QueryAnswer
from repro.core.randomized_response import estimate_true_yes
from repro.storage import BlockStore


@dataclass
class HistoricalStore:
    """Append-only storage of randomized answers, one file per query.

    Answers are serialized as JSON lines so the batch reader can parse them
    without any shared in-memory state — the store could equally be read by a
    separate process.
    """

    block_store: BlockStore = field(default_factory=lambda: BlockStore(num_nodes=3, replication=2))

    def _file_for(self, query_id: str) -> str:
        return f"answers/{query_id}.jsonl"

    def append_answer(self, answer: QueryAnswer, epoch_timestamp: float) -> None:
        """Persist one randomized answer with its epoch timestamp."""
        payload = {
            "query_id": answer.query_id,
            "bits": list(answer.bits),
            "epoch": answer.epoch,
            "timestamp": epoch_timestamp,
        }
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        self.block_store.append(self._file_for(answer.query_id), line.encode("utf-8"))

    def append_batch(self, answers: list[QueryAnswer], epoch_timestamp: float) -> None:
        for answer in answers:
            self.append_answer(answer, epoch_timestamp)

    def read_answers(
        self,
        query_id: str,
        start_time: float = float("-inf"),
        end_time: float = float("inf"),
    ) -> list[tuple[QueryAnswer, float]]:
        """All stored answers of a query whose timestamp lies in [start, end)."""
        file_name = self._file_for(query_id)
        if not self.block_store.exists(file_name):
            return []
        raw = self.block_store.read(file_name).decode("utf-8")
        out: list[tuple[QueryAnswer, float]] = []
        for line in raw.splitlines():
            if not line.strip():
                continue
            payload = json.loads(line)
            timestamp = payload["timestamp"]
            if not start_time <= timestamp < end_time:
                continue
            answer = QueryAnswer(
                query_id=payload["query_id"],
                bits=tuple(payload["bits"]),
                epoch=payload["epoch"],
            )
            out.append((answer, timestamp))
        return out

    def stored_answer_count(self, query_id: str) -> int:
        return len(self.read_answers(query_id))


@dataclass
class HistoricalAnalytics:
    """Batch analytics over a :class:`HistoricalStore`.

    Parameters
    ----------
    store:
        Where randomized answers were persisted by the streaming pipeline.
    planner:
        Budget planner used to convert the analyst's cost budget into the
        aggregator-side re-sampling fraction.
    seed:
        Seed for the re-sampling RNG, so batch runs are reproducible.
    """

    store: HistoricalStore
    planner: BudgetPlanner = field(default_factory=BudgetPlanner)
    seed: int | None = None

    def run_batch_query(
        self,
        query: Query,
        parameters: ExecutionParameters,
        total_clients_per_epoch: int,
        budget: QueryBudget | None = None,
        start_time: float = float("-inf"),
        end_time: float = float("inf"),
        confidence_level: float = 0.95,
    ) -> HistogramResult:
        """Aggregate all stored answers of a query over a time range.

        ``parameters`` must be the execution parameters the answers were
        produced under (the aggregator needs ``p, q`` to invert the
        randomization and ``s`` only implicitly via the stored participation).
        """
        stored = self.store.read_answers(query.query_id, start_time, end_time)
        if budget is not None and stored:
            fraction = self.planner.batch_sampling_fraction(budget, len(stored))
            if fraction < 1.0:
                rng = random.Random(self.seed)
                stored = [item for item in stored if rng.random() < fraction]

        num_buckets = query.num_buckets
        counts = [0] * num_buckets
        epochs = set()
        for answer, _ in stored:
            epochs.add(answer.epoch)
            for index, bit in enumerate(answer.bits[:num_buckets]):
                counts[index] += bit

        num_answers = len(stored)
        population = total_clients_per_epoch * max(1, len(epochs))
        histogram = HistogramResult(window=None, num_answers=num_answers)
        labels = query.answer_spec.labels()
        if num_answers == 0:
            for index, label in enumerate(labels):
                histogram.add_bucket(
                    BucketEstimate(index, label, 0.0, float("inf"), confidence_level)
                )
            return histogram

        estimator = ErrorEstimator(
            p=parameters.p, q=parameters.q, confidence_level=confidence_level
        )
        scale = population / num_answers
        p, q = parameters.p, parameters.q
        corrected_one = (1.0 - (1.0 - p) * q) / p
        corrected_zero = (0.0 - (1.0 - p) * q) / p
        for index, label in enumerate(labels):
            observed = counts[index]
            corrected = estimate_true_yes(observed, num_answers, p, q)
            estimate = scale * corrected
            contributions = [corrected_one] * observed + [corrected_zero] * (num_answers - observed)
            error = estimator.bucket_error_bound(
                corrected_values=contributions,
                population_size=population,
                estimated_count=estimate,
            )
            histogram.add_bucket(
                BucketEstimate(index, label, estimate, error, confidence_level)
            )
        return histogram
