"""Query distribution: the "submitting queries" phase (Section 3.1).

An analyst's query travels in the opposite direction of the answers: from the
analyst to the aggregator (which converts the budget into system parameters)
and onward to every client via the proxies.  In the paper this uses the same
Kafka infrastructure as the answer path; here the :class:`QueryDistributor`
publishes signed query announcements to a dedicated ``queries`` topic on each
proxy's broker and clients subscribe to it.

Clients must not execute forged or tampered queries, so every announcement
carries the analyst's signature and clients verify it against the analyst's
registered key before subscribing (the threat model makes analysts potentially
malicious, and proxies could try to tamper with queries in transit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.budget import BudgetPlanner, ExecutionParameters, QueryBudget
from repro.core.client import Client
from repro.core.query import Query
from repro.pubsub import BrokerCluster, Consumer, Producer

QUERY_TOPIC = "queries"


@dataclass(frozen=True)
class QueryAnnouncement:
    """What travels from the aggregator to the clients for one query.

    The announcement carries the signed query plus the execution parameters the
    initializer derived from the analyst's budget.  The budget itself stays at
    the aggregator — clients only need ``(s, p, q)``.
    """

    query: Query
    parameters: ExecutionParameters
    epoch_offset: int = 0

    def size_bytes(self) -> int:
        """Approximate wire size of the announcement."""
        return len(self.query.sql.encode("utf-8")) + 64


@dataclass
class QueryDistributor:
    """Publishes query announcements and lets clients pick them up.

    Parameters
    ----------
    cluster:
        The broker cluster shared with the proxies.
    planner:
        Budget planner used when an explicit parameter set is not supplied.
    """

    cluster: BrokerCluster
    planner: BudgetPlanner = field(default_factory=BudgetPlanner)

    def __post_init__(self) -> None:
        self.cluster.ensure_topic(QUERY_TOPIC, num_partitions=1)
        self._producer = Producer(self.cluster, client_id="query-distributor")
        self.queries_published = 0

    # -- aggregator side ----------------------------------------------------

    def publish(
        self,
        query: Query,
        budget: QueryBudget,
        parameters: ExecutionParameters | None = None,
    ) -> QueryAnnouncement:
        """Convert the budget and publish the signed query to the proxies."""
        if query.signature is None:
            raise ValueError("refusing to distribute an unsigned query")
        params = parameters or self.planner.plan(budget)
        announcement = QueryAnnouncement(query=query, parameters=params)
        self._producer.send(QUERY_TOPIC, value=announcement, key=query.query_id)
        self.queries_published += 1
        return announcement

    # -- client side ----------------------------------------------------------

    def make_subscription_feed(self, client_id: str) -> Consumer:
        """A consumer a client uses to receive query announcements."""
        consumer = Consumer(self.cluster, group_id=f"client-{client_id}", consumer_id=client_id)
        consumer.subscribe([QUERY_TOPIC])
        return consumer

    @staticmethod
    def deliver_to_client(
        client: Client,
        feed: Consumer,
        analyst_keys: dict[str, bytes],
    ) -> list[QueryAnnouncement]:
        """Pull pending announcements and subscribe the client to valid ones.

        ``analyst_keys`` maps analyst ids to their signature-verification keys;
        announcements whose signature does not verify (unknown analyst, forged
        or tampered query) are ignored.  Returns the announcements accepted.
        """
        accepted: list[QueryAnnouncement] = []
        for record in feed.poll():
            announcement: QueryAnnouncement = record.value
            key = analyst_keys.get(announcement.query.analyst_id)
            if key is None or not announcement.query.verify_signature(key):
                continue
            client.subscribe(announcement.query, announcement.parameters)
            accepted.append(announcement)
        return accepted
