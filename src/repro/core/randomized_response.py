"""Step II: randomized response at clients (Section 3.2.2).

A participating client does not always answer truthfully.  For every answer
bit it flips a first coin with heads probability ``p``:

* heads  — respond with the truthful bit;
* tails  — flip a second coin with heads probability ``q`` and respond "Yes"
  (1) on heads, "No" (0) on tails.

The analyst receiving ``N`` randomized answers, ``R_y`` of which are "Yes",
estimates the number of original truthful "Yes" answers as

    E_y = (R_y - (1 - p) * q * N) / p                         (Eq. 5)

and the utility is measured by the accuracy loss

    eta = | (A_y - E_y) / A_y |                               (Eq. 6)

This mechanism is epsilon-differentially private with
``epsilon = ln((p + (1-p) q) / ((1-p) q))`` (Eq. 8); the privacy accounting
lives in :mod:`repro.core.privacy`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

try:  # numpy accelerates the synthetic surveys; the scalar loop remains the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - the environment ships numpy
    _np = None

from repro.analytics.metrics import accuracy_loss

# Below this many answers the per-bit loop is cheap enough that spinning up a
# numpy generator is not worth it (and the loop doubles as the reference).
_BINOMIAL_FAST_PATH_MIN_TOTAL = 128


@dataclass
class RandomizedResponder:
    """The two-coin randomized response mechanism.

    Parameters
    ----------
    p:
        Probability the first coin comes up heads (answer truthfully).
    q:
        Probability the second coin comes up heads (forced "Yes").
    rng:
        Source of randomness; seed it for reproducible tests.
    """

    p: float
    q: float
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if not 0.0 < self.p <= 1.0:
            raise ValueError(f"p must lie in (0, 1], got {self.p}")
        if not 0.0 <= self.q <= 1.0:
            raise ValueError(f"q must lie in [0, 1], got {self.q}")

    def randomize_bit(self, truthful_bit: int) -> int:
        """Randomize a single answer bit."""
        if truthful_bit not in (0, 1):
            raise ValueError(f"truthful bit must be 0 or 1, got {truthful_bit}")
        if self.rng.random() < self.p:
            return truthful_bit
        return 1 if self.rng.random() < self.q else 0

    def randomize_vector(self, truthful_bits: Sequence[int]) -> list[int]:
        """Randomize every bit of an answer vector independently (batched).

        Independent per-bucket randomization is what lets the aggregator apply
        the Eq. 5 estimator bucket by bucket.

        This is the batched fast path of the per-bit loop: the RNG method and
        the ``(p, q)`` constants are bound once for the whole vector instead
        of being re-resolved per bit.  It is *draw-compatible* with
        :meth:`randomize_bit` — it consumes exactly the same ``rng.random()``
        sequence in the same order (one draw per bit, plus a second draw only
        when the first coin lands tails) — so a seeded client produces
        byte-identical answers whichever path runs;
        :meth:`randomize_vector_scalar` keeps the per-bit reference and the
        regression test in ``tests/core/test_randomized_response.py`` pins the
        two together.
        """
        rand = self.rng.random
        p = self.p
        q = self.q
        out = []
        append = out.append
        for bit in truthful_bits:
            if bit != 0 and bit != 1:
                raise ValueError(f"truthful bit must be 0 or 1, got {bit}")
            if rand() < p:
                append(bit)
            else:
                append(1 if rand() < q else 0)
        return out

    def randomize_vector_scalar(self, truthful_bits: Sequence[int]) -> list[int]:
        """Per-bit reference implementation of :meth:`randomize_vector`."""
        return [self.randomize_bit(bit) for bit in truthful_bits]

    def response_probability(self, truthful_bit: int) -> float:
        """Probability that the randomized response is 1 given the truthful bit."""
        if truthful_bit == 1:
            return self.p + (1.0 - self.p) * self.q
        if truthful_bit == 0:
            return (1.0 - self.p) * self.q
        raise ValueError(f"truthful bit must be 0 or 1, got {truthful_bit}")

    def expected_yes(self, true_yes: int, total: int) -> float:
        """Expected number of randomized "Yes" responses."""
        if not 0 <= true_yes <= total:
            raise ValueError("true_yes must lie in [0, total]")
        return true_yes * self.response_probability(1) + (total - true_yes) * self.response_probability(0)


def estimate_true_yes(observed_yes: float, total: int, p: float, q: float) -> float:
    """Invert the randomization: estimate the truthful "Yes" count (Eq. 5)."""
    if p <= 0:
        raise ValueError("p must be positive to invert the randomization")
    if total < 0:
        raise ValueError("total must be non-negative")
    return (observed_yes - (1.0 - p) * q * total) / p


def estimate_true_counts(
    observed_counts: Sequence[float], total: int, p: float, q: float
) -> list[float]:
    """Apply the Eq. 5 estimator to every bucket of a histogram."""
    return [estimate_true_yes(count, total, p, q) for count in observed_counts]


def rr_accuracy_loss(actual_yes: float, estimated_yes: float) -> float:
    """Accuracy loss eta of the randomized-response estimate (Eq. 6)."""
    return accuracy_loss(actual_yes, estimated_yes)


def simulate_randomized_survey(
    true_yes: int,
    total: int,
    p: float,
    q: float,
    rng: random.Random | None = None,
) -> tuple[int, float]:
    """Run one synthetic randomized-response survey.

    Returns the observed "Yes" count and the Eq. 5 estimate of the truthful
    count.  Used by the microbenchmarks (Table 1, Figures 4 and 5) and by the
    empirical error-estimation procedure of Section 3.2.4.

    Large surveys use two binomial draws instead of ``total`` per-bit coin
    flips: the bits are independent, so the observed "Yes" count is exactly
    ``Binomial(A_y, P(1|1)) + Binomial(N - A_y, P(1|0))`` — the same
    distribution as the bit loop at a tiny fraction of the cost.  The draw is
    seeded from ``rng`` so a seeded caller stays reproducible.
    """
    if not 0 <= true_yes <= total:
        raise ValueError("true_yes must lie in [0, total]")
    rng = rng or random.Random()
    responder = RandomizedResponder(p=p, q=q, rng=rng)  # validates p, q
    if _np is not None and total >= _BINOMIAL_FAST_PATH_MIN_TOTAL:
        generator = _np.random.default_rng(rng.getrandbits(64))
        observed = int(
            generator.binomial(true_yes, responder.response_probability(1))
            + generator.binomial(total - true_yes, responder.response_probability(0))
        )
    else:
        observed = 0
        for i in range(total):
            truthful = 1 if i < true_yes else 0
            observed += responder.randomize_bit(truthful)
    estimate = estimate_true_yes(observed, total, p, q)
    return observed, estimate
