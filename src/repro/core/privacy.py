"""Privacy accounting: differential privacy and zero-knowledge privacy.

Randomized response alone gives epsilon-differential privacy with

    epsilon_dp = ln( (p + (1-p) q) / ((1-p) q) )                      (Eq. 8)

Combining it with source-side sampling tightens the bound.  Following the
technical report's analysis (sampling and randomized response commute, and
sampling amplifies privacy), a mechanism that is ``epsilon``-DP applied to a
client included with probability ``s`` satisfies

    epsilon_s = ln( 1 + s * (e^epsilon - 1) )

which is the standard privacy-amplification-by-sampling bound.  The same
quantity is what we report as the *zero-knowledge* privacy level
``epsilon_zk``: the tech report's Theorem shows the sampled randomized
response is zero-knowledge private with respect to aggregate information, with
the parameter controlled by the sampled (amplified) bound.  Absolute values in
the paper's Table 1 come from the tech report's Equation 19, which we do not
have; the *shape* — epsilon increasing in both ``p`` and ``s``, decreasing in
``q`` — is preserved, and that is what the benchmarks assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def epsilon_from_probabilities(prob_yes_given_yes: float, prob_yes_given_no: float) -> float:
    """Differential-privacy level from the two response probabilities (Eq. 7)."""
    if prob_yes_given_no <= 0:
        return float("inf")
    if prob_yes_given_yes <= 0:
        raise ValueError("P[Yes|Yes] must be positive")
    return math.log(prob_yes_given_yes / prob_yes_given_no)


def randomized_response_epsilon(p: float, q: float) -> float:
    """Epsilon of the two-coin randomized response mechanism (Eq. 8)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must lie in [0, 1], got {q}")
    numerator = p + (1.0 - p) * q
    denominator = (1.0 - p) * q
    if denominator == 0:
        return float("inf")
    return math.log(numerator / denominator)


def amplify_epsilon_by_sampling(epsilon: float, sampling_fraction: float) -> float:
    """Privacy amplification by sampling: epsilon_s = ln(1 + s (e^eps - 1))."""
    if not 0.0 <= sampling_fraction <= 1.0:
        raise ValueError("sampling fraction must lie in [0, 1]")
    if sampling_fraction == 0.0:
        return 0.0
    if math.isinf(epsilon):
        return float("inf")
    return math.log(1.0 + sampling_fraction * (math.exp(epsilon) - 1.0))


def zero_knowledge_epsilon(p: float, q: float, sampling_fraction: float) -> float:
    """Zero-knowledge privacy level of the combined sampling + RR mechanism.

    The combination of an epsilon-DP mechanism (randomized response) with a
    sampling-based aggregation yields zero-knowledge privacy (Section 4); the
    resulting level is the sampling-amplified epsilon.
    """
    return amplify_epsilon_by_sampling(randomized_response_epsilon(p, q), sampling_fraction)


def rappor_epsilon(f: float, num_hash_functions: int = 1) -> float:
    """Differential-privacy level of basic one-time RAPPOR.

    RAPPOR's permanent randomized response with parameter ``f`` and ``h`` hash
    functions satisfies ``epsilon = 2 h ln((1 - f/2) / (f/2))`` (Erlingsson et
    al., CCS 2014).  The paper's comparison (Figure 5c) maps ``p = 1 - f`` and
    ``q = 0.5`` with ``h = 1`` so both systems share the same randomized
    response process; PrivApprox then additionally benefits from sampling.
    """
    if not 0.0 < f < 2.0:
        raise ValueError("RAPPOR's f must lie in (0, 2)")
    if num_hash_functions < 1:
        raise ValueError("need at least one hash function")
    return 2.0 * num_hash_functions * math.log((1.0 - 0.5 * f) / (0.5 * f))


def privapprox_epsilon_for_rappor_mapping(f: float, sampling_fraction: float) -> float:
    """PrivApprox's DP level under the Figure 5(c) parameter mapping.

    With ``p = 1 - f`` and ``q = 0.5`` the randomized response process equals
    RAPPOR's report randomization; client-side sampling then amplifies the
    bound, so PrivApprox's level is at most RAPPOR's and strictly below it for
    any ``s < 1``.
    """
    if not 0.0 < f < 1.0:
        raise ValueError("the mapping requires f in (0, 1)")
    base = randomized_response_epsilon(p=1.0 - f, q=0.5)
    return amplify_epsilon_by_sampling(base, sampling_fraction)


@dataclass(frozen=True)
class PrivacyReport:
    """Privacy levels of one parameter configuration."""

    p: float
    q: float
    sampling_fraction: float
    epsilon_dp: float
    epsilon_zk: float


class PrivacyAccountant:
    """Tracks the privacy guarantees offered by a parameter configuration.

    The accountant is what the analyst-facing budget interface consults: given
    ``(s, p, q)`` it reports both the differential-privacy level of the
    randomized response and the tighter zero-knowledge level of the combined
    mechanism, and it can search for parameters meeting an epsilon target.
    """

    def report(self, p: float, q: float, sampling_fraction: float) -> PrivacyReport:
        """Privacy levels for one configuration."""
        return PrivacyReport(
            p=p,
            q=q,
            sampling_fraction=sampling_fraction,
            epsilon_dp=randomized_response_epsilon(p, q),
            epsilon_zk=zero_knowledge_epsilon(p, q, sampling_fraction),
        )

    def satisfies(self, p: float, q: float, sampling_fraction: float, epsilon_target: float) -> bool:
        """Whether a configuration meets a zero-knowledge epsilon target."""
        return zero_knowledge_epsilon(p, q, sampling_fraction) <= epsilon_target

    def max_p_for_target(
        self,
        q: float,
        sampling_fraction: float,
        epsilon_target: float,
        precision: float = 1e-4,
    ) -> float:
        """Largest truthful-answer probability ``p`` meeting an epsilon target.

        Larger ``p`` means better utility but weaker privacy, so the analyst
        wants the largest ``p`` still within the privacy budget.  Binary search
        over ``p`` is valid because epsilon is monotone increasing in ``p``.
        """
        if epsilon_target <= 0:
            raise ValueError("epsilon target must be positive")
        low, high = 0.0, 1.0
        if not self.satisfies(precision, q, sampling_fraction, epsilon_target):
            return 0.0
        while high - low > precision:
            mid = (low + high) / 2.0
            if self.satisfies(mid, q, sampling_fraction, epsilon_target):
                low = mid
            else:
                high = mid
        return low

    def sampling_fraction_for_target(
        self,
        p: float,
        q: float,
        epsilon_target: float,
        precision: float = 1e-4,
    ) -> float:
        """Largest sampling fraction meeting a zero-knowledge epsilon target.

        Used by the case-study sweep (Figure 7), where the paper derives the
        sampling parameter from the target privacy level.
        """
        if epsilon_target <= 0:
            raise ValueError("epsilon target must be positive")
        base = randomized_response_epsilon(p, q)
        if base <= epsilon_target:
            return 1.0
        # Invert epsilon_s = ln(1 + s (e^base - 1)) for s.
        s = (math.exp(epsilon_target) - 1.0) / (math.exp(base) - 1.0)
        return max(0.0, min(1.0, s))
