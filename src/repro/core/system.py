"""End-to-end wiring of the PrivApprox deployment.

:class:`PrivApproxSystem` connects the four components of Figure 1 — clients,
proxies, aggregator and analyst — into a runnable system:

1. the analyst submits a query plus execution budget;
2. the initializer (the :class:`~repro.core.budget.BudgetPlanner`) converts
   the budget into the sampling and randomization parameters and the query is
   distributed to all clients;
3. every epoch, each client answers locally (sample -> SQL -> randomize ->
   encrypt) and its shares travel through the proxies to the aggregator;
4. the aggregator joins, decrypts and window-aggregates the answers, attaches
   error bounds, and delivers results to the analyst; a feedback loop re-tunes
   the parameters when the observed error exceeds the budget.

The system also (optionally) persists every decrypted randomized answer to the
historical store so batch analytics can run over longer periods.

Concurrent queries (many analysts over one client population) are served by
:meth:`PrivApproxSystem.run_epoch_all`: one answering pass per epoch covers
every submitted query — clients answer all their subscriptions in one go with
per-query RNG streams, and each query's shares travel on its own channel
topics into its own aggregator — so results are byte-identical to running
each query alone, at a fraction of the cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.admission import AnswerAdmissionController
from repro.core.aggregator import Aggregator, WindowResult
from repro.core.analyst import Analyst
from repro.core.budget import BudgetPlanner, ExecutionParameters, QueryBudget
from repro.core.client import Client, ClientConfig, ClientResponse
from repro.core.distribution import QueryDistributor
from repro.core.estimation import ErrorEstimator
from repro.core.historical import HistoricalStore
from repro.core.proxy import ProxyNetwork
from repro.core.query import Query
from repro.core.seeding import derive_query_seed
from repro.core.validation import AnswerValidator
from repro.runtime import EXECUTOR_KINDS, EpochContext, QueryContext, make_executor


@dataclass(frozen=True)
class SystemConfig:
    """Deployment-level configuration.

    ``distribute_queries_via_proxies`` routes signed query announcements
    through the proxies' broker (the paper's "submitting queries" phase);
    unsigned queries fall back to direct subscription.
    ``enable_validation`` and ``enable_admission_control`` turn on the
    aggregator-side structural checks and the duplicate-answer defense.

    ``executor`` selects the epoch runtime (:mod:`repro.runtime`):
    ``"serial"`` answers clients one-by-one (the reference implementation),
    ``"sharded"`` partitions them into ``executor_shards`` shards answered by
    ``executor_workers`` pooled workers (``executor_pool`` of ``"thread"`` or
    ``"process"``) with per-shard batched broker traffic, ``"pipelined"``
    additionally overlaps answering, transmission and ingestion through
    shard-aware proxy topics (thread pool only), and ``"process"`` keeps the
    pipelined shape but answers each shard in a worker *process* from a
    serialized self-contained shard task, with shard boundaries adapting to
    per-shard wall-clock across epochs (``executor_pool`` is ignored — the
    executor is a process pool by construction).  All executors produce
    identical results for identical seeds; see ``docs/ARCHITECTURE.md``.

    Every one of those names is a configuration of the staged epoch engine
    (:class:`~repro.runtime.engine.StagedEpochEngine`); the engine's driver
    combinations can also be named directly as ``"scheduling/transport"``
    spellings — e.g. ``"inline/in-process"``,
    ``"pipelined-overlap/framed-wire-local"`` (= ``"process"``) or
    ``"pipelined-overlap/sealed-tcp-remote"`` (stateless snapshot shipping
    over the sealed TCP transport).  ``repro.runtime.EXECUTOR_KINDS`` lists
    every accepted name.

    ``executor_resident`` (process executor only) keeps client state
    *resident* in pinned worker processes across epochs — sticky
    shard→worker affinity with bootstrap-once / delta-thereafter wire
    traffic (:mod:`repro.runtime.affinity`) instead of full snapshot round
    trips; ``executor_checkpoint_every`` controls how often the parent's
    authoritative copy is refreshed (``0`` = only on demand/shutdown).
    Residency changes nothing observable: results stay byte-identical.

    ``executor_remote_workers`` replaces the pinned worker *processes* with
    separately launched TCP workers (:mod:`repro.runtime.remote`): a tuple
    of ``host:port`` addresses (one slot per worker; ``executor_workers`` is
    ignored) plus ``executor_key_file`` naming the pre-shared HMAC keys —
    one hex key per line, line *i* keying worker *i*.  Remote workers imply
    residency and require ``executor='process'``.  The transport changes
    nothing observable either: digests stay byte-identical to serial.
    """

    num_clients: int = 100
    num_proxies: int = 2
    seed: int | None = None
    table_name: str = "private_data"
    keep_historical: bool = False
    distribute_queries_via_proxies: bool = True
    enable_validation: bool = True
    enable_admission_control: bool = True
    executor: str = "serial"
    executor_workers: int = 4
    executor_shards: int | None = None
    executor_pool: str = "thread"
    executor_resident: bool = False
    executor_checkpoint_every: int = 4
    executor_remote_workers: tuple[str, ...] | None = None
    executor_key_file: str | None = None

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        if self.num_proxies < 2:
            raise ValueError("PrivApprox requires at least two proxies")
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, got {self.executor!r}"
            )
        if self.executor_workers < 1:
            raise ValueError("executor_workers must be positive")
        if self.executor_shards is not None and self.executor_shards < 1:
            raise ValueError("executor_shards must be positive when given")
        if self.executor == "pipelined" and self.executor_pool != "thread":
            raise ValueError(
                "the pipelined executor only supports executor_pool='thread'"
            )
        from repro.runtime.executor import (
            executor_requires_remote,
            executor_supports_remote,
            executor_supports_residency,
        )

        if self.executor_resident and not executor_supports_residency(self.executor):
            raise ValueError(
                "executor_resident requires executor='process' "
                "(resident state lives in its pinned worker processes)"
            )
        if self.executor_checkpoint_every < 0:
            raise ValueError("executor_checkpoint_every must be non-negative")
        if self.executor_remote_workers is not None:
            if not self.executor_remote_workers:
                raise ValueError(
                    "executor_remote_workers must name at least one "
                    "host:port address when given"
                )
            if not executor_supports_remote(self.executor):
                raise ValueError(
                    "executor_remote_workers requires executor='process' "
                    "or a sealed-tcp-remote driver spelling "
                    "(the remote transport speaks the resident protocol)"
                )
            if self.executor_key_file is None:
                raise ValueError(
                    "executor_remote_workers requires executor_key_file "
                    "(pre-shared HMAC keys, one hex key per line)"
                )
            from repro.runtime.remote import parse_address

            for address in self.executor_remote_workers:
                parse_address(address)  # raises ValueError on malformed input
        else:
            if executor_requires_remote(self.executor):
                raise ValueError(
                    f"executor {self.executor!r} needs remote worker addresses "
                    "(executor_remote_workers plus executor_key_file)"
                )
            if self.executor_key_file is not None:
                raise ValueError(
                    "executor_key_file only applies with executor_remote_workers"
                )


@dataclass(frozen=True)
class EpochReport:
    """Summary of one answering epoch.

    ``late_drops`` names the clients whose answers the epoch's deadline gate
    (``PrivApproxSystem.epoch_deadline``) dropped for this query, sorted;
    empty when no deadline was armed.
    """

    epoch: int
    num_participants: int
    num_clients: int
    window_results: tuple
    parameters: ExecutionParameters
    late_drops: tuple = ()

    @property
    def participation_rate(self) -> float:
        if self.num_clients == 0:
            return 0.0
        return self.num_participants / self.num_clients


class PrivApproxSystem:
    """A complete PrivApprox deployment running in-process."""

    def __init__(self, config: SystemConfig, planner: BudgetPlanner | None = None):
        self.config = config
        self.planner = planner or BudgetPlanner()
        self._rng = random.Random(config.seed)
        self.proxies = ProxyNetwork(num_proxies=config.num_proxies)
        self.clients: list[Client] = []
        for index in range(config.num_clients):
            seed = None if config.seed is None else config.seed * 1_000_003 + index
            self.clients.append(
                Client(
                    ClientConfig(
                        client_id=f"client-{index:06d}",
                        num_proxies=config.num_proxies,
                        table_name=config.table_name,
                        seed=seed,
                    )
                )
            )
        self.executor = make_executor(
            config.executor,
            workers=config.executor_workers,
            shards=config.executor_shards,
            pool=config.executor_pool,
            resident=config.executor_resident,
            checkpoint_every=config.executor_checkpoint_every,
            remote_workers=config.executor_remote_workers,
            key_file=config.executor_key_file,
        )
        self.analyst: Analyst | None = None
        self.historical_store = HistoricalStore() if config.keep_historical else None
        self.query_distributor = QueryDistributor(
            cluster=self.proxies.cluster, planner=self.planner
        )
        self._analyst_keys: dict[str, bytes] = {}
        self._aggregators: dict[str, Aggregator] = {}
        self._parameters: dict[str, ExecutionParameters] = {}
        self._queries: dict[str, Query] = {}
        self._budgets: dict[str, QueryBudget] = {}
        self._consumers: dict[str, list] = {}
        # Channel-scoped consumers for multi-query epochs, created lazily on
        # first run_epoch_all use: each query's aggregator polls its own
        # per-query proxy topics, so concurrent queries never read each
        # other's records.  Single-query deployments never allocate them.
        self._scoped_consumers: dict[str, list] = {}
        self._responses_log: dict[str, list[ClientResponse]] = {}
        # Optional epoch-deadline gate (duck-typed; see
        # repro.runtime.scenario.EpochDeadline) handed to the executor with
        # each epoch context.  Scenario runs arm a fresh gate per epoch;
        # ``None`` (the default) disables deadline enforcement entirely.
        self.epoch_deadline = None

    # -- provisioning -------------------------------------------------------

    def provision_clients(
        self,
        columns: list[tuple[str, str]],
        data_for_client: Callable[[int], list[dict[str, Any]]],
    ) -> None:
        """Create the local table on every client and load its private data.

        ``data_for_client(i)`` returns the records belonging to client ``i``;
        this is how the case studies replay per-vehicle / per-household slices
        of the datasets onto the clients.
        """
        for index, client in enumerate(self.clients):
            client.create_table(columns)
            records = data_for_client(index)
            if records:
                client.ingest(records)

    # -- query submission -----------------------------------------------------

    def submit_query(
        self,
        analyst: Analyst,
        query: Query,
        budget: QueryBudget,
        parameters: ExecutionParameters | None = None,
    ) -> ExecutionParameters:
        """Submit a query: convert the budget, distribute to clients.

        ``parameters`` may be supplied directly to bypass the planner (the
        microbenchmarks sweep explicit ``s, p, q`` values); otherwise the
        planner derives them from the budget.
        """
        self.analyst = analyst
        analyst.attach_budget(query, budget)
        self._analyst_keys[analyst.analyst_id] = analyst.signing_key
        params = parameters or self.planner.plan(budget)
        self._queries[query.query_id] = query
        self._budgets[query.query_id] = budget
        self._parameters[query.query_id] = params
        aggregator = Aggregator(
            query=query,
            parameters=params,
            total_clients=self.config.num_clients,
            num_proxies=self.config.num_proxies,
            error_estimator=self._make_error_estimator(query, params),
            validator=AnswerValidator(query) if self.config.enable_validation else None,
            admission=(
                AnswerAdmissionController() if self.config.enable_admission_control else None
            ),
        )
        self._aggregators[query.query_id] = aggregator
        self._consumers[query.query_id] = self.proxies.make_consumers(
            group_id=f"aggregator-{query.query_id}"
        )
        self._responses_log[query.query_id] = []
        self._distribute_query(query, budget, params)
        return params

    def _make_error_estimator(
        self, query: Query, params: ExecutionParameters
    ) -> ErrorEstimator | None:
        """A calibration estimator seeded from the system seed (when set).

        Seeding makes the empirical randomization-error calibration — and so
        the full window results, error bounds included — reproducible for a
        given system seed, which is what lets the executor-equivalence tests
        demand byte-identical results.  Unseeded systems keep the default
        fresh-entropy estimator.
        """
        if self.config.seed is None:
            return None
        derived = derive_query_seed(self.config.seed, query.query_id)
        return ErrorEstimator(p=params.p, q=params.q, rng=random.Random(derived))

    def _distribute_query(
        self, query: Query, budget: QueryBudget, params: ExecutionParameters
    ) -> None:
        """Deliver the query to every client, via the proxies when possible."""
        if self.config.distribute_queries_via_proxies and query.signature is not None:
            self.query_distributor.publish(query, budget, parameters=params)
            for client in self.clients:
                feed = self.query_distributor.make_subscription_feed(client.config.client_id)
                QueryDistributor.deliver_to_client(client, feed, self._analyst_keys)
            return
        for client in self.clients:
            client.subscribe(query, params)

    def parameters_for(self, query_id: str) -> ExecutionParameters:
        if query_id not in self._parameters:
            raise KeyError(f"unknown query {query_id}")
        return self._parameters[query_id]

    def aggregator_for(self, query_id: str) -> Aggregator:
        if query_id not in self._aggregators:
            raise KeyError(f"unknown query {query_id}")
        return self._aggregators[query_id]

    def query_for(self, query_id: str) -> Query:
        if query_id not in self._queries:
            raise KeyError(f"unknown query {query_id}")
        return self._queries[query_id]

    def query_ids(self) -> list[str]:
        """All submitted query ids, in submission order."""
        return list(self._queries)

    # -- population churn -----------------------------------------------------

    def set_active_clients(
        self, active_indices: Sequence[int], query_ids: Sequence[str] | None = None
    ) -> None:
        """Set which clients participate from the next epoch on.

        Churn is modeled as *subscription* churn over the fixed client
        universe: a client outside ``active_indices`` is unsubscribed from
        the given queries (all submitted queries by default) and becomes
        indistinguishable from an absent device — it answers nothing and
        draws nothing from its RNG streams — while a client rejoining is
        re-subscribed with the query's current parameters.  The client list
        itself never changes shape, which is what keeps shard boundaries,
        resident-worker slices and the seeded-equivalence contract intact;
        under the resident executor these edits flow to the pinned workers
        as ``ClientDelta`` subscription changes inside the next epoch's
        ``ShardDelta`` frames.

        Each query's aggregator is rescaled to the new population
        (``total_clients = max(1, len(active))``) so estimate inversion
        reflects who could actually have answered.
        """
        ids = list(query_ids) if query_ids is not None else list(self._queries)
        for query_id in ids:
            if query_id not in self._queries:
                raise KeyError(f"unknown query {query_id}")
        active = set(active_indices)
        for index in active:
            if not 0 <= index < len(self.clients):
                raise IndexError(
                    f"active client index {index} outside the universe "
                    f"[0, {len(self.clients)})"
                )
        for query_id in ids:
            query = self._queries[query_id]
            params = self._parameters[query_id]
            for index, client in enumerate(self.clients):
                subscribed = client.is_subscribed(query_id)
                if index in active and not subscribed:
                    client.subscribe(query, params)
                elif index not in active and subscribed:
                    client.unsubscribe(query_id)
            self._aggregators[query_id].total_clients = max(1, len(active))

    # -- epoch execution ------------------------------------------------------------

    def run_epoch(self, query_id: str, epoch: int) -> EpochReport:
        """Run one answering epoch end-to-end for a query.

        The answering/transmission/ingestion dataflow is delegated to the
        configured :class:`~repro.runtime.EpochExecutor`; everything after
        (historical recording, result delivery, feedback re-tuning, retiring
        stale admission-control epochs) is executor-agnostic.
        """
        if query_id not in self._queries:
            raise KeyError(f"unknown query {query_id}")
        outcome = self.executor.run_epoch(
            EpochContext(
                clients=self.clients,
                proxies=self.proxies,
                aggregator=self._aggregators[query_id],
                consumers=self._consumers[query_id],
                query_id=query_id,
                deadline=self.epoch_deadline,
            ),
            epoch,
        )
        return self._finish_query_epoch(query_id, epoch, outcome.per_query[0])

    def run_epoch_all(
        self, epoch: int, query_ids: Sequence[str] | None = None
    ) -> dict[str, EpochReport]:
        """Run one answering epoch for *all* (or the given) queries at once.

        Every query is served from a single answering pass over the clients:
        each client answers all its subscriptions in one go (sharing the
        local table scan, with per-query RNG streams keeping the draws
        isolated), and transmission/ingestion run on per-query channel
        topics into per-query aggregators.  For a fixed seed each query's
        results are byte-identical to running it alone — the multi-query
        epoch is a pure batching optimization.

        Returns one :class:`EpochReport` per query, keyed by query id, in
        submission order.
        """
        ids = list(query_ids) if query_ids is not None else list(self._queries)
        if not ids:
            raise ValueError("no queries submitted; nothing to run")
        if len(set(ids)) != len(ids):
            # A duplicated id would answer the query twice in one pass
            # (advancing its RNG streams twice) and run the epoch postlude
            # twice — corrupting state rather than failing loudly.
            raise ValueError("query_ids contains duplicates")
        for query_id in ids:
            if query_id not in self._queries:
                raise KeyError(f"unknown query {query_id}")
        outcome = self.executor.run_epoch(
            EpochContext(
                clients=self.clients,
                proxies=self.proxies,
                queries=tuple(
                    QueryContext(
                        query_id=query_id,
                        aggregator=self._aggregators[query_id],
                        consumers=self._scoped_consumers_for(query_id),
                        channel=query_id,
                    )
                    for query_id in ids
                ),
                deadline=self.epoch_deadline,
            ),
            epoch,
        )
        return {
            query_outcome.query_id: self._finish_query_epoch(
                query_outcome.query_id, epoch, query_outcome
            )
            for query_outcome in outcome.per_query
        }

    def _scoped_consumers_for(self, query_id: str) -> list:
        """The query's channel-scoped consumers, created on first use.

        Offsets persist across epochs, so the consumers (and the per-query
        topics they subscribe to) are built once per query — and only for
        deployments that actually run multi-query epochs.
        """
        consumers = self._scoped_consumers.get(query_id)
        if consumers is None:
            consumers = self.proxies.make_consumers(
                group_id=f"aggregator-{query_id}-scoped", channel=query_id
            )
            self._scoped_consumers[query_id] = consumers
        return consumers

    def _finish_query_epoch(self, query_id: str, epoch: int, outcome) -> EpochReport:
        """Executor-agnostic per-query epoch postlude.

        Logs the responses, records history, delivers results and re-tunes,
        and retires admission-control state outside the retention window.
        """
        query = self._queries[query_id]
        aggregator = self._aggregators[query_id]
        self._responses_log[query_id].extend(outcome.responses)
        window_results = list(outcome.window_results)
        self._record_historical(query, aggregator, epoch)
        self._deliver_and_retune(query_id, window_results)
        aggregator.finish_epoch(epoch)
        return EpochReport(
            epoch=epoch,
            num_participants=outcome.num_participants,
            num_clients=self.config.num_clients,
            window_results=tuple(window_results),
            parameters=self._parameters[query_id],
            late_drops=getattr(outcome, "late_drops", ()),
        )

    def run_epochs(self, query_id: str, num_epochs: int) -> list[EpochReport]:
        """Run several consecutive epochs."""
        return [self.run_epoch(query_id, epoch) for epoch in range(num_epochs)]

    def run_epochs_all(
        self, num_epochs: int, query_ids: Sequence[str] | None = None
    ) -> list[dict[str, EpochReport]]:
        """Run several consecutive multi-query epochs (see :meth:`run_epoch_all`)."""
        return [self.run_epoch_all(epoch, query_ids) for epoch in range(num_epochs)]

    def close(self) -> None:
        """Release executor resources (worker pools); safe to call twice."""
        self.executor.close()

    def flush(self, query_id: str) -> list[WindowResult]:
        """Flush pending windows at the end of an experiment."""
        results = self._aggregators[query_id].flush()
        self._deliver_and_retune(query_id, results)
        return results

    # -- evaluation helpers ------------------------------------------------------------

    def exact_bucket_counts(self, query_id: str) -> list[int]:
        """The exact per-bucket counts over the subscribed clients (no noise).

        This is the ground truth the evaluation compares estimates against; it
        reads each client's truthful answer directly and is only available in
        the simulation, not in a real deployment.  Clients churned out via
        :meth:`set_active_clients` hold no subscription and are skipped — the
        ground truth tracks who could actually have answered.
        """
        query = self._queries[query_id]
        counts = [0] * query.num_buckets
        for client in self.clients:
            if not client.is_subscribed(query_id):
                continue
            bits = client.truthful_answer(query_id)
            for index, bit in enumerate(bits):
                counts[index] += bit
        return counts

    def responses_log(self, query_id: str) -> list[ClientResponse]:
        """All responses produced so far (evaluation only)."""
        return list(self._responses_log.get(query_id, []))

    # -- internals ------------------------------------------------------------

    def _record_historical(self, query: Query, aggregator: Aggregator, epoch: int) -> None:
        if self.historical_store is None:
            return
        timestamp = epoch * query.frequency_seconds
        for response in self._responses_log[query.query_id]:
            if response.epoch != epoch:
                continue
            answer = aggregator._codec.decrypt(list(response.encrypted.shares))
            self.historical_store.append_answer(answer, timestamp)

    def _deliver_and_retune(self, query_id: str, window_results: list[WindowResult]) -> None:
        budget = self._budgets[query_id]
        params = self._parameters[query_id]
        for result in window_results:
            if self.analyst is not None:
                self.analyst.deliver_result(query_id, result)
            if budget.target_accuracy_loss is None:
                continue
            observed = self._observed_relative_error(result)
            if observed is None:
                continue
            new_params = self.planner.retune(params, observed, budget.target_accuracy_loss)
            if new_params != params:
                params = new_params
                self._parameters[query_id] = new_params
                for client in self.clients:
                    # Only refresh clients that currently hold the query: a
                    # churned-out (unsubscribed) client must not be silently
                    # resurrected by a parameter re-tune.
                    if client.is_subscribed(query_id):
                        client.subscribe(self._queries[query_id], new_params)
                # The aggregator keeps the original estimator for already
                # ingested epochs; new epochs use the re-tuned parameters.
                self._aggregators[query_id].parameters = new_params

    @staticmethod
    def _observed_relative_error(result: WindowResult) -> float | None:
        """Relative error proxy used by the feedback loop: error bound / estimate."""
        total = result.histogram.total()
        if total <= 0:
            return None
        bounded = [b.error_bound for b in result.histogram.buckets if b.error_bound != float("inf")]
        if not bounded:
            return None
        return sum(bounded) / total
