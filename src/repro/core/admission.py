"""Answer admission control: duplicate and rate-limit defenses.

Section 3.2.4 notes that "an adversarial client might answer a query many
times in an attempt to distort the query result", and points at the answer
splitting technique of SplitX as a remedy.  The defense implemented here keeps
the synchronization-free property of PrivApprox:

* every client attaches a **per-epoch participation token** to its message id;
  the token is the keyed hash of a per-client secret and the epoch, so it is
  stable within an epoch, unlinkable across epochs, and reveals nothing about
  the client's identity to the aggregator;
* the aggregator's :class:`AnswerAdmissionController` admits at most one
  answer per (query, epoch, token) and tracks how many duplicates it refused;
* a global per-epoch rate limit bounds the damage of a flood of fabricated
  tokens (Sybil defenses proper are out of scope, as in the paper).

Because the token is derived client-side and checked aggregator-side, no proxy
coordination is required.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


def participation_token(client_secret: bytes, query_id: str, epoch: int) -> str:
    """Anonymous, epoch-scoped participation token.

    The token is an HMAC over (query id, epoch) keyed with the client's local
    secret: stable for one epoch (so duplicates collide), but different and
    unlinkable across epochs and queries (so the aggregator cannot track a
    client over time).
    """
    if not client_secret:
        raise ValueError("client secret must not be empty")
    if epoch < 0:
        raise ValueError("epoch must be non-negative")
    message = f"{query_id}|{epoch}".encode("utf-8")
    return hmac.new(client_secret, message, hashlib.sha256).hexdigest()[:32]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of admitting one answer."""

    admitted: bool
    reason: str = "ok"


@dataclass
class AnswerAdmissionController:
    """Aggregator-side duplicate suppression and rate limiting.

    Parameters
    ----------
    max_answers_per_epoch:
        Optional global cap on admitted answers per (query, epoch); ``None``
        disables the cap.  The cap is a blunt defense against token-forging
        floods — it bounds how much a group of malicious clients can inflate
        the answer count.
    """

    max_answers_per_epoch: int | None = None

    def __post_init__(self) -> None:
        self._seen: dict[tuple[str, int], set[str]] = {}
        self._admitted_counts: dict[tuple[str, int], int] = {}
        self.duplicates_rejected = 0
        self.rate_limited = 0

    def admit(self, query_id: str, epoch: int, token: str) -> AdmissionDecision:
        """Decide whether to accept one answer for aggregation."""
        if not token:
            return AdmissionDecision(admitted=False, reason="missing token")
        key = (query_id, epoch)
        seen = self._seen.setdefault(key, set())
        if token in seen:
            self.duplicates_rejected += 1
            return AdmissionDecision(admitted=False, reason="duplicate token")
        count = self._admitted_counts.get(key, 0)
        if self.max_answers_per_epoch is not None and count >= self.max_answers_per_epoch:
            self.rate_limited += 1
            return AdmissionDecision(admitted=False, reason="epoch rate limit")
        seen.add(token)
        self._admitted_counts[key] = count + 1
        return AdmissionDecision(admitted=True)

    def admit_batch(
        self, query_id: str, items: list[tuple[int, str]]
    ) -> list[bool]:
        """Admit many ``(epoch, token)`` answers in arrival order.

        Decision-for-decision and counter-for-counter identical to calling
        :meth:`admit` once per item, but the per-epoch seen-set and admitted
        count are resolved once per distinct epoch instead of once per answer
        and no :class:`AdmissionDecision` is allocated — the batched admission
        loop of the aggregator's grouped ingest path.
        """
        max_answers = self.max_answers_per_epoch
        seen_cache: dict[tuple[str, int], set[str]] = {}
        count_cache: dict[tuple[str, int], int] = {}
        verdicts = []
        append = verdicts.append
        for epoch, token in items:
            if not token:
                append(False)
                continue
            key = (query_id, epoch)
            seen = seen_cache.get(key)
            if seen is None:
                seen = seen_cache[key] = self._seen.setdefault(key, set())
                count_cache[key] = self._admitted_counts.get(key, 0)
            if token in seen:
                self.duplicates_rejected += 1
                append(False)
                continue
            if max_answers is not None and count_cache[key] >= max_answers:
                self.rate_limited += 1
                append(False)
                continue
            seen.add(token)
            count_cache[key] += 1
            append(True)
        for key, count in count_cache.items():
            self._admitted_counts[key] = count
        return verdicts

    def admitted_count(self, query_id: str, epoch: int) -> int:
        return self._admitted_counts.get((query_id, epoch), 0)

    def forget_epoch(self, query_id: str, epoch: int) -> None:
        """Drop the state of an epoch whose window results are finalized."""
        self._seen.pop((query_id, epoch), None)
        self._admitted_counts.pop((query_id, epoch), None)

    def forget_epochs_before(self, query_id: str, epoch: int) -> int:
        """Drop every tracked epoch of ``query_id`` older than ``epoch``.

        Called by the aggregator once an epoch's ingest completes (with a
        small retention window for stragglers), so the per-epoch token sets
        stay bounded in a long-running stream instead of growing forever.
        Returns the number of epochs dropped.
        """
        stale = [
            key for key in self._seen if key[0] == query_id and key[1] < epoch
        ]
        for key in stale:
            del self._seen[key]
            self._admitted_counts.pop(key, None)
        return len(stale)

    def tracked_epochs(self) -> int:
        return len(self._seen)

    def metrics(self) -> dict[str, int]:
        """A snapshot of the rejection counters (scenario accounting)."""
        return {
            "duplicates_rejected": self.duplicates_rejected,
            "rate_limited": self.rate_limited,
            "tracked_epochs": self.tracked_epochs(),
        }
