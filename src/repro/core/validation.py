"""Answer validation at the aggregator.

Clients are potentially malicious (Section 2.2): besides answering multiple
times (handled by :mod:`repro.core.admission`) they can send structurally
invalid answers — wrong query id, wrong bit-vector length, out-of-range epoch,
or several bits set where the query model expects at most one.  The
:class:`AnswerValidator` centralizes these checks so the aggregator only feeds
well-formed answers into the estimator, and keeps counters so operators can
observe the rejection rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Query, QueryAnswer

_BINARY_BITS = frozenset((0, 1))


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating one answer."""

    valid: bool
    reason: str = "ok"


@dataclass
class AnswerValidator:
    """Structural validation of decrypted answers against their query.

    Parameters
    ----------
    query:
        The query the answers must belong to.
    max_set_bits:
        Maximum number of 1-bits allowed in an answer.  The query model sets
        exactly one bucket for numeric queries, but randomized response can
        legitimately flip extra bits to 1, so the default allows any count;
        deployments whose queries use very small `q` can tighten it.
    max_epoch_drift:
        How far (in epochs) an answer's embedded epoch may differ from the
        epoch it arrived in; answers drifting further are rejected as replays.
    """

    query: Query
    max_set_bits: int | None = None
    max_epoch_drift: int = 2

    def __post_init__(self) -> None:
        self.rejected_by_reason: dict[str, int] = {}
        self.accepted = 0

    def validate(self, answer: QueryAnswer, arrival_epoch: int) -> ValidationResult:
        """Check one decrypted answer."""
        result = self._check(answer, arrival_epoch)
        if result.valid:
            self.accepted += 1
        else:
            self.rejected_by_reason[result.reason] = (
                self.rejected_by_reason.get(result.reason, 0) + 1
            )
        return result

    def validate_batch(self, answers: list[QueryAnswer], arrival_epoch: int) -> list[bool]:
        """Check many answers in one pass; returns one verdict per answer.

        Decision-for-decision and counter-for-counter identical to calling
        :meth:`validate` once per answer, but with the query constants bound
        once and without a :class:`ValidationResult` allocation per answer —
        the batched admission loop of the aggregator's grouped ingest path.
        """
        query_id = self.query.query_id
        num_buckets = self.query.num_buckets
        max_drift = self.max_epoch_drift
        max_set = self.max_set_bits
        rejected = self.rejected_by_reason
        verdicts = []
        append = verdicts.append
        accepted = 0
        for answer in answers:
            if answer.query_id != query_id:
                reason = "wrong query id"
            elif answer.num_buckets != num_buckets:
                reason = "wrong answer length"
            elif not _BINARY_BITS.issuperset(answer.bits):
                reason = "non-binary answer"
            elif answer.epoch < 0:
                reason = "negative epoch"
            elif abs(answer.epoch - arrival_epoch) > max_drift:
                reason = "epoch drift"
            elif max_set is not None and sum(answer.bits) > max_set:
                reason = "too many set bits"
            else:
                accepted += 1
                append(True)
                continue
            rejected[reason] = rejected.get(reason, 0) + 1
            append(False)
        self.accepted += accepted
        return verdicts

    def _check(self, answer: QueryAnswer, arrival_epoch: int) -> ValidationResult:
        if answer.query_id != self.query.query_id:
            return ValidationResult(False, "wrong query id")
        if answer.num_buckets != self.query.num_buckets:
            return ValidationResult(False, "wrong answer length")
        if any(bit not in (0, 1) for bit in answer.bits):
            return ValidationResult(False, "non-binary answer")
        if answer.epoch < 0:
            return ValidationResult(False, "negative epoch")
        if abs(answer.epoch - arrival_epoch) > self.max_epoch_drift:
            return ValidationResult(False, "epoch drift")
        if self.max_set_bits is not None and sum(answer.bits) > self.max_set_bits:
            return ValidationResult(False, "too many set bits")
        return ValidationResult(True)

    def total_rejected(self) -> int:
        return sum(self.rejected_by_reason.values())
