"""Operational metrics for a running PrivApprox deployment.

A deployment operator needs to see, per query: how many clients participate
each epoch (is the sampling fraction behaving?), how many shares the proxies
relay and how many bytes that costs, how many answers the aggregator joined,
and how many messages were rejected as malformed, invalid or duplicate.  The
:class:`SystemMetrics` collector pulls those counters from the system's
components without touching any private data — everything it reports is
already visible to the respective component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import EpochReport, PrivApproxSystem


@dataclass(frozen=True)
class QueryMetrics:
    """A point-in-time snapshot of one query's operational counters."""

    query_id: str
    epochs_run: int
    mean_participation_rate: float
    shares_relayed: int
    bytes_relayed: int
    answers_processed: int
    pending_joins: int
    malformed_messages: int
    invalid_answers: int
    rejected_duplicates: int
    current_sampling_fraction: float
    current_p: float
    current_q: float
    epsilon_zk: float

    def rejection_rate(self) -> float:
        """Fraction of joined messages that were rejected for any reason."""
        rejected = self.malformed_messages + self.invalid_answers + self.rejected_duplicates
        total = self.answers_processed + rejected
        if total == 0:
            return 0.0
        return rejected / total


@dataclass
class SystemMetrics:
    """Collects operational metrics from a :class:`PrivApproxSystem`."""

    system: PrivApproxSystem

    def __post_init__(self) -> None:
        self._epoch_reports: dict[str, list[EpochReport]] = {}

    def record_epoch(self, report: EpochReport, query_id: str) -> None:
        """Record one epoch report (call after each ``run_epoch``)."""
        self._epoch_reports.setdefault(query_id, []).append(report)

    def run_and_record(self, query_id: str, epoch: int) -> EpochReport:
        """Convenience wrapper: run an epoch on the system and record it."""
        report = self.system.run_epoch(query_id, epoch)
        self.record_epoch(report, query_id)
        return report

    def snapshot(self, query_id: str) -> QueryMetrics:
        """A snapshot of every counter relevant to one query."""
        aggregator = self.system.aggregator_for(query_id)
        parameters = self.system.parameters_for(query_id)
        reports = self._epoch_reports.get(query_id, [])
        participation = (
            sum(r.participation_rate for r in reports) / len(reports) if reports else 0.0
        )
        return QueryMetrics(
            query_id=query_id,
            epochs_run=len(reports),
            mean_participation_rate=participation,
            shares_relayed=self.system.proxies.total_shares_relayed(),
            bytes_relayed=self.system.proxies.total_bytes_relayed(),
            answers_processed=aggregator.answers_processed,
            pending_joins=aggregator.pending_joins(),
            malformed_messages=aggregator.malformed_messages,
            invalid_answers=aggregator.invalid_answers,
            rejected_duplicates=aggregator.rejected_duplicates,
            current_sampling_fraction=parameters.sampling_fraction,
            current_p=parameters.p,
            current_q=parameters.q,
            epsilon_zk=parameters.epsilon_zk,
        )

    def format_snapshot(self, query_id: str) -> str:
        """A human-readable multi-line summary of one query's metrics."""
        snapshot = self.snapshot(query_id)
        lines = [
            f"query {snapshot.query_id}",
            f"  epochs run:             {snapshot.epochs_run}",
            f"  mean participation:     {snapshot.mean_participation_rate:.1%}",
            f"  shares relayed:         {snapshot.shares_relayed}"
            f" ({snapshot.bytes_relayed} bytes)",
            f"  answers processed:      {snapshot.answers_processed}",
            f"  pending joins:          {snapshot.pending_joins}",
            f"  malformed messages:     {snapshot.malformed_messages}",
            f"  invalid answers:        {snapshot.invalid_answers}",
            f"  duplicate answers:      {snapshot.rejected_duplicates}",
            f"  rejection rate:         {snapshot.rejection_rate():.1%}",
            f"  parameters:             s={snapshot.current_sampling_fraction:.2f}"
            f" p={snapshot.current_p:.2f} q={snapshot.current_q:.2f}"
            f" (epsilon_zk={snapshot.epsilon_zk:.3f})",
        ]
        return "\n".join(lines)
