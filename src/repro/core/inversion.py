"""Query inversion (Section 3.3.2).

When the fraction of truthful "Yes" answers is far from the second
randomization parameter ``q``, the utility of the query result degrades: the
forced-"Yes" noise dominates the few genuine "Yes" answers (or vice versa).
PrivApprox's remedy is to invert the query — count the truthful "No" answers
instead — whenever that brings the target fraction closer to ``q``, and invert
the resulting estimate back.

The module provides the decision rule (:func:`should_invert`), the bit-level
inversion applied at the client (:func:`invert_answer_vector`), and the
aggregator-side estimator that works on inverted responses
(:class:`InvertedEstimator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.randomized_response import estimate_true_yes


def should_invert(expected_yes_fraction: float, q: float) -> bool:
    """Decide whether the inverted query gives higher utility.

    The inverted query targets the "No" fraction ``1 - y``; inversion pays off
    when that fraction is closer to ``q`` than the native "Yes" fraction is.
    """
    if not 0.0 <= expected_yes_fraction <= 1.0:
        raise ValueError("expected_yes_fraction must lie in [0, 1]")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must lie in [0, 1]")
    native_distance = abs(expected_yes_fraction - q)
    inverted_distance = abs((1.0 - expected_yes_fraction) - q)
    return inverted_distance < native_distance


def invert_answer_vector(bits: Sequence[int]) -> list[int]:
    """Invert a truthful answer vector bit-by-bit (clients answer the "No" query)."""
    out = []
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError("answer bits must be 0 or 1")
        out.append(1 - bit)
    return out


@dataclass(frozen=True)
class InvertedEstimator:
    """Estimates the truthful "Yes" count from responses to the inverted query.

    Clients answered the inverted question, so the aggregator first estimates
    the truthful "No" count with the standard Eq. 5 estimator and then maps it
    back: ``yes = total - no``.
    """

    p: float
    q: float

    def estimate_yes(self, observed_inverted_yes: float, total: int) -> float:
        """Truthful "Yes" estimate given the inverted responses.

        ``observed_inverted_yes`` is the number of 1-responses to the inverted
        query (i.e. randomized claims of "No" to the original question).
        """
        estimated_no = estimate_true_yes(observed_inverted_yes, total, self.p, self.q)
        return total - estimated_no

    def estimate_yes_counts(
        self, observed_inverted_counts: Sequence[float], total: int
    ) -> list[float]:
        """Apply the inverted estimator to every bucket of a histogram."""
        return [self.estimate_yes(count, total) for count in observed_inverted_counts]
