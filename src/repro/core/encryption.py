"""Step III: encoding and XOR-encrypting randomized answers (Section 3.2.3).

A client's randomized answer is concatenated with its query identifier to form
the message ``M = <QID, RandomizedAnswer>``, which is then split into ``n``
shares with the XOR one-time pad: one encrypted share plus ``n - 1`` key
shares, each sent to a different proxy under the same message identifier
``MID``.  The aggregator joins all shares with the same ``MID`` and XORs them
to recover ``M``.

The :class:`AnswerCodec` owns the byte-level message layout; it is the single
place that knows how to serialize and parse ``M``, so the client and the
aggregator cannot drift apart.
"""

from __future__ import annotations

import struct
import uuid
from dataclasses import dataclass

from repro.core.query import QueryAnswer
from repro.crypto.prng import KeystreamGenerator
from repro.crypto.xor import MessageShare, join_shares, split_message

_MAGIC = b"PA"
# magic, qid length, epoch, number of answer bits, participation-token length
_HEADER_FORMAT = ">2sHIHB"
_HEADER_SIZE = struct.calcsize(_HEADER_FORMAT)


@dataclass(frozen=True)
class EncryptedAnswer:
    """All shares of one encrypted answer, ready for transmission.

    ``shares[0]`` is the encrypted payload ``ME`` and ``shares[1:]`` are the
    key shares; each goes to a distinct proxy.  The shares are
    indistinguishable from random bytes in isolation.
    """

    message_id: str
    shares: tuple

    @property
    def num_shares(self) -> int:
        return len(self.shares)

    def share_for_proxy(self, proxy_index: int) -> MessageShare:
        if not 0 <= proxy_index < len(self.shares):
            raise IndexError(f"no share for proxy {proxy_index}")
        return self.shares[proxy_index]

    def total_bytes(self) -> int:
        return sum(share.size_bytes() for share in self.shares)


class AnswerCodec:
    """Serialize, encrypt, decrypt and parse randomized answers."""

    def encode(self, answer: QueryAnswer) -> bytes:
        """Serialize ``<QID, RandomizedAnswer>`` into the message ``M``."""
        qid_bytes = answer.query_id.encode("utf-8")
        if len(qid_bytes) > 0xFFFF:
            raise ValueError("query id too long")
        token_bytes = answer.token.encode("utf-8")
        if len(token_bytes) > 0xFF:
            raise ValueError("participation token too long")
        num_bits = len(answer.bits)
        header = struct.pack(
            _HEADER_FORMAT, _MAGIC, len(qid_bytes), answer.epoch, num_bits, len(token_bytes)
        )
        packed_bits = self._pack_bits(answer.bits)
        return header + qid_bytes + token_bytes + packed_bits

    def decode(self, message: bytes) -> QueryAnswer:
        """Parse a decrypted message ``M`` back into a :class:`QueryAnswer`."""
        if len(message) < _HEADER_SIZE:
            raise ValueError("message too short to contain a header")
        magic, qid_length, epoch, num_bits, token_length = struct.unpack(
            _HEADER_FORMAT, message[:_HEADER_SIZE]
        )
        if magic != _MAGIC:
            raise ValueError("bad magic: not a PrivApprox answer message")
        qid_end = _HEADER_SIZE + qid_length
        token_end = qid_end + token_length
        if len(message) < token_end:
            raise ValueError("message truncated inside the header fields")
        query_id = message[_HEADER_SIZE:qid_end].decode("utf-8")
        token = message[qid_end:token_end].decode("utf-8")
        packed = message[token_end:]
        bits = self._unpack_bits(packed, num_bits)
        return QueryAnswer(query_id=query_id, bits=tuple(bits), epoch=epoch, token=token)

    def encrypt(
        self,
        answer: QueryAnswer,
        num_proxies: int,
        keystream: KeystreamGenerator | None = None,
        message_id: str | None = None,
    ) -> EncryptedAnswer:
        """Encode and split an answer into one share per proxy."""
        if num_proxies < 2:
            raise ValueError("PrivApprox requires at least two proxies")
        message = self.encode(answer)
        if message_id is None:
            message_id = uuid.uuid4().hex
        shares = split_message(
            message, num_proxies=num_proxies, keystream=keystream, message_id=message_id
        )
        return EncryptedAnswer(message_id=message_id, shares=tuple(shares))

    def decrypt(self, shares: list[MessageShare]) -> QueryAnswer:
        """Join all shares of one message id and decode the answer."""
        return self.decode(join_shares(shares))

    # -- bit packing ---------------------------------------------------------

    @staticmethod
    def _pack_bits(bits) -> bytes:
        out = bytearray((len(bits) + 7) // 8)
        for index, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError("answer bits must be 0 or 1")
            if bit:
                out[index // 8] |= 1 << (7 - index % 8)
        return bytes(out)

    @staticmethod
    def _unpack_bits(packed: bytes, num_bits: int) -> list[int]:
        if len(packed) < (num_bits + 7) // 8:
            raise ValueError("packed bit payload shorter than declared bit count")
        bits = []
        for index in range(num_bits):
            byte = packed[index // 8]
            bits.append((byte >> (7 - index % 8)) & 1)
        return bits
