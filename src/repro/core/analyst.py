"""The analyst-facing interface.

Analysts publish streaming queries together with an execution budget and
receive windowed, error-bounded histogram results back (Sections 2.1 and 3.1).
The :class:`Analyst` owns query construction (including signing and serial
numbering), keeps the budget associated with each query, and collects the
results delivered by the system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import QueryBudget
from repro.core.query import AnswerSpec, Query, make_query_id


@dataclass
class Analyst:
    """An analyst identity: builds, signs and tracks streaming queries."""

    analyst_id: str = "analyst"
    signing_key: bytes = b"privapprox-analyst-key"

    def __post_init__(self) -> None:
        self._serial = 0
        self._budgets: dict[str, QueryBudget] = {}
        self._results: dict[str, list] = {}

    # -- query construction --------------------------------------------------

    def create_query(
        self,
        sql: str,
        answer_spec: AnswerSpec,
        frequency_seconds: float = 1.0,
        window_seconds: float = 600.0,
        slide_seconds: float = 60.0,
    ) -> Query:
        """Build and sign a streaming query with a fresh serial number."""
        query_id = make_query_id(self.analyst_id, self._serial)
        self._serial += 1
        query = Query(
            query_id=query_id,
            sql=sql,
            answer_spec=answer_spec,
            frequency_seconds=frequency_seconds,
            window_seconds=window_seconds,
            slide_seconds=slide_seconds,
            analyst_id=self.analyst_id,
        )
        return query.sign(self.signing_key)

    def attach_budget(self, query: Query, budget: QueryBudget) -> None:
        """Associate an execution budget with a query before submission."""
        self._budgets[query.query_id] = budget

    def budget_for(self, query_id: str) -> QueryBudget:
        if query_id not in self._budgets:
            raise KeyError(f"no budget attached to query {query_id}")
        return self._budgets[query_id]

    # -- result collection -----------------------------------------------------

    def deliver_result(self, query_id: str, result) -> None:
        """Called by the system whenever a window result is produced."""
        self._results.setdefault(query_id, []).append(result)

    def results_for(self, query_id: str) -> list:
        """All window results received so far for a query, in arrival order."""
        return list(self._results.get(query_id, []))

    def latest_result(self, query_id: str):
        """The most recent window result, or None if nothing arrived yet."""
        results = self._results.get(query_id)
        return results[-1] if results else None
