"""Step IV support: error-bound estimation for approximate query results.

Section 3.2.4 decomposes the accuracy loss into the part caused by sampling and
the part caused by randomized response, shows the two are statistically
independent, and sums the independently estimated errors to form the total
error bound reported with each query result (``queryResult +/- errorBound``).

* The sampling error is analytical: the t-distribution confidence interval of
  Equations 2-4 (:func:`sampling_error_bound`).
* The randomized-response error is estimated empirically, by running a short
  calibration ("several micro-benchmarks at the beginning of the query
  answering process") without sampling and measuring Eq. 6
  (:meth:`ErrorEstimator.calibrate_randomized_response`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.randomized_response import (
    rr_accuracy_loss,
    simulate_randomized_survey,
)
from repro.core.sampling import sample_variance, t_critical


def estimated_variance(
    sampled_values: Sequence[float], population_size: int
) -> float:
    """Estimated variance of the scaled sum estimator (Eq. 4)."""
    sample_size = len(sampled_values)
    if sample_size == 0 or population_size == 0:
        return 0.0
    if population_size < sample_size:
        raise ValueError("population cannot be smaller than the sample")
    sigma_squared = sample_variance(sampled_values)
    return (
        (population_size ** 2 / sample_size)
        * sigma_squared
        * ((population_size - sample_size) / population_size)
    )


def sampling_error_bound(
    sampled_values: Sequence[float],
    population_size: int,
    confidence_level: float = 0.95,
) -> float:
    """Margin of error of the sampled sum (Eq. 3) at a confidence level."""
    sample_size = len(sampled_values)
    if sample_size == 0:
        return float("inf") if population_size > 0 else 0.0
    if sample_size >= population_size:
        return 0.0
    variance = estimated_variance(sampled_values, population_size)
    t_value = t_critical(sample_size, confidence_level)
    if not math.isfinite(t_value):
        return float("inf")
    return t_value * math.sqrt(variance)


def combined_error_bound(sampling_error: float, randomization_error: float) -> float:
    """Total error bound: the two independent error components added (Section 3.2.4)."""
    if sampling_error < 0 or randomization_error < 0:
        raise ValueError("error components must be non-negative")
    return sampling_error + randomization_error


@dataclass
class ErrorEstimator:
    """Produces the per-bucket error bound attached to every query result.

    Parameters
    ----------
    p, q:
        Randomization parameters in force for the query.
    confidence_level:
        Confidence level of the sampling error bound (default 95%).
    calibration_trials / calibration_size:
        Number and size of the synthetic randomized-response calibration runs
        used to estimate the randomization error empirically.
    rng:
        Randomness source for the calibration runs.
    """

    p: float
    q: float
    confidence_level: float = 0.95
    calibration_trials: int = 10
    calibration_size: int = 2_000
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        self._rr_loss_cache: dict[float, float] = {}

    # -- randomized response error (empirical) -----------------------------

    def calibrate_randomized_response(self, yes_fraction: float) -> float:
        """Mean accuracy loss of randomized response at a given Yes fraction.

        Runs ``calibration_trials`` synthetic surveys of ``calibration_size``
        answers with the current ``(p, q)`` and no sampling, and returns the
        mean Eq. 6 loss.  Results are cached per Yes fraction (rounded) since
        the estimate is reused for every window.
        """
        if not 0.0 <= yes_fraction <= 1.0:
            raise ValueError("yes_fraction must lie in [0, 1]")
        key = round(yes_fraction, 3)
        if key in self._rr_loss_cache:
            return self._rr_loss_cache[key]
        losses = []
        true_yes = round(self.calibration_size * yes_fraction)
        for _ in range(self.calibration_trials):
            _, estimate = simulate_randomized_survey(
                true_yes=true_yes,
                total=self.calibration_size,
                p=self.p,
                q=self.q,
                rng=self.rng,
            )
            if true_yes > 0:
                losses.append(rr_accuracy_loss(true_yes, estimate))
            else:
                losses.append(abs(estimate) / self.calibration_size)
        loss = sum(losses) / len(losses)
        self._rr_loss_cache[key] = loss
        return loss

    def randomization_error(self, estimated_count: float, yes_fraction: float) -> float:
        """Absolute randomization error bound for one bucket estimate."""
        relative_loss = self.calibrate_randomized_response(yes_fraction)
        return abs(estimated_count) * relative_loss

    # -- combined error --------------------------------------------------------

    def bucket_error_bound(
        self,
        corrected_values: Sequence[float],
        population_size: int,
        estimated_count: float,
    ) -> float:
        """Total error bound for one bucket of one window.

        ``corrected_values`` are the per-answer contributions after inverting
        the randomization (the ``a_i`` of Eq. 2, which already contain the
        randomization noise); ``population_size`` is the total client count
        ``U``; ``estimated_count`` is the scaled bucket estimate.
        """
        sample_size = len(corrected_values)
        sampling_error = sampling_error_bound(
            corrected_values, population_size, self.confidence_level
        )
        yes_fraction = 0.0
        if sample_size > 0:
            yes_fraction = min(1.0, max(0.0, estimated_count / max(population_size, 1)))
        randomization_error = self.randomization_error(estimated_count, yes_fraction)
        if not math.isfinite(sampling_error):
            return float("inf")
        return combined_error_bound(sampling_error, randomization_error)


def estimate_randomization_loss_curve(
    p: float,
    q: float,
    yes_fractions: Sequence[float],
    num_answers: int = 10_000,
    trials: int = 5,
    seed: int | None = None,
) -> list[float]:
    """Empirical accuracy-loss curve of randomized response across Yes fractions.

    This is the measurement behind Figure 5(a)'s native-query curve and the
    randomized-response component of Figure 4(b).
    """
    rng = random.Random(seed)
    losses = []
    for fraction in yes_fractions:
        true_yes = round(num_answers * fraction)
        trial_losses = []
        for _ in range(trials):
            _, estimate = simulate_randomized_survey(true_yes, num_answers, p, q, rng)
            if true_yes > 0:
                trial_losses.append(rr_accuracy_loss(true_yes, estimate))
            else:
                trial_losses.append(abs(estimate) / num_answers)
        losses.append(sum(trial_losses) / len(trial_losses))
    return losses
