"""The adaptive execution budget interface (Sections 2.1, 3.1 and 5).

An analyst submits a query together with a *query execution budget*, which can
be expressed as a latency target (SLA), an output accuracy target, available
computing resources, or a privacy requirement.  The aggregator's initializer
module converts the budget into the three system parameters — the sampling
fraction ``s`` and the randomization probabilities ``p`` and ``q`` — before
distributing the query to clients.  During execution a feedback mechanism
re-tunes the parameters when the observed error exceeds the budget
(Section 5, "Aggregator").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.privacy import PrivacyAccountant, zero_knowledge_epsilon
from repro.netsim.network import NetworkModel


@dataclass(frozen=True)
class QueryBudget:
    """An analyst's execution budget.  All fields are optional constraints.

    Attributes
    ----------
    max_latency_seconds:
        Latency SLA for producing each windowed result.
    target_accuracy_loss:
        Upper bound on the acceptable accuracy loss (e.g. 0.05 for 5%).
    max_epsilon:
        Upper bound on the zero-knowledge privacy level the analyst may use
        (smaller is more private).
    max_cost_units:
        Abstract computing-resource budget (e.g. node-seconds per window);
        used by historical analytics to pick an aggregator-side sampling rate.
    expected_clients:
        Expected number of clients subscribed to the query, needed to convert
        latency budgets into sampling fractions.
    answer_bits:
        Size of the answer bit vector, needed for the latency model.
    """

    max_latency_seconds: float | None = None
    target_accuracy_loss: float | None = None
    max_epsilon: float | None = None
    max_cost_units: float | None = None
    expected_clients: int = 10_000
    answer_bits: int = 16

    def __post_init__(self) -> None:
        if self.max_latency_seconds is not None and self.max_latency_seconds <= 0:
            raise ValueError("latency budget must be positive")
        if self.target_accuracy_loss is not None and not 0 < self.target_accuracy_loss < 1:
            raise ValueError("accuracy-loss target must lie in (0, 1)")
        if self.max_epsilon is not None and self.max_epsilon <= 0:
            raise ValueError("epsilon budget must be positive")
        if self.expected_clients <= 0:
            raise ValueError("expected_clients must be positive")
        if self.answer_bits <= 0:
            raise ValueError("answer_bits must be positive")


@dataclass(frozen=True)
class ExecutionParameters:
    """The system parameters the initializer derives from a budget."""

    sampling_fraction: float
    p: float
    q: float

    def __post_init__(self) -> None:
        if not 0.0 < self.sampling_fraction <= 1.0:
            raise ValueError("sampling fraction must lie in (0, 1]")
        if not 0.0 < self.p <= 1.0:
            raise ValueError("p must lie in (0, 1]")
        if not 0.0 <= self.q <= 1.0:
            raise ValueError("q must lie in [0, 1]")

    @property
    def epsilon_zk(self) -> float:
        """Zero-knowledge privacy level of this configuration."""
        return zero_knowledge_epsilon(self.p, self.q, self.sampling_fraction)

    def with_sampling_fraction(self, sampling_fraction: float) -> "ExecutionParameters":
        return ExecutionParameters(sampling_fraction=sampling_fraction, p=self.p, q=self.q)

    def with_p(self, p: float) -> "ExecutionParameters":
        return ExecutionParameters(sampling_fraction=self.sampling_fraction, p=p, q=self.q)


@dataclass
class BudgetPlanner:
    """Converts a :class:`QueryBudget` into :class:`ExecutionParameters`.

    The planner applies the budget's constraints in a fixed priority order —
    privacy first (it is a hard guarantee), then latency (an SLA), then
    accuracy (a soft target) — and exposes :meth:`retune` for the aggregator's
    feedback loop.
    """

    network: NetworkModel = field(default_factory=NetworkModel)
    accountant: PrivacyAccountant = field(default_factory=PrivacyAccountant)
    default_parameters: ExecutionParameters = field(
        default_factory=lambda: ExecutionParameters(sampling_fraction=0.8, p=0.6, q=0.6)
    )
    min_sampling_fraction: float = 0.05

    # -- initial conversion ---------------------------------------------------

    def plan(self, budget: QueryBudget) -> ExecutionParameters:
        """Derive (s, p, q) from the analyst's budget.

        Constraints are applied in increasing priority: the soft accuracy
        target first, then the privacy budget (a hard guarantee, so it may cap
        what accuracy asked for), then the latency SLA (which only ever
        shrinks the sampling fraction and therefore can never weaken the
        privacy guarantee already established).
        """
        params = self.default_parameters

        if budget.target_accuracy_loss is not None:
            params = self._apply_accuracy_target(params, budget.target_accuracy_loss)
        if budget.max_epsilon is not None:
            params = self._apply_privacy_budget(params, budget.max_epsilon)
        if budget.max_latency_seconds is not None:
            params = self._apply_latency_budget(params, budget)
        return params

    def _apply_privacy_budget(
        self, params: ExecutionParameters, max_epsilon: float
    ) -> ExecutionParameters:
        """Cap p (and if necessary s) so the zero-knowledge level meets the budget."""
        min_p = 0.05
        p = self.accountant.max_p_for_target(
            q=params.q, sampling_fraction=params.sampling_fraction, epsilon_target=max_epsilon
        )
        p = max(min(p, params.p), min_p)
        if self.accountant.satisfies(p, params.q, params.sampling_fraction, max_epsilon):
            return params.with_p(p)
        # Even the smallest usable p cannot meet the budget at this sampling
        # fraction: shrink the sampling fraction instead (privacy improves as
        # fewer clients participate).
        s = self.accountant.sampling_fraction_for_target(
            p=min_p, q=params.q, epsilon_target=max_epsilon
        )
        return ExecutionParameters(
            sampling_fraction=max(s, self.min_sampling_fraction), p=min_p, q=params.q
        )

    def _apply_latency_budget(
        self, params: ExecutionParameters, budget: QueryBudget
    ) -> ExecutionParameters:
        """Shrink the sampling fraction until the modelled latency fits the SLA."""
        assert budget.max_latency_seconds is not None
        fraction = params.sampling_fraction
        while fraction > self.min_sampling_fraction:
            latency = self.network.latency(
                num_answers_total=budget.expected_clients,
                sampling_fraction=fraction,
                answer_bits=budget.answer_bits,
            )
            if latency.total_seconds <= budget.max_latency_seconds:
                return params.with_sampling_fraction(fraction)
            fraction = max(self.min_sampling_fraction, fraction * 0.8)
        return params.with_sampling_fraction(self.min_sampling_fraction)

    def _apply_accuracy_target(
        self, params: ExecutionParameters, target_loss: float
    ) -> ExecutionParameters:
        """Grow p / s (within the other constraints already applied) for accuracy.

        The randomization-induced relative error shrinks roughly like
        ``(1 - p) / p`` and the sampling error like ``1 / sqrt(s)``; the
        planner uses those monotone relationships to nudge the parameters.
        Privacy capping has priority, so p is only raised when no privacy
        budget constrained it (the caller applies constraints in order).
        """
        p = params.p
        fraction = params.sampling_fraction
        # Heuristic: very tight accuracy targets need a large truthful fraction.
        if target_loss < 0.01:
            p = max(p, 0.9)
            fraction = max(fraction, 0.9)
        elif target_loss < 0.05:
            p = max(p, 0.75)
            fraction = max(fraction, 0.8)
        return ExecutionParameters(sampling_fraction=fraction, p=p, q=params.q)

    # -- feedback loop -----------------------------------------------------------

    def retune(
        self,
        params: ExecutionParameters,
        observed_relative_error: float,
        target_accuracy_loss: float,
    ) -> ExecutionParameters:
        """Adjust parameters after a window whose error exceeded the target.

        The feedback mechanism raises the sampling fraction (more participants
        next epoch) and, if sampling is already saturated, raises ``p``.  When
        the observed error is comfortably inside the target the planner lowers
        the sampling fraction again to save resources.
        """
        if observed_relative_error < 0:
            raise ValueError("observed error must be non-negative")
        if not 0 < target_accuracy_loss < 1:
            raise ValueError("target accuracy loss must lie in (0, 1)")

        if observed_relative_error > target_accuracy_loss:
            if params.sampling_fraction < 1.0:
                grown = min(1.0, params.sampling_fraction * 1.25)
                return params.with_sampling_fraction(grown)
            return params.with_p(min(1.0, params.p + 0.1))
        if observed_relative_error < 0.5 * target_accuracy_loss:
            shrunk = max(self.min_sampling_fraction, params.sampling_fraction * 0.9)
            return params.with_sampling_fraction(shrunk)
        return params

    # -- historical analytics ------------------------------------------------------

    def batch_sampling_fraction(self, budget: QueryBudget, stored_answers: int) -> float:
        """Aggregator-side re-sampling rate for historical analytics.

        The cost of a batch job is proportional to the number of stored
        answers scanned; given a cost budget in "answer scan" units the
        planner returns the fraction to re-sample (Section 3.3.1).
        """
        if stored_answers <= 0:
            raise ValueError("stored_answers must be positive")
        if budget.max_cost_units is None:
            return 1.0
        fraction = budget.max_cost_units / stored_answers
        return max(self.min_sampling_fraction, min(1.0, fraction))
