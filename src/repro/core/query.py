"""The PrivApprox query model.

Section 3.1 defines a query as the signed tuple

    Query := <QID, SQL, A[n], f, w, delta>

where ``QID`` identifies the query, ``SQL`` is the statement executed at each
client over its private data, ``A[n]`` describes the n-bit answer bucket
layout, ``f`` is the answer frequency, ``w`` the sliding-window length and
``delta`` the sliding interval.  Answers are always bit vectors: exactly one
bit is set for numeric range buckets, and each bucket of a non-numeric query
is defined by a matching rule (Section 2.2).
"""

from __future__ import annotations

import hashlib
import hmac
import math
import re
from dataclasses import dataclass
from typing import Any, Sequence


class BucketSpec:
    """Common interface of answer bucket layouts."""

    @property
    def num_buckets(self) -> int:
        raise NotImplementedError

    def bucket_of(self, value: Any) -> int | None:
        """Index of the bucket ``value`` falls in, or None if no bucket matches."""
        raise NotImplementedError

    def labels(self) -> list[str]:
        raise NotImplementedError

    def encode(self, value: Any) -> list[int]:
        """The answer bit vector for one value (all zeros if nothing matches)."""
        vector = [0] * self.num_buckets
        index = self.bucket_of(value)
        if index is not None:
            vector[index] = 1
        return vector


@dataclass(frozen=True)
class RangeBuckets(BucketSpec):
    """Numeric buckets defined by their boundary points.

    ``boundaries = [b0, b1, ..., bk]`` defines ``k`` finite buckets
    ``[b0, b1), [b1, b2), ...``; setting ``open_ended=True`` appends a final
    ``[bk, +inf)`` bucket, as in the paper's taxi-distance example
    ("[0,1) mile ... [10, +inf) miles").
    """

    boundaries: tuple
    open_ended: bool = True

    def __post_init__(self) -> None:
        if len(self.boundaries) < 2:
            raise ValueError("RangeBuckets needs at least two boundary points")
        values = list(self.boundaries)
        if any(nxt <= prev for prev, nxt in zip(values, values[1:])):
            raise ValueError("boundaries must be strictly increasing")

    @classmethod
    def uniform(cls, low: float, high: float, num_buckets: int, open_ended: bool = False) -> "RangeBuckets":
        """Evenly spaced buckets covering ``[low, high)``."""
        if num_buckets < 1:
            raise ValueError("num_buckets must be positive")
        if high <= low:
            raise ValueError("high must exceed low")
        step = (high - low) / num_buckets
        boundaries = tuple(low + i * step for i in range(num_buckets + 1))
        return cls(boundaries=boundaries, open_ended=open_ended)

    @property
    def num_buckets(self) -> int:
        return len(self.boundaries) - 1 + (1 if self.open_ended else 0)

    def bucket_of(self, value: Any) -> int | None:
        if value is None:
            return None
        try:
            number = float(value)
        except (TypeError, ValueError):
            return None
        if math.isnan(number):
            return None
        if number < self.boundaries[0]:
            return None
        for i in range(len(self.boundaries) - 1):
            if self.boundaries[i] <= number < self.boundaries[i + 1]:
                return i
        if self.open_ended and number >= self.boundaries[-1]:
            return len(self.boundaries) - 1
        return None

    def labels(self) -> list[str]:
        out = [
            f"[{self.boundaries[i]}, {self.boundaries[i + 1]})"
            for i in range(len(self.boundaries) - 1)
        ]
        if self.open_ended:
            out.append(f"[{self.boundaries[-1]}, +inf)")
        return out


@dataclass(frozen=True)
class RuleBuckets(BucketSpec):
    """Non-numeric buckets, each defined by a matching rule.

    A rule is either a regular-expression string or an arbitrary predicate;
    the first matching rule wins, so rules act like SQL CASE branches.
    """

    rules: tuple  # of (label, pattern-or-callable)

    def __post_init__(self) -> None:
        if not self.rules:
            raise ValueError("RuleBuckets needs at least one rule")

    @classmethod
    def from_patterns(cls, patterns: Sequence[tuple[str, str]]) -> "RuleBuckets":
        """Build rule buckets from (label, regex) pairs."""
        return cls(rules=tuple(patterns))

    @classmethod
    def from_values(cls, values: Sequence[str]) -> "RuleBuckets":
        """One bucket per exact categorical value."""
        return cls(rules=tuple((v, f"^{re.escape(v)}$") for v in values))

    @property
    def num_buckets(self) -> int:
        return len(self.rules)

    def bucket_of(self, value: Any) -> int | None:
        if value is None:
            return None
        text = str(value)
        for index, (_, rule) in enumerate(self.rules):
            if callable(rule):
                if rule(value):
                    return index
            elif re.search(rule, text):
                return index
        return None

    def labels(self) -> list[str]:
        return [label for label, _ in self.rules]


@dataclass(frozen=True)
class AnswerSpec:
    """``A[n]``: the answer format — a bucket layout plus the value column.

    ``value_column`` names the column of the client's SQL result whose value is
    bucketed (e.g. ``speed`` in the paper's driving-speed example); when None,
    the first column of the result is used.
    """

    buckets: BucketSpec
    value_column: str | None = None

    @property
    def num_buckets(self) -> int:
        return self.buckets.num_buckets

    def labels(self) -> list[str]:
        return self.buckets.labels()

    def encode_value(self, value: Any) -> list[int]:
        return self.buckets.encode(value)


@dataclass(frozen=True)
class QueryAnswer:
    """A single client's (truthful or randomized) answer: an n-bit vector.

    ``token`` is the anonymous per-epoch participation token used by the
    aggregator's duplicate-answer defense (:mod:`repro.core.admission`); it is
    empty when admission control is not in use.
    """

    query_id: str
    bits: tuple
    client_tag: str | None = None  # never transmitted; used only in tests/metrics
    epoch: int = 0
    token: str = ""

    def __post_init__(self) -> None:
        if any(bit not in (0, 1) for bit in self.bits):
            raise ValueError("answer bits must be 0 or 1")

    @property
    def num_buckets(self) -> int:
        return len(self.bits)

    def as_list(self) -> list[int]:
        return list(self.bits)


@dataclass(frozen=True)
class Query:
    """The analyst's streaming query (Section 3.1, Equation 1).

    Attributes
    ----------
    query_id:
        ``QID`` — unique identifier (analyst id + serial number).
    sql:
        The SQL statement executed at clients on their local database.
    answer_spec:
        ``A[n]`` — the answer bucket layout.
    frequency_seconds:
        ``f`` — how often clients execute the query.
    window_seconds:
        ``w`` — sliding window length used by the aggregator.
    slide_seconds:
        ``delta`` — sliding interval between successive results.
    analyst_id:
        Identifier of the analyst who published the query.
    signature:
        HMAC over the query fields, set by :meth:`sign`.
    """

    query_id: str
    sql: str
    answer_spec: AnswerSpec
    frequency_seconds: float = 1.0
    window_seconds: float = 600.0
    slide_seconds: float = 60.0
    analyst_id: str = "analyst"
    signature: str | None = None

    def __post_init__(self) -> None:
        if self.frequency_seconds <= 0:
            raise ValueError("frequency must be positive")
        if self.window_seconds <= 0:
            raise ValueError("window length must be positive")
        if self.slide_seconds <= 0:
            raise ValueError("slide interval must be positive")
        if self.slide_seconds > self.window_seconds:
            raise ValueError("slide interval must not exceed the window length")

    @property
    def num_buckets(self) -> int:
        return self.answer_spec.num_buckets

    def canonical_bytes(self) -> bytes:
        """Canonical serialization of the signed fields."""
        parts = [
            self.query_id,
            self.sql,
            "|".join(self.answer_spec.labels()),
            repr(self.frequency_seconds),
            repr(self.window_seconds),
            repr(self.slide_seconds),
            self.analyst_id,
        ]
        return "\x1f".join(parts).encode("utf-8")

    def sign(self, signing_key: bytes) -> "Query":
        """Return a copy carrying an HMAC-SHA256 signature (non-repudiation)."""
        digest = hmac.new(signing_key, self.canonical_bytes(), hashlib.sha256).hexdigest()
        return Query(
            query_id=self.query_id,
            sql=self.sql,
            answer_spec=self.answer_spec,
            frequency_seconds=self.frequency_seconds,
            window_seconds=self.window_seconds,
            slide_seconds=self.slide_seconds,
            analyst_id=self.analyst_id,
            signature=digest,
        )

    def verify_signature(self, signing_key: bytes) -> bool:
        """Check the query's signature against a key."""
        if self.signature is None:
            return False
        expected = hmac.new(signing_key, self.canonical_bytes(), hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, self.signature)

    def encode_value(self, value: Any) -> list[int]:
        """Bucket a raw answer value into the n-bit answer vector."""
        return self.answer_spec.encode_value(value)


def make_query_id(analyst_id: str, serial: int) -> str:
    """Build a ``QID`` by concatenating the analyst id with a serial number."""
    if serial < 0:
        raise ValueError("serial must be non-negative")
    return f"{analyst_id}-{serial:08d}"
