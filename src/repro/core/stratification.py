"""Stratified deployments (technical-report extension of Step I).

The body of the paper assumes every client's stream follows the same
distribution ("all clients' data streams belong to the same stratum"); the
technical report extends sampling to *stratified* populations: clients are
grouped into strata (by region, device class, provider, ...), each stratum is
sampled and aggregated independently, and the per-stratum estimates are summed
— with their variances added — to form the population result.  Stratification
reduces the sampling variance whenever the strata have different answer
distributions.

This module provides the deployment-level counterpart of
:class:`repro.core.sampling.StratifiedSampler`:

* :class:`StratumSpec` — one stratum: its name, client count and data loader;
* :class:`StratifiedDeployment` — runs one :class:`PrivApproxSystem` per
  stratum against the same analyst query and combines the per-stratum window
  results into population-level histograms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analytics.histogram import BucketEstimate, HistogramResult
from repro.core.aggregator import WindowResult
from repro.core.analyst import Analyst
from repro.core.budget import ExecutionParameters, QueryBudget
from repro.core.query import Query
from repro.core.system import PrivApproxSystem, SystemConfig


@dataclass(frozen=True)
class StratumSpec:
    """Description of one stratum of the client population."""

    name: str
    num_clients: int
    columns: tuple
    data_for_client: Callable[[int], list]
    sampling_fraction: float | None = None  # overrides the shared fraction if set

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("a stratum needs at least one client")
        if self.sampling_fraction is not None and not 0.0 < self.sampling_fraction <= 1.0:
            raise ValueError("sampling fraction must lie in (0, 1]")


def combine_stratum_histograms(
    histograms: Sequence[HistogramResult],
    window: tuple[float, float] | None = None,
) -> HistogramResult:
    """Combine per-stratum histograms into a population histogram.

    Estimates add across strata; because the strata are sampled independently,
    the variances add as well, so the combined error bound per bucket is the
    root-sum-of-squares of the per-stratum bounds.
    """
    if not histograms:
        raise ValueError("need at least one stratum histogram")
    num_buckets = len(histograms[0])
    if any(len(h) != num_buckets for h in histograms):
        raise ValueError("stratum histograms must have the same bucket layout")
    combined = HistogramResult(
        window=window, num_answers=sum(h.num_answers for h in histograms)
    )
    for index in range(num_buckets):
        per_stratum = [h.bucket(index) for h in histograms]
        estimate = sum(b.estimate for b in per_stratum)
        finite_bounds = [b.error_bound for b in per_stratum if math.isfinite(b.error_bound)]
        if len(finite_bounds) < len(per_stratum):
            error = float("inf")
        else:
            error = math.sqrt(sum(bound ** 2 for bound in finite_bounds))
        combined.add_bucket(
            BucketEstimate(
                bucket_index=index,
                label=per_stratum[0].label,
                estimate=estimate,
                error_bound=error,
                confidence_level=per_stratum[0].confidence_level,
            )
        )
    return combined


@dataclass(frozen=True)
class StratifiedWindowResult:
    """A combined window result plus the per-stratum results it came from."""

    window: tuple[float, float] | None
    histogram: HistogramResult
    per_stratum: dict


@dataclass
class StratifiedDeployment:
    """One PrivApprox deployment per stratum, sharing a single analyst query."""

    strata: list[StratumSpec]
    num_proxies: int = 2
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.strata:
            raise ValueError("need at least one stratum")
        names = [s.name for s in self.strata]
        if len(set(names)) != len(names):
            raise ValueError("stratum names must be unique")
        self.systems: dict[str, PrivApproxSystem] = {}
        for index, spec in enumerate(self.strata):
            seed = None if self.seed is None else self.seed * 7919 + index
            system = PrivApproxSystem(
                SystemConfig(
                    num_clients=spec.num_clients, num_proxies=self.num_proxies, seed=seed
                )
            )
            system.provision_clients(list(spec.columns), spec.data_for_client)
            self.systems[spec.name] = system
        self._query: Query | None = None
        self._pending_windows: dict[tuple[float, float], dict[str, WindowResult]] = {}

    # -- query submission -------------------------------------------------------

    def submit_query(
        self,
        analyst: Analyst,
        query: Query,
        budget: QueryBudget,
        parameters: ExecutionParameters,
    ) -> dict[str, ExecutionParameters]:
        """Submit the same query to every stratum.

        A stratum whose spec pins a sampling fraction gets that fraction
        (proportional or optimal allocation decided by the caller); the other
        strata share ``parameters``.
        """
        self._query = query
        applied: dict[str, ExecutionParameters] = {}
        for spec in self.strata:
            params = parameters
            if spec.sampling_fraction is not None:
                params = parameters.with_sampling_fraction(spec.sampling_fraction)
            self.systems[spec.name].submit_query(analyst, query, budget, parameters=params)
            applied[spec.name] = params
        return applied

    # -- execution ----------------------------------------------------------------

    def run_epoch(self, epoch: int) -> list[StratifiedWindowResult]:
        """Run one epoch in every stratum and combine any completed windows."""
        self._require_query()
        per_stratum_results: dict[str, list[WindowResult]] = {}
        for spec in self.strata:
            report = self.systems[spec.name].run_epoch(self._query.query_id, epoch)
            per_stratum_results[spec.name] = list(report.window_results)
        return self._combine(per_stratum_results)

    def flush(self) -> list[StratifiedWindowResult]:
        """Flush pending windows in every stratum and combine them."""
        self._require_query()
        per_stratum_results = {
            spec.name: self.systems[spec.name].flush(self._query.query_id)
            for spec in self.strata
        }
        return self._combine(per_stratum_results)

    def exact_bucket_counts(self) -> list[int]:
        """Ground-truth population histogram across all strata (evaluation only)."""
        self._require_query()
        totals: list[int] | None = None
        for spec in self.strata:
            counts = self.systems[spec.name].exact_bucket_counts(self._query.query_id)
            if totals is None:
                totals = list(counts)
            else:
                totals = [a + b for a, b in zip(totals, counts)]
        return totals or []

    def total_clients(self) -> int:
        return sum(spec.num_clients for spec in self.strata)

    # -- internals ---------------------------------------------------------------

    def _require_query(self) -> None:
        if self._query is None:
            raise RuntimeError("submit_query() must be called before running epochs")

    def _combine(
        self, per_stratum_results: dict[str, list[WindowResult]]
    ) -> list[StratifiedWindowResult]:
        # Group per-stratum window results by their window boundaries; a
        # combined result is emitted once every stratum has reported that
        # window, and incomplete windows stay buffered until then.
        for stratum, results in per_stratum_results.items():
            for result in results:
                key = (result.window.start, result.window.end)
                self._pending_windows.setdefault(key, {})[stratum] = result
        combined: list[StratifiedWindowResult] = []
        for window_key in sorted(self._pending_windows):
            stratum_results = self._pending_windows[window_key]
            if len(stratum_results) != len(self.strata):
                continue
            histogram = combine_stratum_histograms(
                [r.histogram for r in stratum_results.values()], window=window_key
            )
            combined.append(
                StratifiedWindowResult(
                    window=window_key, histogram=histogram, per_stratum=stratum_results
                )
            )
        for result in combined:
            del self._pending_windows[result.window]
        return combined
