"""Deterministic per-query seed derivation, shared across components.

Several components need an independent random stream *per query* that is
still reproducible from one deployment seed: the client's per-query
sampling/randomization RNGs and encryption keystreams, and the system's
per-query error-calibration estimators.  They must all use the same mixing
formula so the derivation is defined in exactly one place.
"""

from __future__ import annotations

import zlib

# A prime multiplier spreads consecutive base seeds apart before the query
# hash is mixed in (the same constant the system uses to derive per-client
# seeds from the deployment seed).
_SEED_STRIDE = 1_000_003


def derive_query_seed(seed: int, query_id: str) -> int:
    """An integer seed unique to (base seed, query id), deterministically.

    Mixes the base seed with a CRC of the query id, so two queries on the
    same client (or two clients on the same query) get unrelated streams
    while a fixed deployment seed reproduces every stream exactly.
    """
    return seed * _SEED_STRIDE + zlib.crc32(query_id.encode("utf-8"))


def derive_query_seed_bytes(seed: int, query_id: str) -> bytes:
    """The :func:`derive_query_seed` value as bytes (keystream seeding).

    16 bytes: the derived value can exceed 64 bits for large base seeds
    (the system multiplies twice by ``_SEED_STRIDE`` on the way to a
    client's query seed).
    """
    return derive_query_seed(seed, query_id).to_bytes(16, "big", signed=True)
