"""The PrivApprox client: local data, sampling, query answering, encryption.

Each client stores its user's private data in a local database and subscribes
to queries.  In every answering epoch a client (Section 3.2):

1. flips the sampling coin (Step I) — non-participants send nothing;
2. executes the analyst's SQL against its local database and buckets the
   resulting value into the n-bit truthful answer vector;
3. randomizes the vector with the two-coin randomized response (Step II);
4. encodes ``<QID, randomized answer>`` and splits it into XOR shares, one per
   proxy (Step III).

The client never transmits its truthful answer: only the randomized,
encrypted shares leave the device.
"""

from __future__ import annotations

import hashlib
import random
import struct
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.admission import participation_token
from repro.core.budget import ExecutionParameters
from repro.core.encryption import AnswerCodec, EncryptedAnswer
from repro.core.query import Query, QueryAnswer
from repro.core.randomized_response import RandomizedResponder
from repro.core.sampling import SimpleRandomSampler
from repro.core.seeding import derive_query_seed, derive_query_seed_bytes
from repro.crypto.prng import KeystreamGenerator, secure_random_bytes
from repro.sqldb import Database


@dataclass(frozen=True)
class ClientConfig:
    """Static configuration of one client device."""

    client_id: str
    num_proxies: int = 2
    table_name: str = "private_data"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.num_proxies < 2:
            raise ValueError("PrivApprox requires at least two proxies")


@dataclass(frozen=True)
class ClientResponse:
    """What a participating client produces for one epoch.

    ``encrypted`` carries the shares to transmit.  ``truthful_bits`` is kept
    *only* for evaluation purposes (computing exact baselines in experiments);
    it is never placed on the wire by :class:`~repro.core.system.PrivApproxSystem`.
    """

    client_id: str
    query_id: str
    epoch: int
    encrypted: EncryptedAnswer
    truthful_bits: tuple
    randomized_bits: tuple


def _pack_rng_state(state: tuple) -> tuple:
    """Pack a ``random.Random`` state's word tuple into raw bytes.

    The Mersenne Twister state is 625 machine words; pickled as a tuple of
    Python ints it dominates a client snapshot (~3.8 KB of ~4.7 KB) and costs
    625 object allocations to unpickle.  Packed with :mod:`struct` it is a
    single 2.5 KB bytes blob that copies across the wire untouched.
    """
    version, internal, gauss_next = state
    return (version, struct.pack(f"<{len(internal)}I", *internal), gauss_next)


def _unpack_rng_state(packed: tuple) -> tuple:
    """Invert :func:`_pack_rng_state` back into ``random.Random.setstate`` form."""
    version, blob, gauss_next = packed
    return (version, struct.unpack(f"<{len(blob) // 4}I", blob), gauss_next)


class Client:
    """A client device participating in PrivApprox."""

    def __init__(self, config: ClientConfig):
        self.config = config
        self.database = Database(name=f"client-{config.client_id}")
        self._keystream = KeystreamGenerator(
            seed=None if config.seed is None else config.seed.to_bytes(8, "big", signed=True)
        )
        self._codec = AnswerCodec()
        self._subscriptions: dict[str, tuple[Query, ExecutionParameters]] = {}
        # One independent seeded RNG and encryption keystream per subscribed
        # query, created lazily on first answer.  Sharing a single RNG or
        # keystream between subscriptions would let a co-subscribed query
        # perturb another query's sampling, randomization or pad draws; with
        # per-query streams a query's responses — encrypted shares included —
        # are byte-identical whether or not other queries ride the same
        # epoch.  (self._keystream remains the client-level stream behind the
        # token secret.)
        self._rngs: dict[str, random.Random] = {}
        self._keystreams: dict[str, KeystreamGenerator] = {}
        # Sampler/responder pairs cached per (query, parameter set): both only
        # hold the (p, q, s) constants plus a reference to that query's RNG,
        # so reuse across epochs draws exactly the same random sequence as
        # fresh instances while avoiding two allocations per answer.
        self._mechanisms: dict[
            tuple[str, ExecutionParameters],
            tuple[SimpleRandomSampler, RandomizedResponder],
        ] = {}
        # Local secret behind the anonymous per-epoch participation tokens;
        # it never leaves the device.
        if config.seed is None:
            self._token_secret = secure_random_bytes(32)
        else:
            self._token_secret = self._keystream.next_bytes(32)

    # -- state snapshot (process-pool runtime) --------------------------------

    def export_state(self) -> dict:
        """Capture everything another process needs to *be* this client.

        The snapshot is a plain picklable dict: the static config, the
        mid-stream RNG and keystream states, the token secret, the local
        tables (schema plus raw rows) and the active subscriptions.  A client
        rebuilt with :meth:`from_state` continues the exact random sequences
        of the original, which is what keeps the process-pool epoch runtime
        byte-identical to the serial reference (``repro.runtime.wire`` frames
        these snapshots into shard tasks).

        Columnar mirrors and secondary indexes are deliberately *not*
        shipped: they are derived state, lazily rebuilt from raw rows on the
        restored side and incrementally maintained from then on — and the
        differential suite asserts the rebuilt and incrementally-maintained
        lifecycles answer identically.
        """
        tables = []
        for name in self.database.table_names():
            table = self.database.table(name)
            tables.append(
                (
                    name,
                    tuple((column.name, column.sql_type) for column in table.columns),
                    tuple(table.rows),
                )
            )
        return {
            "config": self.config,
            "rng_states": {
                query_id: _pack_rng_state(rng.getstate())
                for query_id, rng in self._rngs.items()
            },
            "query_keystream_states": {
                query_id: keystream.getstate()
                for query_id, keystream in self._keystreams.items()
            },
            "keystream_state": self._keystream.getstate(),
            "token_secret": self._token_secret,
            "tables": tables,
            "subscriptions": tuple(
                self._subscriptions[query_id] for query_id in self.subscribed_query_ids
            ),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Client":
        """Reconstruct a client from an :meth:`export_state` snapshot.

        The constructor seeds fresh RNG/keystream instances from the config;
        they are immediately overwritten with the captured mid-stream states,
        so the restored client's next draw equals the original's next draw.
        """
        client = cls(state["config"])
        for query_id, packed in state["rng_states"].items():
            client._rng_for(query_id).setstate(_unpack_rng_state(packed))
        for query_id, keystream_state in state["query_keystream_states"].items():
            client._keystream_for(query_id).setstate(keystream_state)
        client._keystream.setstate(state["keystream_state"])
        client._token_secret = state["token_secret"]
        for name, columns, rows in state["tables"]:
            client.database.create_table(name, list(columns))
            client.database.table(name).append_rows(rows)
        for query, parameters in state["subscriptions"]:
            client.subscribe(query, parameters)
        return client

    def adopt_rng_state(self, state: dict) -> None:
        """Graft a snapshot's RNG/keystream state onto this *live* client.

        The worker-resident runtime splits authority over a client in two:
        the parent stays authoritative for tables and subscriptions (it
        mutates them directly), the pinned worker for the advancing
        RNG/keystream streams.  Checkpoints and migrations reunite the two by
        grafting only the random-stream fields of the worker's exported
        snapshot onto the parent's live object — tables and subscriptions are
        deliberately left untouched, so parent-side mutations that postdate
        the export are never lost.
        """
        for query_id, packed in state["rng_states"].items():
            self._rng_for(query_id).setstate(_unpack_rng_state(packed))
        for query_id, keystream_state in state["query_keystream_states"].items():
            self._keystream_for(query_id).setstate(keystream_state)
        self._keystream.setstate(state["keystream_state"])

    def state_fingerprint(self) -> bytes:
        """A cheap digest of everything the answering path draws from.

        Covers the per-query RNG states, the per-query and client-level
        keystream states and the token secret — the exact fields a resident
        worker advances on the parent's behalf.  Two clients agree on the
        fingerprint iff their next draws agree, so a
        :class:`~repro.runtime.wire.ShardAck` can vouch for ~4 KB of state
        with 32 bytes.  Tables and subscriptions are excluded on purpose:
        they are parent-authoritative and shipped as deltas, not vouched for
        by the worker.
        """
        digest = hashlib.sha256()
        digest.update(self.config.client_id.encode("utf-8"))
        digest.update(self._token_secret)
        for query_id in sorted(self._rngs):
            version, blob, gauss_next = _pack_rng_state(self._rngs[query_id].getstate())
            digest.update(query_id.encode("utf-8"))
            digest.update(struct.pack(">I", version))
            digest.update(blob)
            digest.update(repr(gauss_next).encode("utf-8"))
        for query_id in sorted(self._keystreams):
            seed, counter, buffer = self._keystreams[query_id].getstate()
            digest.update(query_id.encode("utf-8"))
            digest.update(seed)
            digest.update(struct.pack(">Q", counter))
            digest.update(buffer)
        seed, counter, buffer = self._keystream.getstate()
        digest.update(seed)
        digest.update(struct.pack(">Q", counter))
        digest.update(buffer)
        return digest.digest()

    def apply_delta(self, delta) -> None:
        """Apply a parent-side :class:`~repro.runtime.wire.ClientDelta`.

        Subscription changes are upserts/removals; ``append_rows`` ingests
        new stream rows into local tables (creating a table from its shipped
        columns on first sight).  Applying the deltas the parent derived from
        its live client leaves a resident client's tables and subscriptions
        equal to the parent's — without re-shipping anything unchanged.
        """
        for query_id in delta.unsubscribe:
            self.unsubscribe(query_id)
        for query, parameters in delta.subscribe:
            self.subscribe(query, parameters)
        for table_name, columns, rows in delta.append_rows:
            if table_name not in self.database.table_names():
                self.database.create_table(table_name, list(columns))
            self.database.table(table_name).append_rows(rows)

    # -- local data management ------------------------------------------------

    def create_table(self, columns: list[tuple[str, str]], table_name: str | None = None) -> None:
        """Create the local private-data table."""
        self.database.create_table(table_name or self.config.table_name, columns)

    def ingest(self, records: list[dict[str, Any]], table_name: str | None = None) -> int:
        """Store private records locally (they never leave the device raw)."""
        return self.database.insert_rows(table_name or self.config.table_name, records)

    def local_row_count(self, table_name: str | None = None) -> int:
        return len(self.database.table(table_name or self.config.table_name))

    # -- query subscription -------------------------------------------------------

    def subscribe(self, query: Query, parameters: ExecutionParameters) -> None:
        """Subscribe to a query distributed by the aggregator via the proxies."""
        self._subscriptions[query.query_id] = (query, parameters)

    def unsubscribe(self, query_id: str) -> None:
        self._subscriptions.pop(query_id, None)

    def is_subscribed(self, query_id: str) -> bool:
        """Whether this client currently holds the query.

        An unsubscribed client is indistinguishable from an absent device —
        it answers nothing and draws nothing — which is what lets the
        scenario layer model churn as subscription churn over a fixed
        client universe.
        """
        return query_id in self._subscriptions

    @property
    def subscribed_query_ids(self) -> list[str]:
        return sorted(self._subscriptions)

    @property
    def subscriptions(self) -> dict[str, tuple]:
        """A copy of the active subscriptions: query id → (query, parameters).

        The resident-state runtime diffs this against its recorded baseline
        to derive per-epoch :class:`~repro.runtime.wire.ClientDelta` frames.
        """
        return dict(self._subscriptions)

    # -- query answering -----------------------------------------------------------

    def query_sql(self, query_id: str) -> str | None:
        """The SQL text of a subscribed query, or ``None`` if unknown.

        Lets the shard-wide arena answer path discover which statements an
        epoch will run without touching subscription internals.
        """
        subscription = self._subscriptions.get(query_id)
        return None if subscription is None else subscription[0].sql

    def answer(
        self,
        query_ids: Sequence[str],
        epoch: int = 0,
        scan_cache: dict[str, Any] | None = None,
    ) -> list[ClientResponse | None]:
        """Run one answering epoch for many subscribed queries in one pass.

        Returns one entry per query id, ``None`` where the query's sampling
        coin said not to participate (or the query is unknown).  The local
        table scan is shared: queries with the same SQL reuse a single
        database pass, which is what makes a multi-query epoch cheaper than
        answering each query in its own full pass.  Randomness stays
        per-query (each query id owns its seeded RNG *and* encryption
        keystream), so the responses — encrypted shares included — are
        byte-identical to answering each query alone.

        ``scan_cache`` may be pre-seeded by the shard-wide arena path with
        this client's per-SQL outcome (a result set, or the exception its
        own evaluation would raise); entries are consumed only for queries
        whose sampling coin says participate, exactly as a local pass
        would be.
        """
        if scan_cache is None:
            scan_cache = {}
        return [
            self.answer_query(query_id, epoch=epoch, scan_cache=scan_cache)
            for query_id in query_ids
        ]

    def answer_query(
        self,
        query_id: str,
        epoch: int = 0,
        *,
        scan_cache: dict[str, Any] | None = None,
    ) -> ClientResponse | None:
        """Run one answering epoch for a subscribed query.

        Returns ``None`` when the sampling coin says not to participate (or
        when the query is unknown), otherwise the encrypted response.
        ``scan_cache`` (SQL text → result set) lets a multi-query epoch share
        one table scan across co-subscribed queries; see :meth:`answer`.
        """
        if query_id not in self._subscriptions:
            return None
        query, parameters = self._subscriptions[query_id]

        sampler, responder = self._mechanisms_for(query_id, parameters)
        if not sampler.should_participate():
            return None

        truthful_bits = self._execute_query_locally(query, scan_cache)
        randomized_bits = responder.randomize_vector(truthful_bits)

        answer = QueryAnswer(
            query_id=query.query_id,
            bits=tuple(randomized_bits),
            epoch=epoch,
            token=participation_token(self._token_secret, query.query_id, epoch),
        )
        encrypted = self._codec.encrypt(
            answer,
            num_proxies=self.config.num_proxies,
            keystream=self._keystream_for(query_id),
        )
        return ClientResponse(
            client_id=self.config.client_id,
            query_id=query.query_id,
            epoch=epoch,
            encrypted=encrypted,
            truthful_bits=tuple(truthful_bits),
            randomized_bits=tuple(randomized_bits),
        )

    def _rng_for(self, query_id: str) -> random.Random:
        """The query's own RNG stream, derived from the client seed.

        The derivation (:func:`~repro.core.seeding.derive_query_seed`) is the
        same one :mod:`repro.core.system` uses to seed per-query error
        estimators: base seed mixed with a CRC of the query id.  An unseeded
        client gets an independent fresh-entropy stream per query.
        """
        rng = self._rngs.get(query_id)
        if rng is None:
            if self.config.seed is None:
                rng = random.Random()
            else:
                rng = random.Random(derive_query_seed(self.config.seed, query_id))
            self._rngs[query_id] = rng
        return rng

    def _keystream_for(self, query_id: str) -> KeystreamGenerator:
        """The query's own encryption keystream, derived like :meth:`_rng_for`.

        A shared keystream would let one query's encryption shift a
        co-subscribed query's pad bytes; per-query keystreams keep even the
        encrypted shares byte-identical with and without co-subscription.
        """
        keystream = self._keystreams.get(query_id)
        if keystream is None:
            if self.config.seed is None:
                keystream = KeystreamGenerator(seed=None)
            else:
                keystream = KeystreamGenerator(
                    seed=derive_query_seed_bytes(self.config.seed, query_id)
                )
            self._keystreams[query_id] = keystream
        return keystream

    def _mechanisms_for(
        self, query_id: str, parameters: ExecutionParameters
    ) -> tuple[SimpleRandomSampler, RandomizedResponder]:
        cached = self._mechanisms.get((query_id, parameters))
        if cached is None:
            rng = self._rng_for(query_id)
            cached = (
                SimpleRandomSampler(parameters.sampling_fraction, rng=rng),
                RandomizedResponder(p=parameters.p, q=parameters.q, rng=rng),
            )
            self._mechanisms[(query_id, parameters)] = cached
        return cached

    def truthful_answer(self, query_id: str) -> list[int]:
        """The truthful (pre-randomization) answer vector.

        Used only by experiments to compute the exact baseline; a deployment
        would never expose this outside the device.
        """
        if query_id not in self._subscriptions:
            raise KeyError(f"client is not subscribed to query {query_id}")
        query, _ = self._subscriptions[query_id]
        return self._execute_query_locally(query)

    def _execute_query_locally(
        self, query: Query, scan_cache: dict[str, Any] | None = None
    ) -> list[int]:
        """Run the analyst's SQL on the local database and bucket the result.

        The client answers with the most recent matching row (the paper's
        examples — current driving speed, last ride distance, current power
        draw — are all "latest value" readings).  A client with no matching
        rows answers all-zeros, which still gets randomized so non-matching
        clients are indistinguishable from matching ones.  ``scan_cache``
        (keyed by SQL text) deduplicates the database pass when several
        co-subscribed queries in a multi-query epoch run the same statement.
        """
        if scan_cache is not None and query.sql in scan_cache:
            result = scan_cache[query.sql]
            if isinstance(result, BaseException):
                # Arena-precomputed outcome parity: raise exactly what this
                # client's own evaluation would have raised.
                raise result
        else:
            result = self.database.query(query.sql)
            if scan_cache is not None:
                scan_cache[query.sql] = result
        value = None
        if len(result) > 0:
            column = query.answer_spec.value_column
            row = result.rows[-1]
            if column is not None and column in result.columns:
                value = row[result.columns.index(column)]
            else:
                value = row[0]
        return query.encode_value(value)
