"""Step I: sampling at clients (Section 3.2.1).

PrivApprox applies Simple Random Sampling (SRS) *at the data source*: the
aggregator converts the analyst's budget into a sampling parameter ``s`` and
each client flips a coin with success probability ``s`` to decide whether it
participates in the current epoch.  The aggregate over the ``U'`` participants
is scaled back to the population of ``U`` clients:

    tau_hat = (U / U') * sum_{i=1..U'} a_i  +/-  error            (Eq. 2)
    error   = t * sqrt(Var_hat(tau_hat))                          (Eq. 3)
    Var_hat(tau_hat) = (U^2 / U') * sigma^2 * (U - U') / U        (Eq. 4)

where ``sigma^2`` is the sample variance of the answers and ``t`` the
t-distribution quantile at the requested confidence level.

The module also implements the stratified-sampling extension sketched in the
technical report: clients are grouped into strata with potentially different
answer distributions, each stratum is sampled independently, and the stratum
estimates are summed (with their variances added) to form the population
estimate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence

from scipy import stats


@dataclass(frozen=True)
class SamplingEstimate:
    """An estimated population sum with its sampling error bound."""

    estimate: float
    error_bound: float
    population_size: int
    sample_size: int
    confidence_level: float = 0.95

    @property
    def lower(self) -> float:
        return self.estimate - self.error_bound

    @property
    def upper(self) -> float:
        return self.estimate + self.error_bound

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def sampling_fraction(self) -> float:
        if self.population_size == 0:
            return 0.0
        return self.sample_size / self.population_size


def sample_variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (n-1 denominator); zero for fewer than 2 values."""
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    return sum((v - mean) ** 2 for v in values) / (n - 1)


def t_critical(sample_size: int, confidence_level: float = 0.95) -> float:
    """t-distribution critical value with ``sample_size - 1`` degrees of freedom."""
    if not 0 < confidence_level < 1:
        raise ValueError("confidence level must be in (0, 1)")
    if sample_size < 2:
        # With fewer than two observations the t quantile is undefined; the
        # error bound is effectively unbounded, which we cap for usability.
        return float("inf")
    alpha = 1.0 - confidence_level
    return float(stats.t.ppf(1.0 - alpha / 2.0, df=sample_size - 1))


def estimate_sum(
    sampled_values: Sequence[float],
    population_size: int,
    confidence_level: float = 0.95,
) -> SamplingEstimate:
    """Estimate a population sum from a simple random sample (Eqs. 2-4)."""
    sample_size = len(sampled_values)
    if population_size < sample_size:
        raise ValueError(
            f"population ({population_size}) cannot be smaller than the sample ({sample_size})"
        )
    if sample_size == 0:
        return SamplingEstimate(
            estimate=0.0,
            error_bound=float("inf") if population_size > 0 else 0.0,
            population_size=population_size,
            sample_size=0,
            confidence_level=confidence_level,
        )
    scale = population_size / sample_size
    estimate = scale * sum(sampled_values)
    sigma_squared = sample_variance(sampled_values)
    variance = (
        (population_size ** 2 / sample_size)
        * sigma_squared
        * ((population_size - sample_size) / population_size)
    )
    t_value = t_critical(sample_size, confidence_level)
    error = t_value * math.sqrt(variance) if math.isfinite(t_value) else float("inf")
    if sample_size == population_size:
        error = 0.0
    return SamplingEstimate(
        estimate=estimate,
        error_bound=error,
        population_size=population_size,
        sample_size=sample_size,
        confidence_level=confidence_level,
    )


@dataclass
class SimpleRandomSampler:
    """Client-side participation coin flip with probability ``s``.

    Each client holds one sampler (or shares one seeded instance in tests);
    :meth:`should_participate` is the coin flip from Section 3.2.1 and
    :meth:`select` draws a whole sample from an indexed population at once,
    which the analytical benchmarks use.
    """

    sampling_fraction: float
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if not 0.0 <= self.sampling_fraction <= 1.0:
            raise ValueError("sampling fraction must lie in [0, 1]")

    def should_participate(self) -> bool:
        """One coin flip: True with probability ``s``."""
        if self.sampling_fraction >= 1.0:
            return True
        if self.sampling_fraction <= 0.0:
            return False
        return self.rng.random() < self.sampling_fraction

    def select(self, population: Sequence) -> list:
        """Independently include each member of ``population`` with probability ``s``."""
        return [item for item in population if self.should_participate()]

    def expected_sample_size(self, population_size: int) -> float:
        return population_size * self.sampling_fraction


@dataclass(frozen=True)
class StratumEstimate:
    """Per-stratum estimate used by the stratified sampler."""

    name: str
    estimate: float
    variance: float
    population_size: int
    sample_size: int


@dataclass
class StratifiedSampler:
    """Stratified sampling over clients with differing answer distributions.

    The technical-report extension splits the client population into strata
    (e.g. by region or device class), samples each stratum independently —
    either with a shared fraction or proportional allocation — and combines
    the per-stratum sum estimates.  Variances add across strata, so the
    combined error bound is ``t * sqrt(sum of variances)``.
    """

    sampling_fraction: float
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if not 0.0 < self.sampling_fraction <= 1.0:
            raise ValueError("sampling fraction must lie in (0, 1]")

    def sample_stratum(self, name: str, values: Sequence[float]) -> StratumEstimate:
        """Sample one stratum and return its estimate and variance."""
        population_size = len(values)
        sampler = SimpleRandomSampler(self.sampling_fraction, rng=self.rng)
        sampled = sampler.select(values)
        if not sampled and population_size > 0:
            # Guarantee at least one observation so the stratum is represented.
            sampled = [values[self.rng.randrange(population_size)]]
        sample_size = len(sampled)
        if sample_size == 0:
            return StratumEstimate(name, 0.0, 0.0, 0, 0)
        scale = population_size / sample_size
        estimate = scale * sum(sampled)
        sigma_squared = sample_variance(sampled)
        variance = (
            (population_size ** 2 / sample_size)
            * sigma_squared
            * ((population_size - sample_size) / population_size)
        )
        return StratumEstimate(name, estimate, variance, population_size, sample_size)

    def estimate(
        self,
        strata: dict[str, Sequence[float]],
        confidence_level: float = 0.95,
    ) -> SamplingEstimate:
        """Combined population-sum estimate across all strata."""
        if not strata:
            raise ValueError("at least one stratum is required")
        stratum_estimates = [
            self.sample_stratum(name, values) for name, values in strata.items()
        ]
        total_estimate = sum(se.estimate for se in stratum_estimates)
        total_variance = sum(se.variance for se in stratum_estimates)
        total_sample = sum(se.sample_size for se in stratum_estimates)
        total_population = sum(se.population_size for se in stratum_estimates)
        t_value = t_critical(max(total_sample, 2), confidence_level)
        error = t_value * math.sqrt(total_variance)
        return SamplingEstimate(
            estimate=total_estimate,
            error_bound=error,
            population_size=total_population,
            sample_size=total_sample,
            confidence_level=confidence_level,
        )


def minimum_sample_size_for_normality() -> int:
    """Sample size above which the CLT normal approximation is considered valid.

    Section 3.2.4 uses the conventional threshold of 30 observations.
    """
    return 30
