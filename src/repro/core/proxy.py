"""Proxies: anonymizing relays between clients and the aggregator.

Proxies receive either the encrypted answer share or one of the key shares —
they cannot tell which — tagged with the message identifier ``MID``, and
forward them to the aggregator.  Because noise is added at the clients (not at
the proxies), proxies require no mutual synchronization: the entire per-share
work is "answer transmission" (Section 6, #VIII), which is why PrivApprox's
proxy latency is an order of magnitude below SplitX's.

Each :class:`Proxy` is backed by a topic on the in-memory pub/sub broker
(:mod:`repro.pubsub`), mirroring the Kafka deployment of the paper: one topic
for the encrypted answer stream and one per key stream.

Two relay granularities coexist:

* the classic per-proxy topic (``proxy-<i>``), written per share or per
  batched publish — used by the serial and sharded epoch runtimes;
* *shard-aware* topics (``proxy-<i>-shard-<s>``), one per client shard, each
  carrying one *batch record* per transmission (the record's value is the
  whole shard's share column) — used by the pipelined epoch runtime so a
  completed shard can be relayed and ingested while other shards are still
  answering, without per-share partition routing or record framing.

Both granularities additionally support a per-query *channel*: passing
``channel="<query id>"`` scopes the relay to ``proxy-<i>-q-<channel>`` (or
``proxy-<i>-q-<channel>-shard-<s>``), so a multi-query epoch keeps each
query's share stream on its own topics and every aggregator only ever polls
its own query's records — no cross-query reads, no post-decrypt filtering.
``channel=None`` keeps the legacy shared topics of the single-query paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.xor import MessageShare
from repro.netsim.cluster import ClusterTier
from repro.pubsub import BrokerCluster, Consumer, Producer


@dataclass
class Proxy:
    """A single proxy: a relay topic plus accounting counters."""

    proxy_id: int
    cluster: BrokerCluster
    topic_name: str = ""
    num_partitions: int = 4

    def __post_init__(self) -> None:
        if not self.topic_name:
            self.topic_name = f"proxy-{self.proxy_id}"
        self.cluster.ensure_topic(self.topic_name, self.num_partitions)
        self._producer = Producer(self.cluster, client_id=f"proxy-{self.proxy_id}-in")
        self.shares_relayed = 0
        self.bytes_relayed = 0

    def channel_topic_name(self, channel: str | None) -> str:
        """The relay topic for one query channel (the shared topic for None)."""
        if channel is None:
            return self.topic_name
        return f"{self.topic_name}-q-{channel}"

    def _channel_topic(self, channel: str | None) -> str:
        """Resolve (and lazily create) the relay topic for a channel."""
        name = self.channel_topic_name(channel)
        if channel is not None:
            self.cluster.ensure_topic(name, self.num_partitions)
        return name

    def receive_share(self, share: MessageShare, channel: str | None = None) -> None:
        """Accept one share from a client and publish it for the aggregator."""
        self._producer.send(self._channel_topic(channel), value=share, key=share.message_id)
        self.shares_relayed += 1
        self.bytes_relayed += share.size_bytes()

    def receive_batch(
        self, shares: list[MessageShare], channel: str | None = None
    ) -> None:
        """Accept one share from each of many clients in a single publish.

        Same relay semantics and accounting as per-share :meth:`receive_share`
        but amortized over the batch — used by the sharded epoch runtime.
        """
        if not shares:
            return
        self._producer.send_many(
            self._channel_topic(channel),
            shares,
            keys=[share.message_id for share in shares],
        )
        self.shares_relayed += len(shares)
        self.bytes_relayed += sum(share.size_bytes() for share in shares)

    # -- shard-aware relay (pipelined runtime) ------------------------------

    def shard_topic_name(self, slot: int, channel: str | None = None) -> str:
        """Name of the shard-aware relay topic for one shard slot."""
        return f"{self.channel_topic_name(channel)}-shard-{slot}"

    def ensure_shard_topics(
        self, num_slots: int, channel: str | None = None
    ) -> list[str]:
        """Create the shard-aware relay topics (one single-partition topic each).

        Idempotent: existing topics are kept, so executors can call this every
        epoch (or per query) without disturbing consumer offsets.
        """
        if num_slots < 1:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        names = []
        for slot in range(num_slots):
            name = self.shard_topic_name(slot, channel)
            self.cluster.ensure_topic(name, num_partitions=1)
            names.append(name)
        return names

    def receive_shard_batch(
        self, slot: int, shares: list[MessageShare], channel: str | None = None
    ) -> None:
        """Relay one shard's worth of shares as a single batch record.

        The record's value is the tuple of shares, so the broker handles one
        append per shard instead of one per client; the relay accounting still
        counts every individual share so proxy throughput numbers stay
        comparable with the per-share paths.
        """
        if not shares:
            return
        self._producer.send(self.shard_topic_name(slot, channel), value=tuple(shares))
        self.shares_relayed += len(shares)
        self.bytes_relayed += sum(share.size_bytes() for share in shares)

    def make_shard_consumer(
        self, slot: int, group_id: str = "aggregator", channel: str | None = None
    ) -> Consumer:
        """Create a consumer over one shard slot's relay topic.

        The topic must exist (see :meth:`ensure_shard_topics`).
        """
        consumer = Consumer(
            self.cluster,
            group_id=group_id,
            consumer_id=f"{group_id}-{self.proxy_id}-shard-{slot}",
        )
        consumer.subscribe([self.shard_topic_name(slot, channel)])
        return consumer

    def make_consumer(
        self, group_id: str = "aggregator", channel: str | None = None
    ) -> Consumer:
        """Create a consumer the aggregator uses to pull this proxy's stream."""
        consumer = Consumer(
            self.cluster, group_id=group_id, consumer_id=f"{group_id}-{self.proxy_id}"
        )
        consumer.subscribe([self._channel_topic(channel)])
        return consumer

    def pending_shares(self) -> int:
        """Number of shares currently stored in the relay topic."""
        return self.cluster.topic(self.topic_name).total_records()

    def reset_metrics(self) -> None:
        self.shares_relayed = 0
        self.bytes_relayed = 0


@dataclass
class ProxyNetwork:
    """The set of non-colluding proxies a deployment uses (at least two).

    The network fans a client's shares out so that share ``i`` goes to proxy
    ``i``; it also owns the throughput model used by the scalability and
    latency experiments (Figures 5b, 6 and 8).
    """

    num_proxies: int = 2
    cluster: BrokerCluster = field(default_factory=lambda: BrokerCluster(num_brokers=2))
    tier_model: ClusterTier = field(default_factory=lambda: ClusterTier.proxy_tier(num_nodes=4))

    def __post_init__(self) -> None:
        if self.num_proxies < 2:
            raise ValueError("PrivApprox requires at least two proxies")
        self.proxies = [Proxy(proxy_id=i, cluster=self.cluster) for i in range(self.num_proxies)]

    def transmit(self, shares: list[MessageShare], channel: str | None = None) -> None:
        """Send each share of one encrypted answer to its proxy.

        ``channel`` scopes the relay to a query's own topics (multi-query
        epochs); ``None`` uses the shared per-proxy topic.
        """
        if len(shares) != self.num_proxies:
            raise ValueError(
                f"expected {self.num_proxies} shares (one per proxy), got {len(shares)}"
            )
        for proxy, share in zip(self.proxies, shares):
            proxy.receive_share(share, channel=channel)

    def transmit_batch(
        self, share_rows: list[list[MessageShare]], channel: str | None = None
    ) -> None:
        """Send the shares of many encrypted answers, batched per proxy.

        ``share_rows`` holds one row per answer (``num_proxies`` shares each);
        the rows are transposed into one column per proxy so every proxy
        receives its whole shard's worth of shares in a single publish.  The
        relayed stream is record-for-record identical to calling
        :meth:`transmit` once per row.
        """
        if not share_rows:
            return
        for row in share_rows:
            if len(row) != self.num_proxies:
                raise ValueError(
                    f"expected {self.num_proxies} shares (one per proxy), got {len(row)}"
                )
        for index, proxy in enumerate(self.proxies):
            proxy.receive_batch([row[index] for row in share_rows], channel=channel)

    # -- shard-aware relay (pipelined runtime) ------------------------------

    def ensure_shard_topics(self, num_slots: int, channel: str | None = None) -> None:
        """Create the shard-aware relay topics on every proxy (idempotent)."""
        for proxy in self.proxies:
            proxy.ensure_shard_topics(num_slots, channel=channel)

    def transmit_shard(
        self,
        slot: int,
        share_rows: list[list[MessageShare]],
        channel: str | None = None,
    ) -> None:
        """Send many answers' shares as one batch record per proxy.

        Like :meth:`transmit_batch` the rows (one per answer) are transposed
        into one column per proxy, but each column lands on the proxy's
        shard-aware topic for ``slot`` as a *single* record whose value is the
        whole column — the pipelined runtime's relay granularity.  The share
        multiset reaching the aggregator is identical to per-share
        :meth:`transmit` calls.
        """
        if not share_rows:
            return
        for row in share_rows:
            if len(row) != self.num_proxies:
                raise ValueError(
                    f"expected {self.num_proxies} shares (one per proxy), got {len(row)}"
                )
        for index, proxy in enumerate(self.proxies):
            proxy.receive_shard_batch(
                slot, [row[index] for row in share_rows], channel=channel
            )

    def make_shard_consumers(
        self, group_id: str, num_slots: int, channel: str | None = None
    ) -> list[list[Consumer]]:
        """Consumers over the shard-aware topics: ``result[slot][proxy]``.

        Creates the topics first so consumers can subscribe immediately.
        """
        self.ensure_shard_topics(num_slots, channel=channel)
        return [
            [
                proxy.make_shard_consumer(slot, group_id, channel=channel)
                for proxy in self.proxies
            ]
            for slot in range(num_slots)
        ]

    def total_shares_relayed(self) -> int:
        return sum(proxy.shares_relayed for proxy in self.proxies)

    def total_bytes_relayed(self) -> int:
        return sum(proxy.bytes_relayed for proxy in self.proxies)

    def make_consumers(
        self, group_id: str = "aggregator", channel: str | None = None
    ) -> list:
        """One consumer per proxy stream, for the aggregator."""
        return [proxy.make_consumer(group_id, channel=channel) for proxy in self.proxies]

    # -- performance model ------------------------------------------------------

    def modelled_throughput(self, message_size_bytes: int) -> float:
        """Relay throughput (shares/sec) predicted by the tier model."""
        return self.tier_model.throughput(message_size_bytes).throughput_msgs_per_sec

    def modelled_latency(self, num_shares: int, message_size_bytes: int) -> float:
        """Seconds to relay ``num_shares`` shares of a given size.

        PrivApprox proxies only transmit; there is no noise addition,
        intersection or shuffling phase (contrast with the SplitX model in
        :mod:`repro.baselines.splitx`).
        """
        return self.tier_model.processing_latency(num_shares, message_size_bytes)
