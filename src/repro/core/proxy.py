"""Proxies: anonymizing relays between clients and the aggregator.

Proxies receive either the encrypted answer share or one of the key shares —
they cannot tell which — tagged with the message identifier ``MID``, and
forward them to the aggregator.  Because noise is added at the clients (not at
the proxies), proxies require no mutual synchronization: the entire per-share
work is "answer transmission" (Section 6, #VIII), which is why PrivApprox's
proxy latency is an order of magnitude below SplitX's.

Each :class:`Proxy` is backed by a topic on the in-memory pub/sub broker
(:mod:`repro.pubsub`), mirroring the Kafka deployment of the paper: one topic
for the encrypted answer stream and one per key stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.xor import MessageShare
from repro.netsim.cluster import ClusterTier
from repro.pubsub import BrokerCluster, Consumer, Producer


@dataclass
class Proxy:
    """A single proxy: a relay topic plus accounting counters."""

    proxy_id: int
    cluster: BrokerCluster
    topic_name: str = ""
    num_partitions: int = 4

    def __post_init__(self) -> None:
        if not self.topic_name:
            self.topic_name = f"proxy-{self.proxy_id}"
        self.cluster.ensure_topic(self.topic_name, self.num_partitions)
        self._producer = Producer(self.cluster, client_id=f"proxy-{self.proxy_id}-in")
        self.shares_relayed = 0
        self.bytes_relayed = 0

    def receive_share(self, share: MessageShare) -> None:
        """Accept one share from a client and publish it for the aggregator."""
        self._producer.send(self.topic_name, value=share, key=share.message_id)
        self.shares_relayed += 1
        self.bytes_relayed += share.size_bytes()

    def receive_batch(self, shares: list[MessageShare]) -> None:
        """Accept one share from each of many clients in a single publish.

        Same relay semantics and accounting as per-share :meth:`receive_share`
        but amortized over the batch — used by the sharded epoch runtime.
        """
        if not shares:
            return
        self._producer.send_many(
            self.topic_name, shares, keys=[share.message_id for share in shares]
        )
        self.shares_relayed += len(shares)
        self.bytes_relayed += sum(share.size_bytes() for share in shares)

    def make_consumer(self, group_id: str = "aggregator") -> Consumer:
        """Create a consumer the aggregator uses to pull this proxy's stream."""
        consumer = Consumer(self.cluster, group_id=group_id, consumer_id=f"{group_id}-{self.proxy_id}")
        consumer.subscribe([self.topic_name])
        return consumer

    def pending_shares(self) -> int:
        """Number of shares currently stored in the relay topic."""
        return self.cluster.topic(self.topic_name).total_records()

    def reset_metrics(self) -> None:
        self.shares_relayed = 0
        self.bytes_relayed = 0


@dataclass
class ProxyNetwork:
    """The set of non-colluding proxies a deployment uses (at least two).

    The network fans a client's shares out so that share ``i`` goes to proxy
    ``i``; it also owns the throughput model used by the scalability and
    latency experiments (Figures 5b, 6 and 8).
    """

    num_proxies: int = 2
    cluster: BrokerCluster = field(default_factory=lambda: BrokerCluster(num_brokers=2))
    tier_model: ClusterTier = field(default_factory=lambda: ClusterTier.proxy_tier(num_nodes=4))

    def __post_init__(self) -> None:
        if self.num_proxies < 2:
            raise ValueError("PrivApprox requires at least two proxies")
        self.proxies = [Proxy(proxy_id=i, cluster=self.cluster) for i in range(self.num_proxies)]

    def transmit(self, shares: list[MessageShare]) -> None:
        """Send each share of one encrypted answer to its proxy."""
        if len(shares) != self.num_proxies:
            raise ValueError(
                f"expected {self.num_proxies} shares (one per proxy), got {len(shares)}"
            )
        for proxy, share in zip(self.proxies, shares):
            proxy.receive_share(share)

    def transmit_batch(self, share_rows: list[list[MessageShare]]) -> None:
        """Send the shares of many encrypted answers, batched per proxy.

        ``share_rows`` holds one row per answer (``num_proxies`` shares each);
        the rows are transposed into one column per proxy so every proxy
        receives its whole shard's worth of shares in a single publish.  The
        relayed stream is record-for-record identical to calling
        :meth:`transmit` once per row.
        """
        if not share_rows:
            return
        for row in share_rows:
            if len(row) != self.num_proxies:
                raise ValueError(
                    f"expected {self.num_proxies} shares (one per proxy), got {len(row)}"
                )
        for index, proxy in enumerate(self.proxies):
            proxy.receive_batch([row[index] for row in share_rows])

    def total_shares_relayed(self) -> int:
        return sum(proxy.shares_relayed for proxy in self.proxies)

    def total_bytes_relayed(self) -> int:
        return sum(proxy.bytes_relayed for proxy in self.proxies)

    def make_consumers(self, group_id: str = "aggregator") -> list:
        """One consumer per proxy stream, for the aggregator."""
        return [proxy.make_consumer(group_id) for proxy in self.proxies]

    # -- performance model ------------------------------------------------------

    def modelled_throughput(self, message_size_bytes: int) -> float:
        """Relay throughput (shares/sec) predicted by the tier model."""
        return self.tier_model.throughput(message_size_bytes).throughput_msgs_per_sec

    def modelled_latency(self, num_shares: int, message_size_bytes: int) -> float:
        """Seconds to relay ``num_shares`` shares of a given size.

        PrivApprox proxies only transmit; there is no noise addition,
        intersection or shuffling phase (contrast with the SplitX model in
        :mod:`repro.baselines.splitx`).
        """
        return self.tier_model.processing_latency(num_shares, message_size_bytes)
