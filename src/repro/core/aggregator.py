"""Step IV: generating results at the aggregator (Section 3.2.4).

The aggregator consumes the share streams relayed by the proxies, joins the
shares of each message identifier ``MID``, XOR-decrypts them to recover the
randomized answers, and processes the answers as sliding windows: for every
window it inverts the randomization (Eq. 5), scales the per-window counts by
``U / U'`` to account for sampling (Eq. 2), estimates the error bound of each
bucket (Eq. 3 plus the empirical randomization error), and emits
``queryResult +/- errorBound`` per bucket.

The windowed dataflow is built on the streaming substrate: a keyed join
operator pairs shares by ``MID`` and a window-aggregate operator groups
decrypted answers into the query's sliding windows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.histogram import BucketEstimate, HistogramResult
from repro.core.admission import AnswerAdmissionController
from repro.core.budget import ExecutionParameters
from repro.core.encryption import AnswerCodec
from repro.core.estimation import ErrorEstimator
from repro.core.query import Query, QueryAnswer
from repro.core.randomized_response import estimate_true_yes
from repro.core.validation import AnswerValidator
from repro.crypto.xor import MessageShare, join_shares_batch
from repro.pubsub import Consumer
from repro.streaming.operators import KeyedJoinOperator, WindowAggregateOperator
from repro.streaming.records import StreamRecord
from repro.streaming.windows import SlidingWindowAssigner, Window


@dataclass(frozen=True)
class WindowResult:
    """The analyst-facing result for one sliding window."""

    window: Window
    histogram: HistogramResult
    num_answers: int
    population: int

    @property
    def sampling_fraction_observed(self) -> float:
        if self.population == 0:
            return 0.0
        return self.num_answers / self.population


@dataclass
class Aggregator:
    """Joins, decrypts, window-aggregates and error-estimates client answers.

    Parameters
    ----------
    query:
        The analyst's query (provides bucket labels, window length and slide).
    parameters:
        The execution parameters in force (``s, p, q``), needed to invert the
        randomization and to scale for sampling.
    total_clients:
        ``U`` — the number of clients subscribed to the query per epoch.
    confidence_level:
        Confidence level of the reported error bounds.
    """

    query: Query
    parameters: ExecutionParameters
    total_clients: int
    num_proxies: int = 2
    confidence_level: float = 0.95
    error_estimator: ErrorEstimator | None = None
    validator: AnswerValidator | None = None
    admission: AnswerAdmissionController | None = None
    allowed_lateness_seconds: float = 0.0
    # How many recent epochs of duplicate-suppression state to keep once an
    # epoch's ingest completes: the current epoch plus retention - 1 earlier
    # ones (stragglers admitted late must still collide with their epoch's
    # token set).  Without retirement the per-epoch token sets grow without
    # bound in a long-running stream; see finish_epoch.
    admission_retention_epochs: int = 2

    def __post_init__(self) -> None:
        if self.total_clients <= 0:
            raise ValueError("total_clients must be positive")
        if self.num_proxies < 2:
            raise ValueError("PrivApprox requires at least two proxies")
        if self.admission_retention_epochs < 1:
            raise ValueError("admission_retention_epochs must be at least 1")
        self._codec = AnswerCodec()
        if self.error_estimator is None:
            self.error_estimator = ErrorEstimator(
                p=self.parameters.p,
                q=self.parameters.q,
                confidence_level=self.confidence_level,
            )
        self._assigner = SlidingWindowAssigner(
            window_length=self.query.window_seconds,
            slide_interval=self.query.slide_seconds,
        )
        self._join = KeyedJoinOperator(expected_per_key=self._expected_shares())
        self._window_op = WindowAggregateOperator(
            assigner=self._assigner,
            aggregate_fn=self._aggregate_window,
            allowed_lateness=self.allowed_lateness_seconds,
        )
        self.answers_processed = 0
        self.shares_received = 0
        self.malformed_messages = 0
        self.invalid_answers = 0
        self.rejected_duplicates = 0

    def _expected_shares(self) -> int:
        # One encrypted share plus one key share per additional proxy.
        return max(2, self.num_proxies)

    # -- ingestion ----------------------------------------------------------

    def ingest_shares(
        self, shares: list[MessageShare], epoch: int, *, batched: bool = False
    ) -> list[WindowResult]:
        """Ingest a batch of shares belonging to one epoch.

        Returns the results of any windows that became complete (their end
        time passed the watermark) as a consequence of this batch.

        With ``batched=True`` the join runs in grouped mode: shares are
        bucketed by ``MID`` in one dictionary pass and complete groups skip
        the per-record join operator entirely (incomplete or cross-epoch
        groups still go through its keyed buffer), and validation/admission
        run through the batched loops (:meth:`AnswerValidator.validate_batch`,
        :meth:`AnswerAdmissionController.admit_batch`).  The decoded answers
        and all counters are identical to the per-record reference path; only
        the constant factor changes.  The sharded and pipelined epoch runtimes
        use this mode.
        """
        timestamp = self._epoch_timestamp(epoch)
        self.shares_received += len(shares)
        if batched:
            joined = self._join_grouped(shares, timestamp)
            candidates = self._decrypt_batch(joined)
        else:
            records = [
                StreamRecord(value=share, timestamp=timestamp, key=share.message_id)
                for share in shares
            ]
            joined = self._join.process(records)
            candidates = []
            for record in joined:
                try:
                    answer = self._decrypt(record.value)
                except ValueError:
                    # A malformed or maliciously crafted message: dropping it
                    # only loses that client's (invalid) answer and cannot
                    # poison the window (Section 2.2 threat model — malicious
                    # clients).
                    self.malformed_messages += 1
                    continue
                candidates.append((record, answer))
        if batched:
            verdicts = self._accept_batch([answer for _, answer in candidates], epoch)
            decoded = [
                record.with_value(answer)
                for (record, answer), ok in zip(candidates, verdicts)
                if ok
            ]
        else:
            decoded = [
                record.with_value(answer)
                for record, answer in candidates
                if self._accept(answer, epoch)
            ]
        self.answers_processed += len(decoded)
        emitted = self._window_op.process(decoded)
        return [self._to_window_result(record) for record in emitted]

    def consume_from_proxies(
        self, consumers: list[Consumer], epoch: int, *, batched: bool = False
    ) -> list[WindowResult]:
        """Poll the proxy streams and ingest every new share."""
        shares: list[MessageShare] = []
        for consumer in consumers:
            shares.extend(record.value for record in consumer.poll())
        return self.ingest_shares(shares, epoch, batched=batched)

    def finish_epoch(self, epoch: int) -> None:
        """Mark one epoch's ingest complete and retire stale admission state.

        Keeps the ``admission_retention_epochs`` most recent epochs' token
        sets and drops everything older, so ``admission.tracked_epochs()``
        stays bounded over an unbounded stream.  Idempotent and safe to call
        even when admission control is disabled.
        """
        if self.admission is None:
            return
        self.admission.forget_epochs_before(
            self.query.query_id, epoch - self.admission_retention_epochs + 1
        )

    def flush(self) -> list[WindowResult]:
        """Emit every pending window (end of stream / end of experiment)."""
        emitted = self._window_op.flush()
        return [self._to_window_result(record) for record in emitted]

    def pending_joins(self) -> int:
        """Messages still waiting for some of their shares."""
        return self._join.pending_keys()

    @property
    def late_answers_dropped(self) -> int:
        """Answers that arrived after their window (and grace period) had closed."""
        return self._window_op.late_records_dropped

    # -- internals -------------------------------------------------------------

    def _join_grouped(
        self, shares: list[MessageShare], timestamp: float
    ) -> list[StreamRecord]:
        """Group-by-``MID`` join over one ingest batch.

        A group that holds exactly the expected number of shares and has no
        shares buffered from earlier batches joins immediately without
        touching the keyed operator; everything else falls back to the
        operator so cross-epoch stragglers and malformed surpluses behave
        exactly as in the reference path.
        """
        groups: dict[str, list[MessageShare]] = {}
        for share in shares:
            groups.setdefault(share.message_id, []).append(share)
        expected = self._expected_shares()
        joined: list[StreamRecord] = []
        leftovers: list[StreamRecord] = []
        for message_id, group in groups.items():
            if len(group) == expected and not self._join.has_pending(message_id):
                joined.append(
                    StreamRecord(value=group, timestamp=timestamp, key=message_id)
                )
            else:
                leftovers.extend(
                    StreamRecord(value=share, timestamp=timestamp, key=message_id)
                    for share in group
                )
        if leftovers:
            joined.extend(self._join.process(leftovers))
        return joined

    def _epoch_timestamp(self, epoch: int) -> float:
        return epoch * self.query.frequency_seconds

    def _decrypt(self, shares: list[MessageShare]) -> QueryAnswer:
        return self._codec.decrypt(shares)

    def _decrypt_batch(self, joined: list[StreamRecord]) -> list[tuple]:
        """XOR-decrypt a whole ingest batch of joined share groups at once.

        The batched counterpart of the per-record :meth:`_decrypt` loop: all
        of a shard's share groups are XOR-ed in one
        :func:`~repro.crypto.xor.join_shares_batch` pass (within one epoch
        every answer to the query has the same encoded length, so the whole
        shard vectorizes into a single big-integer XOR per share position).
        Returns ``(record, answer)`` pairs in arrival order; malformed groups
        are dropped and counted exactly as on the reference path.
        """
        candidates = []
        plaintexts = join_shares_batch([record.value for record in joined])
        for record, plaintext in zip(joined, plaintexts):
            if plaintext is None:
                self.malformed_messages += 1
                continue
            try:
                answer = self._codec.decode(plaintext)
            except ValueError:
                self.malformed_messages += 1
                continue
            candidates.append((record, answer))
        return candidates

    def _accept(self, answer: QueryAnswer, arrival_epoch: int) -> bool:
        """Apply structural validation and duplicate admission control."""
        if self.validator is not None:
            if not self.validator.validate(answer, arrival_epoch).valid:
                self.invalid_answers += 1
                return False
        if self.admission is not None:
            decision = self.admission.admit(self.query.query_id, answer.epoch, answer.token)
            if not decision.admitted:
                self.rejected_duplicates += 1
                return False
        return True

    def _accept_batch(self, answers: list[QueryAnswer], arrival_epoch: int) -> list[bool]:
        """Batched validation + admission with per-answer decisions.

        Identical decisions and counters to calling :meth:`_accept` once per
        answer: every answer is validated first, and only the validation
        survivors reach the admission controller, in arrival order.
        """
        if not answers:
            return []
        if self.validator is not None:
            valid = self.validator.validate_batch(answers, arrival_epoch)
            self.invalid_answers += valid.count(False)
        else:
            valid = [True] * len(answers)
        if self.admission is None:
            return valid
        admitted = iter(
            self.admission.admit_batch(
                self.query.query_id,
                [(a.epoch, a.token) for a, ok in zip(answers, valid) if ok],
            )
        )
        verdicts = []
        for ok in valid:
            if not ok:
                verdicts.append(False)
                continue
            decision = next(admitted)
            if not decision:
                self.rejected_duplicates += 1
            verdicts.append(decision)
        return verdicts

    def _aggregate_window(self, answers: list[QueryAnswer]) -> dict:
        """Window aggregation function handed to the streaming operator."""
        num_buckets = self.query.num_buckets
        counts = [0] * num_buckets
        epochs = set()
        for answer in answers:
            epochs.add(answer.epoch)
            for index, bit in enumerate(answer.bits[:num_buckets]):
                counts[index] += bit
        return {
            "counts": counts,
            "num_answers": len(answers),
            "num_epochs": max(1, len(epochs)),
        }

    def _to_window_result(self, record: StreamRecord) -> WindowResult:
        window, aggregate = record.value
        counts = aggregate["counts"]
        num_answers = aggregate["num_answers"]
        population = self.total_clients * aggregate["num_epochs"]
        histogram = self._estimate_histogram(window, counts, num_answers, population)
        return WindowResult(
            window=window,
            histogram=histogram,
            num_answers=num_answers,
            population=population,
        )

    def _estimate_histogram(
        self, window: Window, counts: list[int], num_answers: int, population: int
    ) -> HistogramResult:
        p = self.parameters.p
        q = self.parameters.q
        labels = self.query.answer_spec.labels()
        histogram = HistogramResult(
            window=(window.start, window.end), num_answers=num_answers
        )
        if num_answers == 0:
            for index, label in enumerate(labels):
                histogram.add_bucket(
                    BucketEstimate(
                        bucket_index=index,
                        label=label,
                        estimate=0.0,
                        error_bound=float("inf") if population > 0 else 0.0,
                        confidence_level=self.confidence_level,
                    )
                )
            return histogram

        scale = population / num_answers
        for index, label in enumerate(labels):
            observed_yes = counts[index]
            corrected = estimate_true_yes(observed_yes, num_answers, p, q)
            estimate = scale * corrected
            # Per-answer corrected contributions: the a_i of Eq. 2, carrying
            # the randomization noise.  Bits are 0/1, so there are exactly two
            # distinct corrected values.
            corrected_one = (1.0 - (1.0 - p) * q) / p
            corrected_zero = (0.0 - (1.0 - p) * q) / p
            contributions = [corrected_one] * observed_yes + [corrected_zero] * (
                num_answers - observed_yes
            )
            error = self.error_estimator.bucket_error_bound(
                corrected_values=contributions,
                population_size=population,
                estimated_count=estimate,
            )
            histogram.add_bucket(
                BucketEstimate(
                    bucket_index=index,
                    label=label,
                    estimate=estimate,
                    error_bound=error,
                    confidence_level=self.confidence_level,
                )
            )
        return histogram
