"""A small dataflow stream-processing engine, standing in for Apache Flink.

The PrivApprox aggregator is built on Flink: it joins the encrypted-answer
stream with the key stream, decrypts, and aggregates the randomized answers
per sliding window (Sections 3.2.4 and 5).  This package provides the pieces
that behaviour needs:

* :class:`~repro.streaming.records.StreamRecord` — a timestamped element;
* sliding/tumbling window assignment over event time
  (:mod:`repro.streaming.windows`);
* dataflow operators — map, filter, key-by, keyed join, window aggregation
  (:mod:`repro.streaming.operators`);
* a :class:`~repro.streaming.pipeline.StreamPipeline` that chains operators
  and runs them over bounded or unbounded (epoch-by-epoch) sources.

The engine is deterministic and single-process; it executes the same dataflow
graph the paper's Flink job describes, which is what the correctness and
utility experiments exercise.  Cluster-level throughput is modelled separately
by :mod:`repro.netsim`.
"""

from repro.streaming.records import StreamRecord
from repro.streaming.windows import Window, SlidingWindowAssigner, TumblingWindowAssigner
from repro.streaming.operators import (
    MapOperator,
    FilterOperator,
    KeyByOperator,
    KeyedJoinOperator,
    WindowAggregateOperator,
)
from repro.streaming.pipeline import StreamPipeline, StreamSource

__all__ = [
    "StreamRecord",
    "Window",
    "SlidingWindowAssigner",
    "TumblingWindowAssigner",
    "MapOperator",
    "FilterOperator",
    "KeyByOperator",
    "KeyedJoinOperator",
    "WindowAggregateOperator",
    "StreamPipeline",
    "StreamSource",
]
