"""Event-time window assignment: sliding and tumbling windows.

The analyst's query carries a window length ``w`` and a sliding interval ``δ``
(Section 3.1).  A record with timestamp ``t`` belongs to every window
``[start, start + w)`` whose start is a multiple of ``δ`` and satisfies
``start <= t < start + w`` — the standard sliding-window semantics the paper
(and Flink) use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Window:
    """A half-open event-time interval ``[start, end)``."""

    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end})"


@dataclass(frozen=True)
class SlidingWindowAssigner:
    """Assigns each timestamp to the sliding windows that cover it.

    Parameters
    ----------
    window_length:
        ``w`` — the length of each window in seconds.
    slide_interval:
        ``δ`` — the spacing between successive window starts.  Must not exceed
        the window length (otherwise records could be dropped).
    """

    window_length: float
    slide_interval: float

    def __post_init__(self) -> None:
        if self.window_length <= 0:
            raise ValueError("window_length must be positive")
        if self.slide_interval <= 0:
            raise ValueError("slide_interval must be positive")
        if self.slide_interval > self.window_length:
            raise ValueError("slide_interval must not exceed window_length")

    def assign(self, timestamp: float) -> list[Window]:
        """All windows containing ``timestamp``, ordered by start time.

        Window starts are computed as ``index * slide_interval`` — never by
        repeatedly subtracting the slide.  Accumulated float subtraction
        drifts for non-representable slides (0.1, 0.3, ...), producing start
        values that differ in the last ulp from the multiplication form used
        by :meth:`windows_between`; since :class:`Window` keys window state
        by exact float equality, a drifted start would silently split one
        logical window into two.
        """
        last_index = math.floor(timestamp / self.slide_interval)
        windows = []
        index = last_index
        while index * self.slide_interval > timestamp - self.window_length:
            start = index * self.slide_interval
            window = Window(start=start, end=start + self.window_length)
            if window.contains(timestamp):
                windows.append(window)
            index -= 1
        windows.reverse()
        return windows

    def windows_between(self, start_time: float, end_time: float) -> list[Window]:
        """All windows whose start lies in ``[start_time, end_time)``.

        Starts are ``index * slide_interval``, the same form :meth:`assign`
        uses, so the two methods key every logical window with bit-identical
        floats (repeated ``start += slide`` would drift; see :meth:`assign`).
        """
        if end_time < start_time:
            raise ValueError("end_time must not precede start_time")
        index = math.ceil(start_time / self.slide_interval)
        out = []
        while index * self.slide_interval < end_time:
            start = index * self.slide_interval
            out.append(Window(start=start, end=start + self.window_length))
            index += 1
        return out


@dataclass(frozen=True)
class TumblingWindowAssigner:
    """Non-overlapping windows: a sliding window whose slide equals its length."""

    window_length: float

    def __post_init__(self) -> None:
        if self.window_length <= 0:
            raise ValueError("window_length must be positive")

    def assign(self, timestamp: float) -> list[Window]:
        start = math.floor(timestamp / self.window_length) * self.window_length
        return [Window(start=start, end=start + self.window_length)]

    def as_sliding(self) -> SlidingWindowAssigner:
        """The equivalent sliding assigner (slide == length)."""
        return SlidingWindowAssigner(
            window_length=self.window_length, slide_interval=self.window_length
        )
