"""Pipeline assembly and execution for the mini stream-processing engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.streaming.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyByOperator,
    MapOperator,
    Operator,
    WindowAggregateOperator,
)
from repro.streaming.records import StreamRecord
from repro.streaming.windows import SlidingWindowAssigner


@dataclass
class StreamSource:
    """Turns plain values into timestamped stream records.

    ``timestamp_fn`` extracts event time from a value; when omitted, values are
    assigned increasing integer timestamps in arrival order.
    """

    name: str = "source"
    timestamp_fn: Callable[[Any], float] | None = None

    def to_records(self, values: Iterable[Any]) -> list[StreamRecord]:
        records = []
        for index, value in enumerate(values):
            timestamp = self.timestamp_fn(value) if self.timestamp_fn else float(index)
            records.append(StreamRecord(value=value, timestamp=timestamp))
        return records


@dataclass
class StreamPipeline:
    """A linear chain of operators executed over batches of records.

    The pipeline supports two execution modes:

    * :meth:`run` — push a bounded collection through all operators and flush
      any windowed state (batch / historical analytics);
    * :meth:`run_epoch` — push one epoch's worth of records and return what the
      operators emit, keeping windowed/join state for the next epoch (stream
      analytics).
    """

    source: StreamSource = field(default_factory=StreamSource)
    operators: list[Operator] = field(default_factory=list)

    # -- fluent construction -------------------------------------------------

    def map(self, fn: Callable[[Any], Any], name: str = "map") -> "StreamPipeline":
        self.operators.append(MapOperator(fn=fn, name=name))
        return self

    def filter(self, predicate: Callable[[Any], bool], name: str = "filter") -> "StreamPipeline":
        self.operators.append(FilterOperator(predicate=predicate, name=name))
        return self

    def flat_map(self, fn: Callable[[Any], list], name: str = "flat_map") -> "StreamPipeline":
        self.operators.append(FlatMapOperator(fn=fn, name=name))
        return self

    def key_by(self, key_fn: Callable[[Any], Any], name: str = "key_by") -> "StreamPipeline":
        self.operators.append(KeyByOperator(key_fn=key_fn, name=name))
        return self

    def window_aggregate(
        self,
        assigner: SlidingWindowAssigner,
        aggregate_fn: Callable[[list], Any],
        name: str = "window_aggregate",
    ) -> "StreamPipeline":
        self.operators.append(
            WindowAggregateOperator(assigner=assigner, aggregate_fn=aggregate_fn, name=name)
        )
        return self

    def add_operator(self, operator: Operator) -> "StreamPipeline":
        self.operators.append(operator)
        return self

    # -- execution ---------------------------------------------------------------

    def run_epoch(self, values: Iterable[Any]) -> list[StreamRecord]:
        """Process one epoch of input values, preserving operator state."""
        records = self.source.to_records(values)
        return self._push(records)

    def run(self, values: Iterable[Any]) -> list[StreamRecord]:
        """Process a bounded input and flush all windowed state at the end."""
        output = self.run_epoch(values)
        output.extend(self.flush())
        return output

    def flush(self) -> list[StreamRecord]:
        """Flush windowed operators at end of stream, cascading downstream."""
        output: list[StreamRecord] = []
        for index, operator in enumerate(self.operators):
            if not isinstance(operator, WindowAggregateOperator):
                continue
            flushed = operator.flush()
            for downstream in self.operators[index + 1:]:
                flushed = downstream.process(flushed)
            output.extend(flushed)
        return output

    def _push(self, records: list[StreamRecord]) -> list[StreamRecord]:
        for operator in self.operators:
            records = operator.process(records)
        return records

    def iter_epochs(self, epochs: Iterable[Iterable[Any]]) -> Iterator[list[StreamRecord]]:
        """Process a sequence of epochs lazily, yielding each epoch's output."""
        for epoch_values in epochs:
            yield self.run_epoch(epoch_values)
