"""Dataflow operators for the mini stream-processing engine.

Each operator transforms a list of :class:`~repro.streaming.records.StreamRecord`
into another list.  Operators are deliberately stateless between calls unless
they carry explicit state (the keyed join buffers unmatched records), so a
pipeline can be run epoch-by-epoch over an unbounded stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.streaming.records import StreamRecord
from repro.streaming.windows import SlidingWindowAssigner, Window


class Operator:
    """Base class: an operator maps a batch of records to a batch of records."""

    def process(self, records: list[StreamRecord]) -> list[StreamRecord]:
        raise NotImplementedError


@dataclass
class MapOperator(Operator):
    """Applies a function to every record's value."""

    fn: Callable[[Any], Any]
    name: str = "map"

    def process(self, records: list[StreamRecord]) -> list[StreamRecord]:
        return [record.with_value(self.fn(record.value)) for record in records]


@dataclass
class FilterOperator(Operator):
    """Keeps only the records whose value satisfies a predicate."""

    predicate: Callable[[Any], bool]
    name: str = "filter"

    def process(self, records: list[StreamRecord]) -> list[StreamRecord]:
        return [record for record in records if self.predicate(record.value)]


@dataclass
class FlatMapOperator(Operator):
    """Applies a function returning an iterable; emits one record per element."""

    fn: Callable[[Any], list]
    name: str = "flat_map"

    def process(self, records: list[StreamRecord]) -> list[StreamRecord]:
        out: list[StreamRecord] = []
        for record in records:
            for value in self.fn(record.value):
                out.append(record.with_value(value))
        return out


@dataclass
class KeyByOperator(Operator):
    """Assigns each record a key extracted from its value."""

    key_fn: Callable[[Any], Any]
    name: str = "key_by"

    def process(self, records: list[StreamRecord]) -> list[StreamRecord]:
        return [record.with_key(self.key_fn(record.value)) for record in records]


@dataclass
class KeyedJoinOperator(Operator):
    """Joins two logical streams on their key, buffering unmatched records.

    The aggregator uses this to pair the encrypted-answer share with all of its
    key shares: records arrive tagged (via ``stream_of``) as belonging to one
    of the two input streams; once ``expected_per_key`` records with the same
    key have arrived, the join fires and emits a single record whose value is
    the list of joined values (ordered by arrival).

    Buffered state is kept across ``process`` calls so shares arriving in
    different epochs still join, as they would in Flink's keyed state.
    """

    expected_per_key: int = 2
    stream_of: Callable[[Any], str] = field(default=lambda value: "default")
    name: str = "keyed_join"

    def __post_init__(self) -> None:
        if self.expected_per_key < 2:
            raise ValueError("a join needs at least two records per key")
        self._buffer: dict[Any, list[StreamRecord]] = {}

    def process(self, records: list[StreamRecord]) -> list[StreamRecord]:
        out: list[StreamRecord] = []
        for record in records:
            if record.key is None:
                raise ValueError("KeyedJoinOperator requires keyed records (use KeyByOperator)")
            bucket = self._buffer.setdefault(record.key, [])
            bucket.append(record)
            if len(bucket) >= self.expected_per_key:
                joined_values = [r.value for r in bucket]
                timestamp = max(r.timestamp for r in bucket)
                out.append(StreamRecord(value=joined_values, timestamp=timestamp, key=record.key))
                del self._buffer[record.key]
        return out

    def pending_keys(self) -> int:
        """Number of keys still waiting for their remaining shares."""
        return len(self._buffer)

    def has_pending(self, key: Any) -> bool:
        """Whether earlier records for ``key`` are buffered awaiting a join."""
        return key in self._buffer


@dataclass
class WindowAggregateOperator(Operator):
    """Aggregates record values per sliding window.

    ``aggregate_fn`` receives the list of values falling inside a window and
    returns the aggregate.  Output records carry ``(window, aggregate)`` as
    their value and the window end as their timestamp, so downstream operators
    (e.g. error estimation) know which window each result belongs to.

    The operator keeps per-window buffers across calls and only emits windows
    whose end time is at or before the current watermark (the maximum
    timestamp seen), mirroring event-time triggering.  ``flush`` emits all
    remaining windows regardless of the watermark — used at end of stream.

    Out-of-order (late) records are accepted as long as their window has not
    fired yet or the record arrives within ``allowed_lateness`` seconds of the
    watermark; records for windows that already fired outside that grace
    period are dropped and counted in ``late_records_dropped``, so a late
    answer can never silently re-open a window the analyst already received.
    """

    assigner: SlidingWindowAssigner
    aggregate_fn: Callable[[list], Any]
    allowed_lateness: float = 0.0
    name: str = "window_aggregate"

    def __post_init__(self) -> None:
        if self.allowed_lateness < 0:
            raise ValueError("allowed_lateness must be non-negative")
        self._window_buffers: dict[Window, list] = {}
        self._emitted_windows: set[Window] = set()
        self._watermark = float("-inf")
        self.late_records_dropped = 0

    def process(self, records: list[StreamRecord]) -> list[StreamRecord]:
        for record in records:
            self._watermark = max(self._watermark, record.timestamp)
            for window in self.assigner.assign(record.timestamp):
                is_past_due = (
                    window.end + self.allowed_lateness <= self._watermark
                    and window not in self._window_buffers
                )
                if window in self._emitted_windows or is_past_due:
                    self.late_records_dropped += 1
                    continue
                self._window_buffers.setdefault(window, []).append(record.value)
        emitted = self._emit(
            lambda window: window.end + self.allowed_lateness <= self._watermark
        )
        self._prune_emitted_state()
        return emitted

    def _prune_emitted_state(self) -> None:
        """Forget emitted windows far below the lateness horizon (bounded memory)."""
        horizon = self._watermark - self.allowed_lateness - self.assigner.window_length
        self._emitted_windows = {w for w in self._emitted_windows if w.end >= horizon}

    def flush(self) -> list[StreamRecord]:
        """Emit every buffered window (end of stream)."""
        return self._emit(lambda window: True)

    def _emit(self, should_fire: Callable[[Window], bool]) -> list[StreamRecord]:
        out: list[StreamRecord] = []
        for window in sorted(list(self._window_buffers)):
            if not should_fire(window):
                continue
            values = self._window_buffers.pop(window)
            self._emitted_windows.add(window)
            aggregate = self.aggregate_fn(values)
            out.append(StreamRecord(value=(window, aggregate), timestamp=window.end))
        return out

    def pending_windows(self) -> int:
        return len(self._window_buffers)
