"""Stream record type: a value with an event-time timestamp and optional key."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class StreamRecord:
    """A single element flowing through the dataflow graph.

    Attributes
    ----------
    value:
        Arbitrary payload.
    timestamp:
        Event time in seconds.  Window assignment uses this, not arrival
        order, matching Flink's event-time semantics.
    key:
        Optional key set by a key-by operator (or the source).
    """

    value: Any
    timestamp: float = 0.0
    key: Any = None

    def with_value(self, value: Any) -> "StreamRecord":
        """A copy of this record carrying a new value."""
        return StreamRecord(value=value, timestamp=self.timestamp, key=self.key)

    def with_key(self, key: Any) -> "StreamRecord":
        """A copy of this record carrying a new key."""
        return StreamRecord(value=self.value, timestamp=self.timestamp, key=key)
