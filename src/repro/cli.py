"""Command-line interface for the PrivApprox reproduction.

The CLI exposes the most common workflows without writing Python:

* ``plan``       — convert an execution budget into the (s, p, q) parameters;
* ``privacy``    — report the differential and zero-knowledge privacy levels
                   of a parameter configuration;
* ``simulate``   — run an end-to-end synthetic deployment and print the
                   estimated histogram next to the ground truth;
* ``taxi`` / ``electricity`` — run the two case studies;
* ``crypto-table`` — print the Table 2 device-calibrated crypto comparison;
* ``worker``     — serve shards as a remote resident worker over TCP
                   (``--listen HOST:PORT --key-file KEYS``); a coordinator
                   points at it with ``simulate --workers host:port,...``.
                   See ``docs/OPERATIONS.md`` for the full runbook.

Run ``python -m repro.cli <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Sequence

from repro.analytics import histogram_accuracy_loss
from repro.core import (
    Analyst,
    AnswerSpec,
    BudgetPlanner,
    ExecutionParameters,
    PrivApproxSystem,
    QueryBudget,
    RangeBuckets,
    SystemConfig,
)
from repro.core.privacy import randomized_response_epsilon, zero_knowledge_epsilon
from repro.datasets import (
    ELECTRICITY_BUCKETS,
    ElectricityGenerator,
    TAXI_DISTANCE_BUCKETS,
    TaxiRideGenerator,
)
from repro.netsim import DeviceProfile, OperationKind
from repro.runtime import EXECUTOR_KINDS


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    """Epoch-runtime selection flags shared by the end-to-end commands."""
    parser.add_argument(
        "--executor", choices=EXECUTOR_KINDS, default="serial",
        help="epoch runtime: 'serial' reference loop, or a staged-engine "
             "driver combination named 'scheduling/transport' (e.g. "
             "'thread-pool/in-process', 'pipelined-overlap/framed-wire-local'"
             "). The legacy names 'sharded', 'pipelined' and 'process' "
             "remain as aliases for their engine configurations",
    )
    parser.add_argument(
        "--workers", default="4",
        help="worker pool size for the pooled executors (default: 4) — or a "
             "comma-separated list of host:port addresses of separately "
             "launched TCP workers (requires a remote-capable --executor "
             "such as 'process' or 'pipelined-overlap/sealed-tcp-remote', "
             "plus --key-file; see the 'worker' command)",
    )
    parser.add_argument(
        "--key-file", default=None, metavar="PATH",
        help="with host:port --workers: pre-shared HMAC keys, one hex key "
             "per line (line i keys worker i, or a single shared key)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count for the sharded/pipelined executors "
             "(default: one per worker)",
    )
    parser.add_argument(
        "--resident-state", action="store_true",
        help="process executor only: keep client state resident in pinned "
             "worker processes (sticky shard->worker affinity; state is "
             "bootstrapped once and per-epoch traffic shrinks to deltas "
             "and acks)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=4,
        help="with --resident-state: refresh the parent's authoritative "
             "state copy every N epochs per shard (0 = only on "
             "demand/shutdown; default: 4)",
    )


def _parse_workers(value: str) -> tuple[int, tuple[str, ...] | None]:
    """Interpret ``--workers``: a pool size, or remote ``host:port`` addresses.

    Returns ``(pool_size, remote_addresses)``; remote addresses are ``None``
    for the plain integer form.  With addresses the pool size is their count.
    """
    if ":" not in value:
        try:
            return int(value), None
        except ValueError:
            raise SystemExit(
                f"--workers expects an integer pool size or host:port "
                f"addresses, got {value!r}"
            ) from None
    addresses = tuple(part.strip() for part in value.split(",") if part.strip())
    if not addresses:
        raise SystemExit("--workers names no addresses")
    from repro.runtime.remote import parse_address

    for address in addresses:
        try:
            parse_address(address)
        except ValueError as exc:
            raise SystemExit(f"--workers: {exc}") from None
    return len(addresses), addresses


def _system_config(args: argparse.Namespace, **overrides) -> SystemConfig:
    """Build a SystemConfig from the common CLI arguments."""
    from repro.runtime.executor import executor_requires_remote, executor_supports_remote

    pool_size, remote = _parse_workers(args.workers)
    if remote is not None:
        if args.key_file is None:
            raise SystemExit(
                "--workers with host:port addresses requires --key-file"
            )
        if not executor_supports_remote(args.executor):
            raise SystemExit(
                "--workers with host:port addresses requires a remote-capable "
                "--executor ('process' or a */sealed-tcp-remote spelling)"
            )
    else:
        if executor_requires_remote(args.executor):
            raise SystemExit(
                f"--executor {args.executor} needs remote worker addresses "
                "(--workers host:port,... with a --key-file)"
            )
        if args.key_file is not None:
            raise SystemExit("--key-file only applies with host:port --workers")
    return SystemConfig(
        num_clients=args.clients,
        seed=args.seed,
        executor=args.executor,
        executor_workers=pool_size,
        executor_shards=args.shards,
        executor_resident=args.resident_state,
        executor_checkpoint_every=args.checkpoint_every,
        executor_remote_workers=remote,
        executor_key_file=args.key_file if remote is not None else None,
        **overrides,
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="privapprox",
        description="PrivApprox: privacy-preserving stream analytics (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan = subparsers.add_parser("plan", help="convert a budget into (s, p, q)")
    plan.add_argument("--accuracy-loss", type=float, default=None,
                      help="target accuracy loss, e.g. 0.05 for 5%%")
    plan.add_argument("--epsilon", type=float, default=None,
                      help="maximum zero-knowledge privacy level")
    plan.add_argument("--latency", type=float, default=None, help="latency SLA in seconds")
    plan.add_argument("--clients", type=int, default=10_000, help="expected client count")

    privacy = subparsers.add_parser("privacy", help="privacy levels of a configuration")
    privacy.add_argument("--sampling-fraction", "-s", type=float, required=True)
    privacy.add_argument("-p", type=float, required=True)
    privacy.add_argument("-q", type=float, required=True)

    simulate = subparsers.add_parser("simulate", help="run a synthetic end-to-end deployment")
    simulate.add_argument("--clients", type=int, default=500)
    simulate.add_argument("--epochs", type=int, default=2)
    simulate.add_argument("--buckets", type=int, default=8)
    simulate.add_argument(
        "--queries", type=int, default=1,
        help="concurrent analyst queries served per epoch from one shared "
             "answering pass (each query gets its own bucketing, channel "
             "topics and aggregator; default: 1)",
    )
    simulate.add_argument("--sampling-fraction", "-s", type=float, default=0.9)
    simulate.add_argument("-p", type=float, default=0.9)
    simulate.add_argument("-q", type=float, default=0.6)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="run a named hostile-environment scenario from the seeded grid "
             "(repro.runtime.scenario) on the selected executor instead of "
             "the plain synthetic deployment; 'list' prints the grid",
    )
    _add_executor_arguments(simulate)

    taxi = subparsers.add_parser("taxi", help="run the NYC-taxi case study")
    taxi.add_argument("--clients", type=int, default=800)
    taxi.add_argument("--sampling-fraction", "-s", type=float, default=0.9)
    taxi.add_argument("-p", type=float, default=0.9)
    taxi.add_argument("-q", type=float, default=0.3)
    taxi.add_argument("--seed", type=int, default=11)
    _add_executor_arguments(taxi)

    electricity = subparsers.add_parser("electricity", help="run the electricity case study")
    electricity.add_argument("--clients", type=int, default=800)
    electricity.add_argument("--sampling-fraction", "-s", type=float, default=0.9)
    electricity.add_argument("-p", type=float, default=0.9)
    electricity.add_argument("-q", type=float, default=0.3)
    electricity.add_argument("--seed", type=int, default=17)
    _add_executor_arguments(electricity)

    subparsers.add_parser("crypto-table", help="print the Table 2 crypto comparison")

    worker = subparsers.add_parser(
        "worker",
        help="serve shards as a remote resident worker over TCP "
             "(coordinators connect via simulate --workers host:port,...)",
    )
    worker.add_argument(
        "--listen", required=True, metavar="HOST:PORT",
        help="address to bind (port 0 picks a free port; the bound address "
             "is printed as 'worker listening on HOST:PORT')",
    )
    worker.add_argument(
        "--key-file", required=True, metavar="PATH",
        help="pre-shared HMAC key, one hex line (this worker's key)",
    )
    worker.add_argument(
        "--max-sessions", type=int, default=None, metavar="N",
        help="exit after N coordinator sessions have ended (default: serve "
             "until interrupted; used by tests and the CI smoke)",
    )
    return parser


# -- command implementations -----------------------------------------------------


def cmd_plan(args: argparse.Namespace) -> int:
    budget = QueryBudget(
        target_accuracy_loss=args.accuracy_loss,
        max_epsilon=args.epsilon,
        max_latency_seconds=args.latency,
        expected_clients=args.clients,
    )
    params = BudgetPlanner().plan(budget)
    print(f"sampling fraction s = {params.sampling_fraction:.3f}")
    print(f"randomization     p = {params.p:.3f}")
    print(f"randomization     q = {params.q:.3f}")
    print(f"zero-knowledge privacy level = {params.epsilon_zk:.3f}")
    return 0


def cmd_privacy(args: argparse.Namespace) -> int:
    eps_dp = randomized_response_epsilon(args.p, args.q)
    eps_zk = zero_knowledge_epsilon(args.p, args.q, args.sampling_fraction)
    print(f"epsilon_dp (randomized response alone) = {eps_dp:.4f}")
    print(f"epsilon_zk (with sampling s={args.sampling_fraction}) = {eps_zk:.4f}")
    return 0


def _print_histogram(labels, estimates, bounds, exact) -> None:
    print(f"{'bucket':>16}  {'estimate':>10}  {'error bound':>12}  {'exact':>7}")
    for label, estimate, bound, truth in zip(labels, estimates, bounds, exact):
        print(f"{label:>16}  {estimate:>10.1f}  ±{bound:>11.1f}  {truth:>7d}")


def _cmd_simulate_scenario(args: argparse.Namespace) -> int:
    """``simulate --scenario``: one grid scenario on the selected executor."""
    from repro.runtime.scenario import find_scenario, run_scenario, scenario_grid

    if args.scenario == "list":
        for spec in scenario_grid("full"):
            churn = f"join={spec.join_rate} leave={spec.leave_rate}"
            deadline = (
                f"deadline={spec.deadline_seconds}s"
                if spec.deadline_seconds is not None
                else "no deadline"
            )
            print(
                f"{spec.name:<20} clients={spec.num_clients:<3} "
                f"epochs={spec.num_epochs} {churn} zipf={spec.zipf_exponent} "
                f"dupes={spec.duplicate_rate} {deadline}"
            )
        return 0
    try:
        spec = find_scenario(args.scenario)
    except KeyError as exc:
        raise SystemExit(str(exc)) from exc
    from repro.runtime.executor import executor_requires_remote

    pool_size, remote = _parse_workers(args.workers)
    if remote is not None and args.key_file is None:
        raise SystemExit("--workers with host:port addresses requires --key-file")
    if remote is None:
        if executor_requires_remote(args.executor):
            raise SystemExit(
                f"--executor {args.executor} needs remote worker addresses "
                "(--workers host:port,... with a --key-file)"
            )
        if args.key_file is not None:
            raise SystemExit("--key-file only applies with host:port --workers")
    run = run_scenario(
        spec,
        executor=args.executor,
        workers=pool_size,
        shards=args.shards,
        resident=args.resident_state,
        checkpoint_every=args.checkpoint_every,
        remote_workers=remote,
        key_file=args.key_file,
    )
    print(f"scenario {spec.name} on executor {run.executor_label}")
    print(f"  digest            {run.digest}")
    print(f"  wall-clock        {run.total_wall_seconds:.3f} s")
    print(f"  wire bytes        {run.total_wire_bytes}")
    print(f"  late drops        {run.total_late_dropped}")
    print(f"  admission rejects {run.total_rejections}")
    loss = run.mean_accuracy_loss
    print(
        "  accuracy loss     "
        + (f"{100 * loss:.2f}%" if loss is not None else "n/a (no exact answers)")
    )
    for stats in run.epochs:
        print(
            f"  epoch {stats.epoch}: active={stats.active_clients} "
            f"(+{stats.joins}/-{stats.leaves}) responses={stats.responses} "
            f"late={len(stats.late_clients)} dupes_rej={stats.duplicates_rejected}"
        )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        return _cmd_simulate_scenario(args)
    if args.queries < 1:
        raise SystemExit("--queries must be at least 1")
    system = PrivApproxSystem(_system_config(args))
    rng = random.Random(args.seed)
    system.provision_clients(
        [("value", "REAL")], lambda i: [{"value": rng.gammavariate(2.0, 1.0)}]
    )
    analyst = Analyst("cli")
    params = ExecutionParameters(
        sampling_fraction=args.sampling_fraction, p=args.p, q=args.q
    )
    # N concurrent queries over the same stream, each with its own bucket
    # resolution — the multi-analyst scenario the multi-query epoch serves
    # from one shared answering pass.
    queries = []
    for index in range(args.queries):
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(
                buckets=RangeBuckets.uniform(
                    0.0, 8.0, args.buckets + index, open_ended=True
                ),
                value_column="value",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(analyst, query, QueryBudget(), parameters=params)
        queries.append(query)
    if args.queries == 1:
        for epoch in range(args.epochs):
            system.run_epoch(queries[0].query_id, epoch)
    else:
        for epoch in range(args.epochs):
            system.run_epoch_all(epoch)
    for query in queries:
        system.flush(query.query_id)
    system.close()
    for index, query in enumerate(queries):
        results = analyst.results_for(query.query_id)
        exact = system.exact_bucket_counts(query.query_id)
        last = results[-1]
        if args.queries > 1:
            print(f"--- query {index + 1}/{args.queries} ({query.query_id}) ---")
        print(f"{len(results)} window results; last window shown below")
        _print_histogram(last.histogram.labels(), last.histogram.estimates(),
                         last.histogram.error_bounds(), exact)
        print(f"histogram accuracy loss vs exact: "
              f"{100 * histogram_accuracy_loss(exact, last.histogram.estimates()):.2f}%")
    return 0


def _run_case_study(args: argparse.Namespace, generator, buckets, sql, value_column) -> int:
    system = PrivApproxSystem(_system_config(args))
    system.provision_clients(
        generator.table_columns(),
        lambda i: (
            generator.rides_for_client(i, num_rides=2)
            if hasattr(generator, "rides_for_client")
            else generator.readings_for_client(i, num_readings=2)
        ),
    )
    analyst = Analyst("cli-case-study")
    query = analyst.create_query(
        sql,
        AnswerSpec(buckets=buckets, value_column=value_column),
        frequency_seconds=600.0,
        window_seconds=600.0,
        slide_seconds=600.0,
    )
    params = ExecutionParameters(
        sampling_fraction=args.sampling_fraction, p=args.p, q=args.q
    )
    system.submit_query(analyst, query, QueryBudget(), parameters=params)
    system.run_epoch(query.query_id, 0)
    result = system.flush(query.query_id)[0]
    system.close()
    exact = system.exact_bucket_counts(query.query_id)
    _print_histogram(result.histogram.labels(), result.histogram.estimates(),
                     result.histogram.error_bounds(), exact)
    loss = histogram_accuracy_loss(exact, result.histogram.estimates())
    print(f"accuracy loss: {100 * loss:.2f}%   "
          f"epsilon_zk: {zero_knowledge_epsilon(args.p, args.q, args.sampling_fraction):.3f}")
    return 0


def cmd_taxi(args: argparse.Namespace) -> int:
    generator = TaxiRideGenerator(seed=args.seed)
    return _run_case_study(
        args, generator, TAXI_DISTANCE_BUCKETS, TaxiRideGenerator.case_study_sql(), "distance"
    )


def cmd_electricity(args: argparse.Namespace) -> int:
    generator = ElectricityGenerator(seed=args.seed)
    return _run_case_study(
        args, generator, ELECTRICITY_BUCKETS, ElectricityGenerator.case_study_sql(), "kwh"
    )


def cmd_worker(args: argparse.Namespace) -> int:
    """Run one remote resident worker until interrupted (or --max-sessions)."""
    from repro.runtime.remote import RemoteWorkerServer, load_keys, parse_address

    try:
        host, port = parse_address(args.listen)
    except ValueError as exc:
        raise SystemExit(f"--listen: {exc}") from None
    keys = load_keys(args.key_file)
    if len(keys) != 1:
        raise SystemExit(
            f"a worker's key file must hold exactly one key, found {len(keys)} "
            f"in {args.key_file} (per-worker files; see docs/OPERATIONS.md)"
        )
    server = RemoteWorkerServer(host, port, keys[0], max_sessions=args.max_sessions)
    bound_host, bound_port = server.address
    # Parents (tests, the CI smoke, operators scripting --listen :0) parse
    # this line to learn the bound port; keep its shape stable.
    print(f"worker listening on {bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(
        f"worker done: {server.sessions_served} sessions, "
        f"{server.frames_served} frames, {server.failed_sessions} failed, "
        f"{server.rejected_connections} rejected",
        flush=True,
    )
    return 0


def cmd_crypto_table(_: argparse.Namespace) -> int:
    devices = DeviceProfile.all_devices()
    schemes = [
        ("RSA", OperationKind.RSA_ENCRYPT),
        ("Goldwasser-Micali", OperationKind.GM_ENCRYPT),
        ("Paillier", OperationKind.PAILLIER_ENCRYPT),
        ("PrivApprox (XOR)", OperationKind.XOR_ENCRYPTION),
    ]
    print(f"{'scheme':>18}  {'phone':>10}  {'laptop':>10}  {'server':>10}   (encrypt ops/sec)")
    for name, operation in schemes:
        rates = [device.ops_per_second(operation) for device in devices]
        print(f"{name:>18}  " + "  ".join(f"{rate:>10,.0f}" for rate in rates))
    return 0


_COMMANDS = {
    "plan": cmd_plan,
    "privacy": cmd_privacy,
    "simulate": cmd_simulate,
    "taxi": cmd_taxi,
    "electricity": cmd_electricity,
    "crypto-table": cmd_crypto_table,
    "worker": cmd_worker,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
