"""A replicated, append-only block store standing in for HDFS.

PrivApprox's historical-analytics extension stores clients' (randomized,
already privacy-preserving) responses in "a fault-tolerant distributed storage
(e.g., HDFS) at the aggregator" so analysts can run batch queries over longer
time periods (Section 3.3.1).  This package provides the minimum distributed
storage behaviour that workflow relies on:

* files made of fixed-size blocks, each replicated on several data nodes;
* append / read-all semantics (the workload is write-once, read-many);
* node failure injection with reads surviving as long as one replica remains.
"""

from repro.storage.blockstore import BlockStore, DataNode, StoredFile, StorageError

__all__ = ["BlockStore", "DataNode", "StoredFile", "StorageError"]
