"""Replicated append-only block store (HDFS substitute)."""

from __future__ import annotations

from dataclasses import dataclass, field


class StorageError(Exception):
    """Raised for storage failures: unknown files, unavailable blocks, bad config."""


@dataclass
class DataNode:
    """One storage node holding block replicas keyed by (file, block index)."""

    node_id: int
    alive: bool = True
    blocks: dict[tuple[str, int], bytes] = field(default_factory=dict)

    def store(self, file_name: str, block_index: int, data: bytes) -> None:
        if not self.alive:
            raise StorageError(f"data node {self.node_id} is down")
        self.blocks[(file_name, block_index)] = data

    def fetch(self, file_name: str, block_index: int) -> bytes:
        if not self.alive:
            raise StorageError(f"data node {self.node_id} is down")
        key = (file_name, block_index)
        if key not in self.blocks:
            raise StorageError(f"data node {self.node_id} does not hold block {key}")
        return self.blocks[key]

    def used_bytes(self) -> int:
        return sum(len(b) for b in self.blocks.values())


@dataclass
class StoredFile:
    """Namenode-side metadata for one file: ordered block list and placement."""

    name: str
    num_blocks: int = 0
    length_bytes: int = 0
    placements: list[list[int]] = field(default_factory=list)  # block -> node ids


@dataclass
class BlockStore:
    """A replicated block store with a single in-process "namenode".

    Parameters
    ----------
    num_nodes:
        Number of data nodes.
    replication:
        Number of replicas per block; must not exceed the node count.
    block_size:
        Maximum bytes per block; appends are split across blocks.
    """

    num_nodes: int = 3
    replication: int = 2
    block_size: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise StorageError("need at least one data node")
        if not 1 <= self.replication <= self.num_nodes:
            raise StorageError("replication must be between 1 and the node count")
        if self.block_size <= 0:
            raise StorageError("block size must be positive")
        self.nodes = [DataNode(node_id=i) for i in range(self.num_nodes)]
        self._files: dict[str, StoredFile] = {}
        self._placement_cursor = 0

    # -- write path ---------------------------------------------------------

    def create(self, file_name: str) -> StoredFile:
        """Create an empty file; appending to a missing file also creates it."""
        if file_name in self._files:
            raise StorageError(f"file {file_name} already exists")
        stored = StoredFile(name=file_name)
        self._files[file_name] = stored
        return stored

    def append(self, file_name: str, data: bytes) -> None:
        """Append bytes to a file, splitting into replicated blocks."""
        if file_name not in self._files:
            self.create(file_name)
        stored = self._files[file_name]
        offset = 0
        while offset < len(data):
            chunk = data[offset:offset + self.block_size]
            self._write_block(stored, chunk)
            offset += len(chunk)
        if not data:
            # Appending an empty payload is a no-op but must not fail.
            return

    def _write_block(self, stored: StoredFile, chunk: bytes) -> None:
        node_ids = self._pick_nodes()
        block_index = stored.num_blocks
        for node_id in node_ids:
            self.nodes[node_id].store(stored.name, block_index, chunk)
        stored.placements.append(node_ids)
        stored.num_blocks += 1
        stored.length_bytes += len(chunk)

    def _pick_nodes(self) -> list[int]:
        alive = [node.node_id for node in self.nodes if node.alive]
        if len(alive) < self.replication:
            raise StorageError(
                f"not enough live nodes for replication {self.replication}: {len(alive)} alive"
            )
        chosen = []
        for _ in range(self.replication):
            chosen.append(alive[self._placement_cursor % len(alive)])
            self._placement_cursor += 1
        return chosen

    # -- read path ------------------------------------------------------------

    def read(self, file_name: str) -> bytes:
        """Read a whole file, falling back across replicas for each block."""
        if file_name not in self._files:
            raise StorageError(f"file {file_name} does not exist")
        stored = self._files[file_name]
        out = bytearray()
        for block_index, node_ids in enumerate(stored.placements):
            out.extend(self._read_block(stored.name, block_index, node_ids))
        return bytes(out)

    def _read_block(self, file_name: str, block_index: int, node_ids: list[int]) -> bytes:
        last_error: StorageError | None = None
        for node_id in node_ids:
            node = self.nodes[node_id]
            if not node.alive:
                continue
            try:
                return node.fetch(file_name, block_index)
            except StorageError as exc:
                last_error = exc
        raise StorageError(
            f"block {block_index} of {file_name} is unavailable on all replicas"
        ) from last_error

    # -- metadata and failures -----------------------------------------------------

    def exists(self, file_name: str) -> bool:
        return file_name in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def file_length(self, file_name: str) -> int:
        if file_name not in self._files:
            raise StorageError(f"file {file_name} does not exist")
        return self._files[file_name].length_bytes

    def delete(self, file_name: str) -> None:
        if file_name not in self._files:
            raise StorageError(f"file {file_name} does not exist")
        stored = self._files.pop(file_name)
        for block_index, node_ids in enumerate(stored.placements):
            for node_id in node_ids:
                self.nodes[node_id].blocks.pop((file_name, block_index), None)

    def fail_node(self, node_id: int) -> None:
        """Mark a data node as down (failure injection for tests)."""
        self._node(node_id).alive = False

    def recover_node(self, node_id: int) -> None:
        self._node(node_id).alive = True

    def _node(self, node_id: int) -> DataNode:
        if not 0 <= node_id < self.num_nodes:
            raise StorageError(f"unknown data node {node_id}")
        return self.nodes[node_id]

    def total_used_bytes(self) -> int:
        return sum(node.used_bytes() for node in self.nodes)
