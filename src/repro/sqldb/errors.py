"""Exception hierarchy for the mini SQL engine."""


class SqlError(Exception):
    """Base class for all errors raised by :mod:`repro.sqldb`."""


class ParseError(SqlError):
    """Raised when a SQL statement cannot be parsed."""


class SchemaError(SqlError):
    """Raised for schema violations: unknown tables, columns, or type issues."""


class ExecutionError(SqlError):
    """Raised when a parsed statement cannot be executed."""
