"""Table and column definitions for the mini SQL engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.sqldb.errors import SchemaError

if TYPE_CHECKING:
    from repro.sqldb.columnar import ColumnStore

# SQL type name -> python conversion callable.
_TYPE_CONVERTERS = {
    "INTEGER": int,
    "INT": int,
    "REAL": float,
    "FLOAT": float,
    "DOUBLE": float,
    "TEXT": str,
    "VARCHAR": str,
    "BOOLEAN": bool,
    "BOOL": bool,
}


@dataclass(frozen=True)
class Column:
    """A column definition: a name and a declared SQL type."""

    name: str
    sql_type: str = "TEXT"

    def __post_init__(self) -> None:
        if self.sql_type.upper() not in _TYPE_CONVERTERS:
            raise SchemaError(f"unsupported column type: {self.sql_type}")

    def convert(self, value: Any) -> Any:
        """Coerce ``value`` to this column's type (None passes through)."""
        if value is None:
            return None
        converter = _TYPE_CONVERTERS[self.sql_type.upper()]
        try:
            return converter(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot convert {value!r} to {self.sql_type} for column {self.name}"
            ) from exc


class _RowList(list):
    """Row storage that makes in-place edits visible to the columnar mirror.

    Pure appends (``append``/``extend``/``+=``) stay at C speed — growth
    is detectable from the length alone — but any operation that edits,
    reorders, or removes existing rows bumps ``mutations``, which
    :meth:`~repro.sqldb.columnar.ColumnStore.sync` reads to know its
    arrays and indexes are stale and must rebuild.
    """

    def __init__(self, iterable=()):
        super().__init__(iterable)
        self.mutations = 0

    def __setitem__(self, index, value):
        self.mutations += 1
        super().__setitem__(index, value)

    def __delitem__(self, index):
        self.mutations += 1
        super().__delitem__(index)

    def insert(self, index, value):
        self.mutations += 1
        super().insert(index, value)

    def pop(self, index=-1):
        self.mutations += 1
        return super().pop(index)

    def remove(self, value):
        self.mutations += 1
        super().remove(value)

    def sort(self, **kwargs):
        self.mutations += 1
        super().sort(**kwargs)

    def reverse(self):
        self.mutations += 1
        super().reverse()

    def clear(self):
        self.mutations += 1
        super().clear()


@dataclass
class Table:
    """An in-memory table: an ordered schema plus a list of row tuples."""

    name: str
    columns: list[Column]
    rows: list[tuple] = field(default_factory=list)

    def __setattr__(self, name: str, value: Any) -> None:
        # Every row-list ever bound to the table is wrapped, so later
        # in-place edits (``table.rows[0] = ...``) are observable by the
        # columnar mirror's sync no matter how the list arrived.
        if name == "rows" and not isinstance(value, _RowList):
            value = _RowList(value)
        super().__setattr__(name, value)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name}")
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        # Columnar mirror + secondary indexes, built lazily on first use by
        # the compiled answer path (repro.sqldb.compile).  Derived state:
        # never serialized, rebuilt on demand after snapshot restore.
        self._store: "ColumnStore | None" = None

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        """Index of a column by name (case-insensitive)."""
        if name in self._index:
            return self._index[name]
        lowered = {k.lower(): v for k, v in self._index.items()}
        if name.lower() in lowered:
            return lowered[name.lower()]
        raise SchemaError(f"table {self.name} has no column {name}")

    def insert(self, values: list[Any], column_names: list[str] | None = None) -> None:
        """Insert one row, coercing values to the declared column types."""
        if column_names is None:
            if len(values) != len(self.columns):
                raise SchemaError(
                    f"table {self.name} expects {len(self.columns)} values, got {len(values)}"
                )
            row = tuple(col.convert(v) for col, v in zip(self.columns, values))
        else:
            if len(values) != len(column_names):
                raise SchemaError("column list and value list lengths differ")
            row_map = {name: value for name, value in zip(column_names, values)}
            row = tuple(
                col.convert(row_map[col.name]) if col.name in row_map else None
                for col in self.columns
            )
            unknown = set(row_map) - set(self.column_names)
            if unknown:
                raise SchemaError(f"unknown columns in INSERT: {sorted(unknown)}")
        self.rows.append(row)

    def insert_dict(self, record: dict[str, Any]) -> None:
        """Insert one row from a column-name → value mapping."""
        self.insert(list(record.values()), column_names=list(record.keys()))

    def append_rows(self, rows: list[tuple]) -> None:
        """Extend the row list with already-coerced tuples, in place.

        The single bulk-append entry point for snapshot restore and
        :class:`~repro.runtime.wire.ShardDelta` streams.  Appending in
        place (rather than rebinding ``self.rows``) is what lets the
        columnar store recognize the mutation as an incremental append
        instead of a rebuild.
        """
        self.rows.extend(rows)

    def scan(
        self, columns: list[str] | None = None
    ) -> Iterator[dict[str, Any]] | Iterator[tuple]:
        """Yield every row as a column-name → value dict.

        With ``columns``, yield a plain tuple of just those columns per
        row instead — no per-row dict is materialized, which matters
        when a caller reads one column from a large table (the
        allocation regression test in ``tests/sqldb`` pins this).
        """
        if columns is not None:
            indices = [self.column_index(name) for name in columns]
            if len(indices) == 1:
                index = indices[0]
                for row in self.rows:
                    yield (row[index],)
            else:
                for row in self.rows:
                    yield tuple(row[i] for i in indices)
            return
        names = self.column_names
        for row in self.rows:
            yield dict(zip(names, row))

    # -- columnar mirror -----------------------------------------------------

    @property
    def column_store(self) -> "ColumnStore":
        """The table's columnar mirror, created on first use, synced on every use."""
        from repro.sqldb.columnar import ColumnStore

        if self._store is None:
            self._store = ColumnStore(self)
        else:
            self._store.sync(self)
        return self._store

    def sync_store(self) -> None:
        """Bring an existing columnar mirror up to date (no-op when absent).

        Called eagerly by the resident runtime after applying
        ``ShardDelta`` appends, keeping index maintenance off the answer
        critical path; the mirror stays lazy until the first query needs it.
        """
        if self._store is not None:
            self._store.sync(self)

    def __len__(self) -> int:
        return len(self.rows)
