"""Table and column definitions for the mini SQL engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.sqldb.errors import SchemaError

# SQL type name -> python conversion callable.
_TYPE_CONVERTERS = {
    "INTEGER": int,
    "INT": int,
    "REAL": float,
    "FLOAT": float,
    "DOUBLE": float,
    "TEXT": str,
    "VARCHAR": str,
    "BOOLEAN": bool,
    "BOOL": bool,
}


@dataclass(frozen=True)
class Column:
    """A column definition: a name and a declared SQL type."""

    name: str
    sql_type: str = "TEXT"

    def __post_init__(self) -> None:
        if self.sql_type.upper() not in _TYPE_CONVERTERS:
            raise SchemaError(f"unsupported column type: {self.sql_type}")

    def convert(self, value: Any) -> Any:
        """Coerce ``value`` to this column's type (None passes through)."""
        if value is None:
            return None
        converter = _TYPE_CONVERTERS[self.sql_type.upper()]
        try:
            return converter(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot convert {value!r} to {self.sql_type} for column {self.name}"
            ) from exc


@dataclass
class Table:
    """An in-memory table: an ordered schema plus a list of row tuples."""

    name: str
    columns: list[Column]
    rows: list[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name}")
        self._index = {c.name: i for i, c in enumerate(self.columns)}

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        """Index of a column by name (case-insensitive)."""
        if name in self._index:
            return self._index[name]
        lowered = {k.lower(): v for k, v in self._index.items()}
        if name.lower() in lowered:
            return lowered[name.lower()]
        raise SchemaError(f"table {self.name} has no column {name}")

    def insert(self, values: list[Any], column_names: list[str] | None = None) -> None:
        """Insert one row, coercing values to the declared column types."""
        if column_names is None:
            if len(values) != len(self.columns):
                raise SchemaError(
                    f"table {self.name} expects {len(self.columns)} values, got {len(values)}"
                )
            row = tuple(col.convert(v) for col, v in zip(self.columns, values))
        else:
            if len(values) != len(column_names):
                raise SchemaError("column list and value list lengths differ")
            row_map = {name: value for name, value in zip(column_names, values)}
            row = tuple(
                col.convert(row_map[col.name]) if col.name in row_map else None
                for col in self.columns
            )
            unknown = set(row_map) - set(self.column_names)
            if unknown:
                raise SchemaError(f"unknown columns in INSERT: {sorted(unknown)}")
        self.rows.append(row)

    def insert_dict(self, record: dict[str, Any]) -> None:
        """Insert one row from a column-name → value mapping."""
        self.insert(list(record.values()), column_names=list(record.keys()))

    def scan(self) -> Iterator[dict[str, Any]]:
        """Yield every row as a column-name → value dict."""
        names = self.column_names
        for row in self.rows:
            yield dict(zip(names, row))

    def __len__(self) -> int:
        return len(self.rows)
