"""Recursive-descent SQL parser for the mini SQL engine."""

from __future__ import annotations

from functools import lru_cache

from repro.sqldb import ast
from repro.sqldb.errors import ParseError
from repro.sqldb.lexer import Token, TokenType, tokenize

_AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class Parser:
    """Parses a single SQL statement into an AST node."""

    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._advance()
        if not token.matches_keyword(keyword):
            raise ParseError(f"expected {keyword}, got {token.value!r} in: {self._sql}")
        return token

    def _expect_punct(self, punct: str) -> Token:
        token = self._advance()
        if token.type is not TokenType.PUNCT or token.value != punct:
            raise ParseError(f"expected {punct!r}, got {token.value!r} in: {self._sql}")
        return token

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches_keyword(keyword):
            self._advance()
            return True
        return False

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == punct:
            self._advance()
            return True
        return False

    def _expect_identifier(self) -> str:
        token = self._advance()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(f"expected identifier, got {token.value!r} in: {self._sql}")
        return token.value

    # -- entry point --------------------------------------------------------

    def parse(self):
        """Parse the statement and return the corresponding AST node."""
        token = self._peek()
        if token.matches_keyword("SELECT"):
            statement = self._parse_select()
        elif token.matches_keyword("INSERT"):
            statement = self._parse_insert()
        elif token.matches_keyword("CREATE"):
            statement = self._parse_create()
        elif token.matches_keyword("DELETE"):
            statement = self._parse_delete()
        elif token.matches_keyword("DROP"):
            statement = self._parse_drop()
        else:
            raise ParseError(f"unsupported statement: {self._sql}")
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise ParseError(f"trailing tokens after statement: {self._sql}")
        return statement

    # -- statements ---------------------------------------------------------

    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        select_star = False
        items: list = []
        if self._peek().type is TokenType.STAR:
            self._advance()
            select_star = True
        else:
            items.append(self._parse_select_item())
            while self._accept_punct(","):
                items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        group_by: list[str] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expect_identifier())
            while self._accept_punct(","):
                group_by.append(self._expect_identifier())
        order_by = None
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            column = self._expect_identifier()
            descending = False
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
            order_by = ast.OrderBy(column=column, descending=descending)
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._advance()
            if token.type is not TokenType.NUMBER:
                raise ParseError(f"LIMIT expects a number, got {token.value!r}")
            limit = int(float(token.value))
        return ast.SelectStatement(
            table=table,
            items=tuple(items),
            where=where,
            group_by=tuple(group_by),
            order_by=order_by,
            limit=limit,
            select_star=select_star,
        )

    def _parse_select_item(self):
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATE_FUNCTIONS:
            function = self._advance().value
            self._expect_punct("(")
            if self._peek().type is TokenType.STAR:
                self._advance()
                argument = None
                if function != "COUNT":
                    raise ParseError(f"{function}(*) is not supported")
            else:
                argument = self._expect_identifier()
            self._expect_punct(")")
            alias = self._parse_optional_alias()
            return ast.Aggregate(function=function, argument=argument, alias=alias)
        column = self._expect_identifier()
        alias = self._parse_optional_alias()
        return ast.SelectItem(column=column, alias=alias)

    def _parse_optional_alias(self) -> str | None:
        if self._accept_keyword("AS"):
            return self._expect_identifier()
        return None

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        columns = None
        if self._accept_punct("("):
            names = [self._expect_identifier()]
            while self._accept_punct(","):
                names.append(self._expect_identifier())
            self._expect_punct(")")
            columns = tuple(names)
        self._expect_keyword("VALUES")
        self._expect_punct("(")
        values = [self._parse_literal_value()]
        while self._accept_punct(","):
            values.append(self._parse_literal_value())
        self._expect_punct(")")
        return ast.InsertStatement(table=table, columns=columns, values=tuple(values))

    def _parse_create(self) -> ast.CreateTableStatement:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        table = self._expect_identifier()
        self._expect_punct("(")
        columns = [self._parse_column_def()]
        while self._accept_punct(","):
            columns.append(self._parse_column_def())
        self._expect_punct(")")
        return ast.CreateTableStatement(table=table, columns=tuple(columns))

    def _parse_column_def(self) -> tuple[str, str]:
        name = self._expect_identifier()
        token = self._advance()
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise ParseError(f"expected column type after {name}, got {token.value!r}")
        return name, token.value.upper()

    def _parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.DeleteStatement(table=table, where=where)

    def _parse_drop(self) -> ast.DropTableStatement:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return ast.DropTableStatement(table=self._expect_identifier())

    # -- expressions ----------------------------------------------------------

    def _parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BooleanOp(operator="OR", left=left, right=right)
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BooleanOp(operator="AND", left=left, right=right)
        return left

    def _parse_not(self):
        if self._accept_keyword("NOT"):
            return ast.NotOp(operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self):
        if self._accept_punct("("):
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        operand = self._parse_operand()
        token = self._peek()
        if token.matches_keyword("BETWEEN"):
            self._advance()
            low = self._parse_operand()
            self._expect_keyword("AND")
            high = self._parse_operand()
            return ast.BetweenOp(operand=operand, low=low, high=high)
        if token.matches_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            choices = [self._parse_literal_value()]
            while self._accept_punct(","):
                choices.append(self._parse_literal_value())
            self._expect_punct(")")
            return ast.InOp(operand=operand, choices=tuple(choices))
        if token.matches_keyword("IS"):
            self._advance()
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNullOp(operand=operand, negated=negated)
        if token.matches_keyword("LIKE"):
            self._advance()
            pattern_token = self._advance()
            if pattern_token.type is not TokenType.STRING:
                raise ParseError("LIKE expects a string pattern")
            return ast.LikeOp(operand=operand, pattern=pattern_token.value)
        if token.type is TokenType.OPERATOR:
            operator = self._advance().value
            right = self._parse_operand()
            return ast.Comparison(left=operand, operator=operator, right=right)
        raise ParseError(f"expected a predicate at {token.value!r} in: {self._sql}")

    def _parse_operand(self):
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return ast.ColumnRef(name=token.value)
        return ast.Literal(value=self._parse_literal_value())

    def _parse_literal_value(self):
        token = self._advance()
        if token.type is TokenType.NUMBER:
            text = token.value
            is_float = "." in text or "e" in text or "E" in text
            return float(text) if is_float else int(text)
        if token.type is TokenType.STRING:
            return token.value
        if token.matches_keyword("NULL"):
            return None
        if token.matches_keyword("TRUE"):
            return True
        if token.matches_keyword("FALSE"):
            return False
        raise ParseError(f"expected a literal, got {token.value!r} in: {self._sql}")


def parse_statement(sql: str):
    """Parse a single SQL statement string into its AST node."""
    return Parser(sql).parse()


@lru_cache(maxsize=256)
def parse_statement_cached(sql: str):
    """Memoized :func:`parse_statement` for the compiled answer path.

    AST nodes are frozen dataclasses, so a cached statement is safe to
    share across every client database in the process (and it doubles as
    the plan-cache key in :mod:`repro.sqldb.compile`).  The forced-scan
    reference path deliberately keeps calling :func:`parse_statement`:
    its per-call cost profile stays frozen alongside its semantics.
    """
    return parse_statement(sql)
