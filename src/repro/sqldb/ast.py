"""Abstract syntax tree node definitions for the mini SQL engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ColumnRef:
    """Reference to a column by name."""

    name: str


@dataclass(frozen=True)
class Literal:
    """A literal value (number, string, boolean or NULL)."""

    value: Any


@dataclass(frozen=True)
class Comparison:
    """A binary comparison, e.g. ``speed >= 10``."""

    left: "Expression"
    operator: str
    right: "Expression"


@dataclass(frozen=True)
class BooleanOp:
    """AND / OR over two sub-expressions."""

    operator: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class NotOp:
    """Logical negation."""

    operand: "Expression"


@dataclass(frozen=True)
class BetweenOp:
    """``expr BETWEEN low AND high`` (inclusive on both ends)."""

    operand: "Expression"
    low: "Expression"
    high: "Expression"


@dataclass(frozen=True)
class InOp:
    """``expr IN (v1, v2, ...)``."""

    operand: "Expression"
    choices: tuple


@dataclass(frozen=True)
class IsNullOp:
    """``expr IS [NOT] NULL``."""

    operand: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class LikeOp:
    """``expr LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: "Expression"
    pattern: str


Expression = Any  # union of the node classes above


@dataclass(frozen=True)
class Aggregate:
    """An aggregate select item: COUNT/SUM/AVG/MIN/MAX over a column or *."""

    function: str
    argument: str | None  # None means '*', only valid for COUNT
    alias: str | None = None


@dataclass(frozen=True)
class SelectItem:
    """A plain projected column, optionally aliased."""

    column: str
    alias: str | None = None


@dataclass(frozen=True)
class OrderBy:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """Parsed SELECT statement."""

    table: str
    items: tuple  # of SelectItem | Aggregate, or ('*',)
    where: Expression | None = None
    group_by: tuple = ()
    order_by: OrderBy | None = None
    limit: int | None = None
    select_star: bool = False


@dataclass(frozen=True)
class InsertStatement:
    table: str
    columns: tuple | None
    values: tuple


@dataclass(frozen=True)
class CreateTableStatement:
    table: str
    columns: tuple  # of (name, sql_type)


@dataclass(frozen=True)
class DeleteStatement:
    table: str
    where: Expression | None = None


@dataclass(frozen=True)
class DropTableStatement:
    table: str
