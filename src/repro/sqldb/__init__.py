"""A miniature in-memory SQL database, standing in for SQLite at the clients.

PrivApprox clients store their private data locally in SQLite and execute the
analyst's SQL query against it (Section 5, "Clients").  This package provides
the subset of SQL the query model needs:

* ``CREATE TABLE name (col TYPE, ...)``
* ``INSERT INTO name VALUES (...)`` / ``INSERT INTO name (cols) VALUES (...)``
* ``SELECT cols FROM name [WHERE predicate] [ORDER BY col [DESC]] [LIMIT n]``
  with ``COUNT/SUM/AVG/MIN/MAX`` aggregates, ``AND``/``OR``/``NOT`` and the
  usual comparison operators.

The engine is deliberately small but fully functional and tested; its purpose
is to let the client-side "query answering" module run real SQL over local
rows, and to let Table 3's "database read" cost be measured on a real code
path rather than a stub.
"""

from repro.sqldb.engine import Database
from repro.sqldb.table import Table, Column
from repro.sqldb.errors import SqlError, ParseError, SchemaError, ExecutionError

__all__ = [
    "Database",
    "Table",
    "Column",
    "SqlError",
    "ParseError",
    "SchemaError",
    "ExecutionError",
]
