"""A miniature in-memory SQL database, standing in for SQLite at the clients.

PrivApprox clients store their private data locally in SQLite and execute the
analyst's SQL query against it (Section 5, "Clients").  This package provides
the subset of SQL the query model needs:

* ``CREATE TABLE name (col TYPE, ...)``
* ``INSERT INTO name VALUES (...)`` / ``INSERT INTO name (cols) VALUES (...)``
* ``SELECT cols FROM name [WHERE predicate] [ORDER BY col [DESC]] [LIMIT n]``
  with ``COUNT/SUM/AVG/MIN/MAX`` aggregates, ``AND``/``OR``/``NOT`` and the
  usual comparison operators.

The engine is deliberately small but fully functional and tested; its purpose
is to let the client-side "query answering" module run real SQL over local
rows, and to let Table 3's "database read" cost be measured on a real code
path rather than a stub.

SELECTs run on an index-backed columnar fast path by default — typed
parallel arrays per table (:mod:`repro.sqldb.columnar`) with hash/B+Tree
indexes (:mod:`repro.sqldb.indexes`) probed by compiled predicates
(:mod:`repro.sqldb.compile`).  The original row-scan interpreter remains
the frozen reference; set ``SQLDB_FORCE_SCAN=1`` to pin it.  On top of
the per-client path, :class:`~repro.sqldb.columnar.ShardArena`
concatenates every co-schema client in a shard into one columnar arena
so the runtime can answer a whole shard with a single probe
(:func:`~repro.sqldb.engine.arena_select_per_client`);
``SQLDB_FORCE_PER_CLIENT=1`` pins the per-client compiled path as the
middle rung of the differential ladder.
"""

from repro.sqldb.columnar import ArenaTable, ColumnStore, ColumnVector, ShardArena
from repro.sqldb.compile import CompiledSelect, CompileFallback, plan_for
from repro.sqldb.engine import (
    ARENA_FALLBACK,
    Database,
    arena_answering_enabled,
    arena_select_per_client,
    per_client_forced,
)
from repro.sqldb.errors import ExecutionError, ParseError, SchemaError, SqlError
from repro.sqldb.indexes import BPlusTreeIndex, HashIndex
from repro.sqldb.table import Column, Table

__all__ = [
    "Database",
    "Table",
    "Column",
    "ColumnStore",
    "ColumnVector",
    "ArenaTable",
    "ShardArena",
    "ARENA_FALLBACK",
    "arena_select_per_client",
    "arena_answering_enabled",
    "per_client_forced",
    "HashIndex",
    "BPlusTreeIndex",
    "CompiledSelect",
    "CompileFallback",
    "plan_for",
    "SqlError",
    "ParseError",
    "SchemaError",
    "ExecutionError",
]
