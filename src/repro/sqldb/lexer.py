"""SQL tokenizer for the mini SQL engine."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.sqldb.errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "INSERT", "INTO", "VALUES",
    "CREATE", "TABLE", "ORDER", "BY", "ASC", "DESC", "LIMIT", "GROUP",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "AS", "BETWEEN", "IN", "LIKE",
    "IS", "NULL", "TRUE", "FALSE", "DELETE", "DROP",
}


class TokenType(Enum):
    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCT = auto()
    STAR = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches_keyword(self, keyword: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == keyword.upper()


_OPERATORS = ["<=", ">=", "<>", "!=", "=", "<", ">"]
_PUNCTUATION = "(),;."


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL statement into a flat list of tokens ending with EOF."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'" or ch == '"':
            end = sql.find(ch, i + 1)
            if end == -1:
                raise ParseError(f"unterminated string literal at position {i}")
            tokens.append(Token(TokenType.STRING, sql[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and sql[i + 1].isdigit() and _number_context(tokens)):
            j = i + 1
            while j < n and (sql[j].isdigit() or sql[j] == "."):
                j += 1
            # Scientific notation: 1.5e-3, 2E+10, 7e5.
            if j < n and sql[j] in "eE":
                k = j + 1
                if k < n and sql[k] in "+-":
                    k += 1
                if k < n and sql[k].isdigit():
                    while k < n and sql[k].isdigit():
                        k += 1
                    j = k
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        matched_op = None
        for op in _OPERATORS:
            if sql.startswith(op, i):
                matched_op = op
                break
        if matched_op:
            tokens.append(Token(TokenType.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _number_context(tokens: list[Token]) -> bool:
    """A leading '-' starts a number only if the previous token is not a value."""
    if not tokens:
        return True
    prev = tokens[-1]
    return prev.type in (TokenType.OPERATOR, TokenType.PUNCT, TokenType.KEYWORD)
