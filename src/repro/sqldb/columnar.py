"""Columnar table layout backing the compiled answer path.

The row-scan engine materializes one dict per row per query
(:meth:`repro.sqldb.table.Table.scan`); at 10⁵–10⁶ clients × multi-query
epochs that dict churn dominates the answer stage.  A
:class:`ColumnStore` keeps the same table as typed parallel arrays — one
:class:`ColumnVector` per column — plus on-demand secondary indexes
(:mod:`repro.sqldb.indexes`) on predicate columns.

**Incremental by construction.**  The store records which row list (by
identity), its in-place mutation counter (``Table.rows`` is a
``_RowList`` that counts every non-append edit), and how many rows it
was built from.  :meth:`ColumnStore.sync` is O(1) when nothing changed,
appends only the new tail when rows were appended (the only mutation the
streaming ingest and the resident runtime's
:class:`~repro.runtime.wire.ShardDelta` frames ever perform), and
rebuilds from scratch when the row list shrank, was replaced (DELETE),
or had existing rows edited in place.  Secondary indexes ride along: appends insert into every live
index, rebuilds drop them to be lazily rebuilt on next probe.

**Typed arrays.**  INTEGER columns live in ``array('q')`` and REAL
columns in ``array('d')`` while their values fit (no NULLs, no
out-of-range ints); a column silently *demotes* to a plain Python list
the first time a value cannot be stored natively.  Reads are
value-identical either way — ``array('d')`` round-trips any Python float
and ``array('q')`` any 64-bit int — which the differential suite
(:mod:`tests.sqldb.test_engine_properties`) relies on.

**Shard-wide arenas.**  A PrivApprox shard holds many co-schema clients
answering the *same* statements, so probing 10⁴ tiny per-client stores
runs 10⁴ identical probes.  :class:`ShardArena` concatenates one table
name across every member database into a single set of typed parallel
arrays plus a ``row_slot`` column (arena row id → member slot) and a
per-slot row-span table (``slot_rows``), with hash/B+Tree indexes built
once per shard; :meth:`CompiledSelect.matching_ids_per_client
<repro.sqldb.compile.CompiledSelect.matching_ids_per_client>` probes the
arena once and splits the matches back per client.  Members whose table
is missing or whose schema differs from the adopted signature are
*excluded* (their span is ``None``) and answer per-client.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any, Iterator

from repro.sqldb.indexes import BPlusTreeIndex, HashIndex

if TYPE_CHECKING:
    from repro.sqldb.table import Table

# SQL type → array.array typecode for the native fast path.  TEXT and
# BOOLEAN stay as lists: strings have no fixed-width typecode, and a
# BOOLEAN read back from a numeric array would be ``1``, not ``True`` —
# value-equal but not identical to what the row-scan engine projects.
_TYPECODES = {
    "INTEGER": "q",
    "INT": "q",
    "REAL": "d",
    "FLOAT": "d",
    "DOUBLE": "d",
}


class ColumnVector:
    """One column's values: a typed array while possible, a list after demotion.

    Supports exactly the operations the compiled path needs — append,
    subscript, iteration, length — so swapping the backing storage is
    invisible to callers.  Native storage demands the exact Python type
    (``int`` for ``'q'``, ``float`` for ``'d'``): ``array`` would happily
    coerce ``True`` to ``1`` or ``3`` to ``3.0``, and a coerced read-back
    would no longer be identical to what the row-scan engine projects.
    """

    __slots__ = ("_data", "_pytype", "typed")

    def __init__(self, sql_type: str):
        typecode = _TYPECODES.get(sql_type.upper())
        self.typed = typecode is not None
        self._pytype = int if typecode == "q" else float
        self._data: Any = array(typecode) if self.typed else []

    def append(self, value: Any) -> None:
        if self.typed:
            if type(value) is self._pytype:
                try:
                    self._data.append(value)
                    return
                except OverflowError:  # an int outside 64 bits
                    pass
            # NULL, a foreign type, or an overflow: demote to a plain list.
            self._data = list(self._data)
            self.typed = False
        self._data.append(value)

    def __getitem__(self, index: int) -> Any:
        return self._data[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)


class ColumnStore:
    """Columnar mirror of one :class:`~repro.sqldb.table.Table` plus indexes.

    Derived state: nothing here is part of a client snapshot
    (:meth:`repro.core.client.Client.export_state` ships raw rows only) —
    a restored client's store rebuilds lazily on first query and then
    maintains itself incrementally, and the differential suite asserts
    the two lifecycles answer probes identically.
    """

    __slots__ = (
        "_names",
        "_types",
        "_vectors",
        "_rows_ref",
        "_mutations",
        "_count",
        "_hash",
        "_trees",
        "rebuilds",
        "appended_rows",
    )

    def __init__(self, table: "Table"):
        self._names = [column.name for column in table.columns]
        self._types = [column.sql_type for column in table.columns]
        self._vectors: dict[str, ColumnVector] = {}
        self._rows_ref: list | None = None
        self._mutations = 0
        self._count = 0
        self._hash: dict[str, HashIndex] = {}
        self._trees: dict[str, BPlusTreeIndex] = {}
        # Observability: the maintenance tests pin that append streams
        # never trigger a rebuild.
        self.rebuilds = 0
        self.appended_rows = 0
        self._rebuild(table)

    # -- maintenance ---------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of rows currently mirrored."""
        return self._count

    def sync(self, table: "Table") -> None:
        """Bring the store up to date with the table's row list.

        O(1) when clean.  Appends (same list object, untouched mutation
        counter, larger) extend the vectors and live indexes
        incrementally; anything else — the list replaced (DELETE),
        shrunk, or edited in place (the ``_RowList`` mutation counter
        moved) — rebuilds from scratch.
        """
        rows = table.rows
        if rows is self._rows_ref and getattr(rows, "mutations", 0) == self._mutations:
            if len(rows) == self._count:
                return
            if len(rows) > self._count:
                self._append(rows, self._count)
                return
        self._rebuild(table)

    def _rebuild(self, table: "Table") -> None:
        self._vectors = {
            name: ColumnVector(sql_type)
            for name, sql_type in zip(self._names, self._types)
        }
        # Indexes are dropped, not replayed: the next probe rebuilds them
        # from the fresh vectors in one pass.
        self._hash.clear()
        self._trees.clear()
        self._rows_ref = table.rows
        self._mutations = getattr(table.rows, "mutations", 0)
        self._count = 0
        self.rebuilds += 1
        self._append(table.rows, 0)

    def _append(self, rows: list, start: int) -> None:
        vectors = [self._vectors[name] for name in self._names]
        columns = [
            (index, name)
            for index, name in enumerate(self._names)
            if name in self._hash or name in self._trees
        ]
        for row_id in range(start, len(rows)):
            row = rows[row_id]
            for vector, value in zip(vectors, row):
                vector.append(value)
            for column_index, name in columns:
                value = row[column_index]
                hash_index = self._hash.get(name)
                if hash_index is not None:
                    hash_index.insert(value, row_id)
                tree = self._trees.get(name)
                if tree is not None:
                    tree.insert(value, row_id)
        self.appended_rows += len(rows) - start
        self._count = len(rows)

    # -- columnar access -----------------------------------------------------

    def column(self, name: str) -> ColumnVector:
        """The parallel array of one column (exact name)."""
        return self._vectors[name]

    def has_column(self, name: str) -> bool:
        return name in self._vectors

    def arrays(self) -> dict[str, ColumnVector]:
        """Column name → vector, the namespace compiled closures evaluate in."""
        return self._vectors

    # -- secondary indexes ---------------------------------------------------

    def hash_index(self, name: str) -> HashIndex:
        """The column's hash index, built from the vectors on first use."""
        index = self._hash.get(name)
        if index is None:
            index = HashIndex()
            for row_id, value in enumerate(self._vectors[name]):
                index.insert(value, row_id)
            self._hash[name] = index
        return index

    def tree_index(self, name: str) -> BPlusTreeIndex:
        """The column's B+Tree index, built from the vectors on first use."""
        tree = self._trees.get(name)
        if tree is None:
            tree = BPlusTreeIndex()
            for row_id, value in enumerate(self._vectors[name]):
                tree.insert(value, row_id)
            self._trees[name] = tree
        return tree

    def index_stats(self) -> dict[str, tuple[int, int]]:
        """Column → (hash entries, tree size); observability for tests."""
        out: dict[str, tuple[int, int]] = {}
        for name in self._names:
            hash_index = self._hash.get(name)
            tree = self._trees.get(name)
            if hash_index is not None or tree is not None:
                out[name] = (
                    len(hash_index) if hash_index is not None else 0,
                    len(tree) if tree is not None else 0,
                )
        return out


# -- shard-wide arenas ---------------------------------------------------------


def _schema_signature(columns) -> tuple:
    """Hashable schema identity: ordered (name, upper-cased type) pairs.

    Mirrors :func:`repro.sqldb.compile.schema_signature` — inlined here
    because :mod:`repro.sqldb.compile` imports this module.
    """
    return tuple((column.name, column.sql_type.upper()) for column in columns)


class _ArenaRows:
    """Read-only row-tuple view over arena vectors.

    Stands in for ``Table.rows`` in the shared SELECT-finishing code:
    ``rows[i]`` materializes the arena row as a schema-order tuple, which
    is value-identical to the tuple the member table stores.
    """

    __slots__ = ("_vectors",)

    def __init__(self, vectors: list[ColumnVector]):
        self._vectors = vectors

    def __getitem__(self, index: int) -> tuple:
        return tuple(vector[index] for vector in self._vectors)

    def __len__(self) -> int:
        return len(self._vectors[0]) if self._vectors else 0


# Excluded-slot source sentinel: the slot had no table when last examined.
_EXCLUDED_EMPTY = ("x", None)


class ArenaTable:
    """One table name concatenated across every member database of a shard.

    Duck-types as both the *table* (``column_names`` / ``column_index`` /
    ``rows``) and the *store* (``count`` / ``column`` / ``has_column`` /
    ``arrays`` / ``hash_index`` / ``tree_index``) that the compiled SELECT
    path consumes, so probes and result finishing run unchanged against
    the arena.

    The schema is *adopted* from the first member that has the table;
    members whose table matches the adopted signature are **included**
    (their rows live in the arena, their span in :attr:`slot_rows`),
    everyone else is **excluded** (``slot_rows[slot] is None`` — the
    caller answers those members per-client).  Maintenance follows
    :class:`ColumnStore`: per-member tail appends (the only mutation
    ``ShardDelta`` frames perform) extend the vectors, the span table and
    any live indexes in place; everything else — a replaced or mutated
    row list, a dropped/recreated table, a table appearing on a
    previously excluded member — rebuilds the whole arena and drops its
    indexes to be lazily rebuilt on the next probe.
    """

    __slots__ = (
        "name",
        "_databases",
        "columns",
        "_signature",
        "_colindex",
        "_vectors",
        "row_slot",
        "slot_rows",
        "_sources",
        "_hash",
        "_trees",
        "rebuilds",
        "appended_rows",
        "_count",
    )

    def __init__(self, name: str, databases: list):
        self.name = name
        self._databases = databases
        self.rebuilds = 0
        self.appended_rows = 0
        self._rebuild()

    # -- maintenance ---------------------------------------------------------

    def _rebuild(self) -> None:
        adopted = None
        for db in self._databases:
            table = db.get_table(self.name)
            if table is not None:
                adopted = table
                break
        self.columns = None if adopted is None else list(adopted.columns)
        self._signature = None if adopted is None else _schema_signature(adopted.columns)
        names = [] if self.columns is None else [c.name for c in self.columns]
        types = [] if self.columns is None else [c.sql_type for c in self.columns]
        self._colindex = {name: i for i, name in enumerate(names)}
        self._vectors = {n: ColumnVector(t) for n, t in zip(names, types)}
        self.row_slot = array("q")
        self.slot_rows: list = [None] * len(self._databases)
        self._sources: list = [_EXCLUDED_EMPTY] * len(self._databases)
        self._hash: dict[str, HashIndex] = {}
        self._trees: dict[str, BPlusTreeIndex] = {}
        self._count = 0
        self.rebuilds += 1
        if self.columns is None:
            return
        for slot, db in enumerate(self._databases):
            table = db.get_table(self.name)
            if table is None:
                continue
            if _schema_signature(table.columns) != self._signature:
                self._sources[slot] = ("x", table)
                continue
            rows = table.rows
            self.slot_rows[slot] = array("q")
            self._sources[slot] = [table, rows, getattr(rows, "mutations", 0), 0]
            self._append_slot(slot, rows, 0)

    def sync(self) -> None:
        """Bring the arena up to date with every member's table.

        Two passes, mirroring :meth:`ColumnStore.sync` per member: the
        first detects any structural change — a member's table replaced,
        its row list rebound/shrunk/edited in place, or a table with the
        adopted signature appearing on an excluded member — and rebuilds
        the whole arena; only when no member changed structurally does
        the second pass fold per-member tail appends in incrementally.
        """
        for slot, db in enumerate(self._databases):
            table = db.get_table(self.name)
            source = self._sources[slot]
            if isinstance(source, list):
                if table is not source[0]:
                    self._rebuild()
                    return
                rows = table.rows
                if (
                    rows is not source[1]
                    or getattr(rows, "mutations", 0) != source[2]
                    or len(rows) < source[3]
                ):
                    self._rebuild()
                    return
            else:
                if table is source[1]:
                    continue
                if table is None:
                    self._sources[slot] = _EXCLUDED_EMPTY
                    continue
                if (
                    self.columns is None
                    or _schema_signature(table.columns) == self._signature
                ):
                    self._rebuild()
                    return
                self._sources[slot] = ("x", table)
        for slot, source in enumerate(self._sources):
            if isinstance(source, list) and len(source[1]) > source[3]:
                self._append_slot(slot, source[1], source[3])

    def _append_slot(self, slot: int, rows: list, start: int) -> None:
        vectors = [self._vectors[column.name] for column in self.columns]
        indexed = [
            (index, column.name)
            for index, column in enumerate(self.columns)
            if column.name in self._hash or column.name in self._trees
        ]
        slot_ids = self.slot_rows[slot]
        row_slot = self.row_slot
        arena_id = self._count
        for local_id in range(start, len(rows)):
            row = rows[local_id]
            for vector, value in zip(vectors, row):
                vector.append(value)
            row_slot.append(slot)
            slot_ids.append(arena_id)
            for column_index, name in indexed:
                value = row[column_index]
                hash_index = self._hash.get(name)
                if hash_index is not None:
                    hash_index.insert(value, arena_id)
                tree = self._trees.get(name)
                if tree is not None:
                    tree.insert(value, arena_id)
            arena_id += 1
        self.appended_rows += len(rows) - start
        self._count = arena_id
        self._sources[slot][3] = len(rows)

    # -- table duck-typing (the finishing half of the compiled path) ---------

    @property
    def column_names(self) -> list[str]:
        return [] if self.columns is None else [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        """Index of a column by name — same resolution (and same error
        message) as :meth:`repro.sqldb.table.Table.column_index`."""
        if name in self._colindex:
            return self._colindex[name]
        lowered = {k.lower(): v for k, v in self._colindex.items()}
        if name.lower() in lowered:
            return lowered[name.lower()]
        from repro.sqldb.errors import SchemaError

        raise SchemaError(f"table {self.name} has no column {name}")

    @property
    def rows(self) -> _ArenaRows:
        """Schema-order row tuples by arena id (select-star projection)."""
        return _ArenaRows([self._vectors[name] for name in self.column_names])

    # -- store duck-typing (probes + aggregates) -----------------------------

    @property
    def count(self) -> int:
        return self._count

    def column(self, name: str) -> ColumnVector:
        return self._vectors[name]

    def has_column(self, name: str) -> bool:
        return name in self._vectors

    def arrays(self) -> dict[str, ColumnVector]:
        return self._vectors

    def hash_index(self, name: str) -> HashIndex:
        index = self._hash.get(name)
        if index is None:
            index = HashIndex()
            for row_id, value in enumerate(self._vectors[name]):
                index.insert(value, row_id)
            self._hash[name] = index
        return index

    def tree_index(self, name: str) -> BPlusTreeIndex:
        tree = self._trees.get(name)
        if tree is None:
            tree = BPlusTreeIndex()
            for row_id, value in enumerate(self._vectors[name]):
                tree.insert(value, row_id)
            self._trees[name] = tree
        return tree

    def index_stats(self) -> dict[str, tuple[int, int]]:
        out: dict[str, tuple[int, int]] = {}
        for name in self.column_names:
            hash_index = self._hash.get(name)
            tree = self._trees.get(name)
            if hash_index is not None or tree is not None:
                out[name] = (
                    len(hash_index) if hash_index is not None else 0,
                    len(tree) if tree is not None else 0,
                )
        return out

    def stats(self) -> dict[str, int]:
        """Observability: the torture suite pins that churn and
        ``ShardDelta`` append streams never trigger spurious rebuilds."""
        return {
            "rebuilds": self.rebuilds,
            "appended_rows": self.appended_rows,
            "span_rows": self._count,
            "included_slots": sum(1 for ids in self.slot_rows if ids is not None),
        }


class ShardArena:
    """Per-shard arena registry: one :class:`ArenaTable` per table name.

    Bound to a fixed member-database list (one per client slot, in shard
    order); :meth:`matches` lets a caller verify a cached arena still
    describes the exact databases it is about to answer for.  Tables are
    built lazily on first use and synced incrementally on every
    subsequent use.
    """

    def __init__(self, databases: list):
        self._databases = list(databases)
        self._tables: dict[str, ArenaTable] = {}

    @property
    def databases(self) -> list:
        return self._databases

    @property
    def num_slots(self) -> int:
        return len(self._databases)

    def matches(self, databases: list) -> bool:
        """Whether this arena was built over exactly these database objects."""
        if len(databases) != len(self._databases):
            return False
        return all(a is b for a, b in zip(databases, self._databases))

    def table(self, name: str) -> ArenaTable | None:
        """The synced arena for one table name, or ``None`` when no member
        has the table (the statement falls back per-client)."""
        arena = self._tables.get(name)
        if arena is None:
            arena = ArenaTable(name, self._databases)
            self._tables[name] = arena
        else:
            arena.sync()
        if arena.columns is None:
            return None
        return arena

    def arena_stats(self) -> dict[str, dict[str, int]]:
        """Table name → :meth:`ArenaTable.stats`, for tests and operators."""
        return {name: arena.stats() for name, arena in self._tables.items()}
