"""Columnar table layout backing the compiled answer path.

The row-scan engine materializes one dict per row per query
(:meth:`repro.sqldb.table.Table.scan`); at 10⁵–10⁶ clients × multi-query
epochs that dict churn dominates the answer stage.  A
:class:`ColumnStore` keeps the same table as typed parallel arrays — one
:class:`ColumnVector` per column — plus on-demand secondary indexes
(:mod:`repro.sqldb.indexes`) on predicate columns.

**Incremental by construction.**  The store records which row list (by
identity), its in-place mutation counter (``Table.rows`` is a
``_RowList`` that counts every non-append edit), and how many rows it
was built from.  :meth:`ColumnStore.sync` is O(1) when nothing changed,
appends only the new tail when rows were appended (the only mutation the
streaming ingest and the resident runtime's
:class:`~repro.runtime.wire.ShardDelta` frames ever perform), and
rebuilds from scratch when the row list shrank, was replaced (DELETE),
or had existing rows edited in place.  Secondary indexes ride along: appends insert into every live
index, rebuilds drop them to be lazily rebuilt on next probe.

**Typed arrays.**  INTEGER columns live in ``array('q')`` and REAL
columns in ``array('d')`` while their values fit (no NULLs, no
out-of-range ints); a column silently *demotes* to a plain Python list
the first time a value cannot be stored natively.  Reads are
value-identical either way — ``array('d')`` round-trips any Python float
and ``array('q')`` any 64-bit int — which the differential suite
(:mod:`tests.sqldb.test_engine_properties`) relies on.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any, Iterator

from repro.sqldb.indexes import BPlusTreeIndex, HashIndex

if TYPE_CHECKING:
    from repro.sqldb.table import Table

# SQL type → array.array typecode for the native fast path.  TEXT and
# BOOLEAN stay as lists: strings have no fixed-width typecode, and a
# BOOLEAN read back from a numeric array would be ``1``, not ``True`` —
# value-equal but not identical to what the row-scan engine projects.
_TYPECODES = {
    "INTEGER": "q",
    "INT": "q",
    "REAL": "d",
    "FLOAT": "d",
    "DOUBLE": "d",
}


class ColumnVector:
    """One column's values: a typed array while possible, a list after demotion.

    Supports exactly the operations the compiled path needs — append,
    subscript, iteration, length — so swapping the backing storage is
    invisible to callers.  Native storage demands the exact Python type
    (``int`` for ``'q'``, ``float`` for ``'d'``): ``array`` would happily
    coerce ``True`` to ``1`` or ``3`` to ``3.0``, and a coerced read-back
    would no longer be identical to what the row-scan engine projects.
    """

    __slots__ = ("_data", "_pytype", "typed")

    def __init__(self, sql_type: str):
        typecode = _TYPECODES.get(sql_type.upper())
        self.typed = typecode is not None
        self._pytype = int if typecode == "q" else float
        self._data: Any = array(typecode) if self.typed else []

    def append(self, value: Any) -> None:
        if self.typed:
            if type(value) is self._pytype:
                try:
                    self._data.append(value)
                    return
                except OverflowError:  # an int outside 64 bits
                    pass
            # NULL, a foreign type, or an overflow: demote to a plain list.
            self._data = list(self._data)
            self.typed = False
        self._data.append(value)

    def __getitem__(self, index: int) -> Any:
        return self._data[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)


class ColumnStore:
    """Columnar mirror of one :class:`~repro.sqldb.table.Table` plus indexes.

    Derived state: nothing here is part of a client snapshot
    (:meth:`repro.core.client.Client.export_state` ships raw rows only) —
    a restored client's store rebuilds lazily on first query and then
    maintains itself incrementally, and the differential suite asserts
    the two lifecycles answer probes identically.
    """

    __slots__ = (
        "_names",
        "_types",
        "_vectors",
        "_rows_ref",
        "_mutations",
        "_count",
        "_hash",
        "_trees",
        "rebuilds",
        "appended_rows",
    )

    def __init__(self, table: "Table"):
        self._names = [column.name for column in table.columns]
        self._types = [column.sql_type for column in table.columns]
        self._vectors: dict[str, ColumnVector] = {}
        self._rows_ref: list | None = None
        self._mutations = 0
        self._count = 0
        self._hash: dict[str, HashIndex] = {}
        self._trees: dict[str, BPlusTreeIndex] = {}
        # Observability: the maintenance tests pin that append streams
        # never trigger a rebuild.
        self.rebuilds = 0
        self.appended_rows = 0
        self._rebuild(table)

    # -- maintenance ---------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of rows currently mirrored."""
        return self._count

    def sync(self, table: "Table") -> None:
        """Bring the store up to date with the table's row list.

        O(1) when clean.  Appends (same list object, untouched mutation
        counter, larger) extend the vectors and live indexes
        incrementally; anything else — the list replaced (DELETE),
        shrunk, or edited in place (the ``_RowList`` mutation counter
        moved) — rebuilds from scratch.
        """
        rows = table.rows
        if rows is self._rows_ref and getattr(rows, "mutations", 0) == self._mutations:
            if len(rows) == self._count:
                return
            if len(rows) > self._count:
                self._append(rows, self._count)
                return
        self._rebuild(table)

    def _rebuild(self, table: "Table") -> None:
        self._vectors = {
            name: ColumnVector(sql_type)
            for name, sql_type in zip(self._names, self._types)
        }
        # Indexes are dropped, not replayed: the next probe rebuilds them
        # from the fresh vectors in one pass.
        self._hash.clear()
        self._trees.clear()
        self._rows_ref = table.rows
        self._mutations = getattr(table.rows, "mutations", 0)
        self._count = 0
        self.rebuilds += 1
        self._append(table.rows, 0)

    def _append(self, rows: list, start: int) -> None:
        vectors = [self._vectors[name] for name in self._names]
        columns = [
            (index, name)
            for index, name in enumerate(self._names)
            if name in self._hash or name in self._trees
        ]
        for row_id in range(start, len(rows)):
            row = rows[row_id]
            for vector, value in zip(vectors, row):
                vector.append(value)
            for column_index, name in columns:
                value = row[column_index]
                hash_index = self._hash.get(name)
                if hash_index is not None:
                    hash_index.insert(value, row_id)
                tree = self._trees.get(name)
                if tree is not None:
                    tree.insert(value, row_id)
        self.appended_rows += len(rows) - start
        self._count = len(rows)

    # -- columnar access -----------------------------------------------------

    def column(self, name: str) -> ColumnVector:
        """The parallel array of one column (exact name)."""
        return self._vectors[name]

    def has_column(self, name: str) -> bool:
        return name in self._vectors

    def arrays(self) -> dict[str, ColumnVector]:
        """Column name → vector, the namespace compiled closures evaluate in."""
        return self._vectors

    # -- secondary indexes ---------------------------------------------------

    def hash_index(self, name: str) -> HashIndex:
        """The column's hash index, built from the vectors on first use."""
        index = self._hash.get(name)
        if index is None:
            index = HashIndex()
            for row_id, value in enumerate(self._vectors[name]):
                index.insert(value, row_id)
            self._hash[name] = index
        return index

    def tree_index(self, name: str) -> BPlusTreeIndex:
        """The column's B+Tree index, built from the vectors on first use."""
        tree = self._trees.get(name)
        if tree is None:
            tree = BPlusTreeIndex()
            for row_id, value in enumerate(self._vectors[name]):
                tree.insert(value, row_id)
            self._trees[name] = tree
        return tree

    def index_stats(self) -> dict[str, tuple[int, int]]:
        """Column → (hash entries, tree size); observability for tests."""
        out: dict[str, tuple[int, int]] = {}
        for name in self._names:
            hash_index = self._hash.get(name)
            tree = self._trees.get(name)
            if hash_index is not None or tree is not None:
                out[name] = (
                    len(hash_index) if hash_index is not None else 0,
                    len(tree) if tree is not None else 0,
                )
        return out
