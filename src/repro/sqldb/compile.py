"""Predicate compiler: lowers a SELECT's WHERE clause once per process.

The row-scan engine re-walks the WHERE AST per row per query per client
(:func:`repro.sqldb.engine._evaluate`); a deployment answering N clients
× Q queries per epoch pays that interpretation N×Q times for the same
statement.  This module lowers each statement *once* into a
:class:`CompiledSelect` — an index probe plan plus a residual closure —
cached globally by ``(statement, schema)``, so every client sharing a
schema (all of them, in a PrivApprox deployment) reuses one compilation.
This is the same batch-vs-scalar-reference discipline used for
``randomize_vector`` and ``join_shares_batch``: the scan engine stays the
frozen reference, and the differential suite proves the compiled path
equal row-for-row.

**Probe selection.**  The WHERE clause is split into its top-level AND
conjuncts (the parser builds left-deep trees, so conjunct order equals
the scan engine's short-circuit evaluation order).  Only the *first*
conjunct may become an index probe: the scan engine stops evaluating a
row at its first false conjunct, so skipping later conjuncts for rows
the probe rejects is exactly what the reference does — whereas probing a
*later* conjunct would skip evaluations the reference performs (and
with them any per-row errors it would raise).  Probes:

* ``col = literal`` / ``literal = col`` → :class:`HashIndex` lookup
* ``col IN (...)`` → hash lookups unioned (``NULL`` choices match NULL
  rows, as ``value in choices`` does under the scan engine)
* ``col < | <= | > | >= literal`` and ``col BETWEEN lit AND lit`` →
  :class:`BPlusTreeIndex` range scan, only when the literal's type is
  comparable with the column's declared type — a mismatched pair must
  fall through to the residual closure so it raises the same
  ``TypeError`` the reference raises

Everything else — the remaining conjuncts, or the whole clause when the
first conjunct is not probeable — compiles to nested closures over the
columnar arrays with *identical* semantics to the scan evaluator,
``NULL`` propagation, unknown-column errors and all.
"""

from __future__ import annotations

import fnmatch
import operator
import threading
from collections import OrderedDict
from typing import Any, Callable, Sequence

from repro.sqldb import ast
from repro.sqldb.columnar import ColumnStore
from repro.sqldb.errors import ExecutionError


class CompileFallback(Exception):
    """The statement cannot be compiled; the caller must use the row scan."""


_COMPARISONS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

# Operator flips for ``literal op column`` probes: ``5 < x`` is ``x > 5``.
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!=", "<>": "<>"}

_NUMERIC_TYPES = frozenset({"INTEGER", "INT", "REAL", "FLOAT", "DOUBLE", "BOOLEAN", "BOOL"})
_TEXT_TYPES = frozenset({"TEXT", "VARCHAR"})

# fn(arrays, row_id) -> value, the compiled form of one AST expression.
ValueFn = Callable[[dict, int], Any]


class _SchemaView:
    """Column resolution for one schema, mirroring the scan engine's rules.

    A row dict's keys are the exact column names; ``ColumnRef`` lookup
    tries the exact name first, then a lowercased map where the *last*
    declaration wins (``{k.lower(): v for k, v in row.items()}`` keeps
    the final duplicate) — both reproduced here so compiled resolution
    agrees with the reference on every edge.
    """

    def __init__(self, schema: Sequence[tuple[str, str]]):
        self.names = [name for name, _ in schema]
        self.types = {name: sql_type for name, sql_type in schema}
        self._exact = set(self.names)
        self._lowered = {name.lower(): name for name in self.names}

    def resolve(self, name: str) -> str | None:
        """Storage name for a ColumnRef, or None when unknown."""
        if name in self._exact:
            return name
        return self._lowered.get(name.lower())

    def sql_type(self, storage_name: str) -> str:
        return self.types[storage_name].upper()


def _literal_comparable(sql_type: str, value: Any) -> bool:
    """Whether ordering ``column-value op literal`` can never raise.

    Range probes skip the scan engine's per-row evaluation entirely, so
    they are only legal when that evaluation is provably exception-free:
    the column's declared type and the literal must order under Python
    without a ``TypeError``.  (Equality and ``IN`` never raise, so they
    need no gate.)  NaN literals cannot be produced by the SQL lexer.
    """
    if sql_type in _NUMERIC_TYPES:
        return isinstance(value, (int, float))
    if sql_type in _TEXT_TYPES:
        return isinstance(value, str)
    return False


# -- expression lowering -------------------------------------------------------


def _unknown_column(name: str) -> ValueFn:
    def raise_unknown(arrays: dict, row_id: int) -> Any:
        raise ExecutionError(f"unknown column in expression: {name}")

    return raise_unknown


def _compile_value(node: Any, schema: _SchemaView) -> ValueFn:
    """Lower one expression node into a closure over the columnar arrays.

    Each closure reproduces :func:`repro.sqldb.engine._evaluate_value` on
    one row exactly — including evaluation order, NULL propagation, and
    errors raised mid-row — with the row dict replaced by positional
    reads from the parallel arrays.
    """
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda arrays, row_id: value
    if isinstance(node, ast.ColumnRef):
        storage = schema.resolve(node.name)
        if storage is None:
            return _unknown_column(node.name)
        return lambda arrays, row_id: arrays[storage][row_id]
    if isinstance(node, ast.Comparison):
        compare = _COMPARISONS.get(node.operator)
        if compare is None:
            raise CompileFallback(f"unsupported comparison operator: {node.operator}")
        left = _compile_value(node.left, schema)
        right = _compile_value(node.right, schema)

        def compiled_comparison(arrays: dict, row_id: int) -> bool:
            left_value = left(arrays, row_id)
            right_value = right(arrays, row_id)
            if left_value is None or right_value is None:
                return False
            return compare(left_value, right_value)

        return compiled_comparison
    if isinstance(node, ast.BooleanOp):
        left = _compile_value(node.left, schema)
        right = _compile_value(node.right, schema)
        if node.operator == "AND":
            return lambda arrays, row_id: (
                bool(left(arrays, row_id)) and bool(right(arrays, row_id))
            )
        return lambda arrays, row_id: (
            bool(left(arrays, row_id)) or bool(right(arrays, row_id))
        )
    if isinstance(node, ast.NotOp):
        operand = _compile_value(node.operand, schema)
        return lambda arrays, row_id: not bool(operand(arrays, row_id))
    if isinstance(node, ast.BetweenOp):
        value_fn = _compile_value(node.operand, schema)
        low_fn = _compile_value(node.low, schema)
        high_fn = _compile_value(node.high, schema)

        def compiled_between(arrays: dict, row_id: int) -> bool:
            # Evaluation order matches the scan engine: operand, low,
            # high are all evaluated before the NULL check, so an
            # unknown-column error in a bound surfaces even for NULL rows.
            value = value_fn(arrays, row_id)
            low = low_fn(arrays, row_id)
            high = high_fn(arrays, row_id)
            if value is None:
                return False
            return low <= value <= high

        return compiled_between
    if isinstance(node, ast.InOp):
        value_fn = _compile_value(node.operand, schema)
        choices = node.choices
        return lambda arrays, row_id: value_fn(arrays, row_id) in choices
    if isinstance(node, ast.IsNullOp):
        value_fn = _compile_value(node.operand, schema)
        if node.negated:
            return lambda arrays, row_id: value_fn(arrays, row_id) is not None
        return lambda arrays, row_id: value_fn(arrays, row_id) is None
    if isinstance(node, ast.LikeOp):
        value_fn = _compile_value(node.operand, schema)
        pattern = node.pattern.replace("%", "*").replace("_", "?")

        def compiled_like(arrays: dict, row_id: int) -> bool:
            value = value_fn(arrays, row_id)
            if value is None:
                return False
            # Same call as the reference (not a pre-translated regex):
            # fnmatch's platform case-folding must match exactly.
            return fnmatch.fnmatch(str(value), pattern)

        return compiled_like
    raise CompileFallback(f"unsupported expression node: {type(node).__name__}")


# -- index probes -------------------------------------------------------------


class _EmptyProbe:
    """A probe that can never match (e.g. ``col = NULL``)."""

    def ids(self, store: ColumnStore) -> list[int]:
        return []

    def describe(self) -> str:
        return "empty"


class _EqProbe:
    """``col = literal`` via the column's hash index."""

    def __init__(self, column: str, value: Any):
        self.column = column
        self.value = value

    def ids(self, store: ColumnStore) -> list[int]:
        return store.hash_index(self.column).lookup(self.value)

    def describe(self) -> str:
        return f"hash-eq({self.column})"


class _InProbe:
    """``col IN (...)`` via unioned hash lookups."""

    def __init__(self, column: str, choices: tuple):
        self.column = column
        self.choices = choices

    def ids(self, store: ColumnStore) -> list[int]:
        index = store.hash_index(self.column)
        matched: set[int] = set()
        for choice in self.choices:
            matched.update(index.lookup(choice))
        return sorted(matched)

    def describe(self) -> str:
        return f"hash-in({self.column})"


class _RangeProbe:
    """Range comparison / BETWEEN via the column's B+Tree index."""

    def __init__(self, column, low, high, low_inclusive, high_inclusive):
        self.column = column
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def ids(self, store: ColumnStore) -> list[int]:
        return store.tree_index(self.column).range_ids(
            self.low, self.high, self.low_inclusive, self.high_inclusive
        )

    def describe(self) -> str:
        return f"tree-range({self.column})"


def _split_conjuncts(node: Any) -> list:
    """Flatten a left-deep AND tree into scan-evaluation order."""
    if isinstance(node, ast.BooleanOp) and node.operator == "AND":
        return _split_conjuncts(node.left) + _split_conjuncts(node.right)
    return [node]


def _column_and_literal(node: ast.Comparison, schema: _SchemaView):
    """Match ``col op literal`` or ``literal op col`` (operator flipped)."""
    if isinstance(node.left, ast.ColumnRef) and isinstance(node.right, ast.Literal):
        storage = schema.resolve(node.left.name)
        if storage is not None:
            return storage, node.operator, node.right.value
    if isinstance(node.left, ast.Literal) and isinstance(node.right, ast.ColumnRef):
        storage = schema.resolve(node.right.name)
        if storage is not None:
            return storage, _FLIPPED[node.operator], node.left.value
    return None


def _probe_for(conjunct: Any, schema: _SchemaView):
    """An index probe equivalent to the conjunct, or None.

    Soundness bar: the probe must select *exactly* the rows on which the
    scan engine evaluates the conjunct truthy, and the scan evaluation
    of this conjunct must be provably exception-free on every row (the
    probe never evaluates it).
    """
    if isinstance(conjunct, ast.Comparison):
        match = _column_and_literal(conjunct, schema)
        if match is None:
            return None
        column, op, value = match
        if op == "=":
            if value is None:
                return _EmptyProbe()  # NULL = NULL is false under _compare
            return _EqProbe(column, value)
        if op in ("<", "<="):
            if not _literal_comparable(schema.sql_type(column), value):
                return None
            return _RangeProbe(column, None, value, True, op == "<=")
        if op in (">", ">="):
            if not _literal_comparable(schema.sql_type(column), value):
                return None
            return _RangeProbe(column, value, None, op == ">=", True)
        return None  # != benefits nothing from an index
    if isinstance(conjunct, ast.BetweenOp):
        if not (
            isinstance(conjunct.operand, ast.ColumnRef)
            and isinstance(conjunct.low, ast.Literal)
            and isinstance(conjunct.high, ast.Literal)
        ):
            return None
        storage = schema.resolve(conjunct.operand.name)
        if storage is None:
            return None
        sql_type = schema.sql_type(storage)
        low, high = conjunct.low.value, conjunct.high.value
        if not (
            _literal_comparable(sql_type, low) and _literal_comparable(sql_type, high)
        ):
            return None
        return _RangeProbe(storage, low, high, True, True)
    if isinstance(conjunct, ast.InOp):
        if not isinstance(conjunct.operand, ast.ColumnRef):
            return None
        storage = schema.resolve(conjunct.operand.name)
        if storage is None:
            return None
        return _InProbe(storage, conjunct.choices)
    return None


# -- the compiled plan --------------------------------------------------------


class CompiledSelect:
    """One statement's lowered row-selection plan, bound to a schema.

    Stateless with respect to any particular table *instance*: the plan
    captures column names and closures only, so every client database
    sharing the schema evaluates the same plan over its own
    :class:`~repro.sqldb.columnar.ColumnStore`.
    """

    def __init__(self, statement: ast.SelectStatement, schema: _SchemaView):
        self.statement = statement
        self.schema = schema
        self.probe = None
        self.residual: ValueFn | None = None
        where = statement.where
        if where is not None:
            conjuncts = _split_conjuncts(where)
            self.probe = _probe_for(conjuncts[0], schema)
            rest = conjuncts[1:] if self.probe is not None else conjuncts
            if rest:
                compiled = [_compile_value(conjunct, schema) for conjunct in rest]
                if len(compiled) == 1:
                    single = compiled[0]

                    def residual(arrays: dict, row_id: int) -> bool:
                        return bool(single(arrays, row_id))

                else:

                    def residual(arrays: dict, row_id: int) -> bool:
                        # all() short-circuits left-to-right, matching the
                        # scan engine's nested-AND evaluation order.
                        return all(bool(fn(arrays, row_id)) for fn in compiled)

                self.residual = residual

    def matching_ids(self, store: ColumnStore):
        """Row ids satisfying WHERE, ascending (row order).

        Returns a ``range`` for match-all clauses; otherwise a list.  The
        list may alias index internals when a bare probe matches — treat
        it as read-only.
        """
        if self.statement.where is None:
            return range(store.count)
        if self.probe is not None:
            ids = self.probe.ids(store)
            if self.residual is None:
                return ids
            arrays = store.arrays()
            residual = self.residual
            return [row_id for row_id in ids if residual(arrays, row_id)]
        arrays = store.arrays()
        residual = self.residual
        return [row_id for row_id in range(store.count) if residual(arrays, row_id)]

    def matching_ids_per_client(self, arena) -> list:
        """One probe over a whole shard's arena, split back per member slot.

        ``arena`` is an :class:`~repro.sqldb.columnar.ArenaTable`.  Returns
        one entry per member slot: a list/array of arena row ids satisfying
        WHERE (ascending — arena ids within a slot follow that member's
        local row order), an ``Exception`` the member's own evaluation
        would have raised (residual errors stay per-member: a bad row in
        one member's table must not poison its neighbors), or ``None`` for
        excluded slots (missing table / mixed schema — answered
        per-client by the caller).

        Probe semantics are exactly :meth:`matching_ids` per member: the
        probe selects the rows on which the first conjunct is truthy, the
        residual is then evaluated only on those rows, in each member's
        row order — so per-member results *and* per-member errors match a
        member-by-member evaluation outcome-for-outcome.
        """
        slot_rows = arena.slot_rows
        if self.statement.where is None:
            # Each member matches all of its own rows; the spans are the
            # answer (read-only aliases of the arena's span table).
            return list(slot_rows)
        arrays = arena.arrays()
        residual = self.residual
        if self.probe is not None:
            row_slot = arena.row_slot
            buckets: list = [None if ids is None else [] for ids in slot_rows]
            for row_id in self.probe.ids(arena):
                buckets[row_slot[row_id]].append(row_id)
            if residual is None:
                return buckets
            return [
                bucket
                if bucket is None
                else _filter_residual(residual, arrays, bucket)
                for bucket in buckets
            ]
        return [
            ids if ids is None else _filter_residual(residual, arrays, ids)
            for ids in slot_rows
        ]

    def describe(self) -> str:
        """Human-readable plan shape (tests and debugging)."""
        if self.statement.where is None:
            return "all"
        parts = []
        if self.probe is not None:
            parts.append(self.probe.describe())
        if self.residual is not None:
            parts.append("residual")
        return "+".join(parts) if parts else "all"


def _filter_residual(residual: ValueFn, arrays: dict, row_ids):
    """Filter one member's candidate ids through the residual closure.

    Returns the surviving ids, or the first exception the residual raised
    — the same exception, at the same row, that a member-by-member
    evaluation would surface (the per-member comprehension in
    :meth:`CompiledSelect.matching_ids` dies at its first error too).
    """
    try:
        return [row_id for row_id in row_ids if residual(arrays, row_id)]
    except Exception as exc:  # noqa: BLE001 — error parity is the contract
        return exc


# One plan per (statement, schema) per process.  Bounded LRU: a runaway
# workload (the fuzz suite generates thousands of distinct statements)
# must not grow the cache without limit, but eviction is oldest-first —
# the hot steady-state plans (a handful of statements shared by every
# client, and shard-wide by the arena path) survive any number of cold
# compilations.  The lock makes lookup/insert safe under the thread-pool
# and pipelined-overlap schedulers, whose answer tasks compile from
# worker threads.
_PLAN_CACHE: OrderedDict = OrderedDict()
_PLAN_CACHE_MAX = 512
_PLAN_CACHE_LOCK = threading.Lock()
_FALLBACK = object()


def schema_signature(columns) -> tuple:
    """Hashable schema identity: ordered (name, declared type) pairs."""
    return tuple((column.name, column.sql_type.upper()) for column in columns)


def _store_plan(key, value) -> None:
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE[key] = value
        _PLAN_CACHE.move_to_end(key)
        while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)


def plan_for(statement: ast.SelectStatement, columns) -> CompiledSelect:
    """The cached compiled plan for a statement against a schema.

    Raises :class:`CompileFallback` when the statement cannot be
    compiled (the negative result is cached too, and kept warm by the
    same LRU discipline).  Compilation happens outside the lock — two
    threads racing on a cold key may both compile, and the last insert
    wins; plans are stateless, so either copy is correct.
    """
    key = (statement, schema_signature(columns))
    with _PLAN_CACHE_LOCK:
        cached = _PLAN_CACHE.get(key)
        if cached is not None:
            _PLAN_CACHE.move_to_end(key)
    if cached is _FALLBACK:
        raise CompileFallback("statement previously failed to compile")
    if cached is not None:
        return cached
    schema = _SchemaView([(column.name, column.sql_type) for column in columns])
    try:
        plan = CompiledSelect(statement, schema)
    except CompileFallback:
        _store_plan(key, _FALLBACK)
        raise
    _store_plan(key, plan)
    return plan
