"""Secondary index structures for the mini SQL engine.

Two index kinds back the compiled answer path
(:mod:`repro.sqldb.compile`):

* :class:`HashIndex` — value → row ids, serving equality and ``IN``
  probes in O(1) per key.
* :class:`BPlusTreeIndex` — an order-``M`` B+Tree whose leaves form a
  linked list, serving range probes (``<``, ``<=``, ``>``, ``>=``,
  ``BETWEEN``) in O(log n + k).

Both are built per predicate column on first use by a
:class:`~repro.sqldb.columnar.ColumnStore` and maintained *incrementally*
as rows append (the resident runtime streams rows into client tables via
:class:`~repro.runtime.wire.ShardDelta` frames); the differential suite
asserts an incrementally maintained index answers every probe exactly
like one rebuilt from scratch.

NULL handling mirrors the row-scan engine's comparison semantics
(:func:`repro.sqldb.engine._compare`): ``NULL`` never satisfies a
comparison, so ``None`` keys (and non-self-equal keys, i.e. NaN, which
would corrupt the tree's ordering invariant) are kept out of the tree and
never returned by a range probe.  The hash index stores ``None`` as an
ordinary key because ``IN (NULL, ...)`` *does* match NULL rows under the
scan engine's ``value in choices`` semantics; plain ``= NULL`` probes are
suppressed by the compiler instead (``NULL = NULL`` is false).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator


class HashIndex:
    """value → ascending row ids, for equality and ``IN`` probes.

    Row ids are appended in insertion order, which is row order, so each
    per-key list is already sorted ascending.
    """

    __slots__ = ("_rows", "entries")

    def __init__(self) -> None:
        self._rows: dict[Any, list[int]] = {}
        self.entries = 0

    def insert(self, key: Any, row_id: int) -> None:
        rows = self._rows.get(key)
        if rows is None:
            self._rows[key] = [row_id]
        else:
            rows.append(row_id)
        self.entries += 1

    def lookup(self, key: Any) -> list[int]:
        """Row ids whose stored value equals ``key`` (ascending)."""
        return self._rows.get(key, [])

    def keys(self) -> Iterator[Any]:
        return iter(self._rows)

    def __len__(self) -> int:
        return self.entries


class _Leaf:
    """A B+Tree leaf: sorted unique keys, row-id lists, next-leaf link."""

    __slots__ = ("keys", "vals", "next")

    def __init__(self, keys: list, vals: list, nxt: "_Leaf | None"):
        self.keys = keys
        self.vals = vals
        self.next = nxt


class _Inner:
    """An internal node: separator keys and ``len(keys) + 1`` children."""

    __slots__ = ("keys", "children")

    def __init__(self, keys: list, children: list):
        self.keys = keys
        self.children = children


class BPlusTreeIndex:
    """An order-``M`` B+Tree over one column, serving range probes.

    ``order`` bounds the keys per leaf and children per internal node;
    nodes split at the midpoint when they overflow.  Duplicate keys share
    one leaf slot holding the list of row ids (insertion order, i.e. row
    order).  Leaves are chained left-to-right so a range scan descends
    once and then walks sequentially.
    """

    __slots__ = ("order", "_root", "_unordered", "size")

    def __init__(self, order: int = 32):
        if order < 3:
            raise ValueError(f"B+Tree order must be at least 3, got {order}")
        self.order = order
        self._root: _Leaf | _Inner = _Leaf([], [], None)
        # None and NaN keys: never comparable, never returned by a probe.
        self._unordered: list[int] = []
        self.size = 0

    # -- maintenance ---------------------------------------------------------

    def insert(self, key: Any, row_id: int) -> None:
        if key is None or key != key:  # noqa: PLR0124 — NaN is not self-equal
            self._unordered.append(row_id)
            return
        split = self._insert(self._root, key, row_id)
        if split is not None:
            separator, right = split
            self._root = _Inner([separator], [self._root, right])
        self.size += 1

    def _insert(self, node, key, row_id):
        """Insert below ``node``; return ``(separator, new_right)`` on split."""
        if isinstance(node, _Leaf):
            position = bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.vals[position].append(row_id)
                return None
            node.keys.insert(position, key)
            node.vals.insert(position, [row_id])
            if len(node.keys) <= self.order:
                return None
            middle = len(node.keys) // 2
            right = _Leaf(node.keys[middle:], node.vals[middle:], node.next)
            del node.keys[middle:]
            del node.vals[middle:]
            node.next = right
            return right.keys[0], right
        position = bisect_right(node.keys, key)
        split = self._insert(node.children[position], key, row_id)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(position, separator)
        node.children.insert(position + 1, right)
        if len(node.children) <= self.order:
            return None
        middle = len(node.keys) // 2
        separator_up = node.keys[middle]
        right_inner = _Inner(node.keys[middle + 1 :], node.children[middle + 1 :])
        del node.keys[middle:]
        del node.children[middle + 1 :]
        return separator_up, right_inner

    # -- probes --------------------------------------------------------------

    def _first_leaf(self) -> _Leaf:
        node = self._root
        while not isinstance(node, _Leaf):
            node = node.children[0]
        return node

    def _leaf_for(self, key) -> _Leaf:
        node = self._root
        while not isinstance(node, _Leaf):
            node = node.children[bisect_right(node.keys, key)]
        return node

    def lookup(self, key: Any) -> list[int]:
        """Row ids whose key equals ``key`` (ascending); NULL/NaN never match."""
        if key is None or key != key:  # noqa: PLR0124
            return []
        leaf = self._leaf_for(key)
        position = bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return leaf.vals[position]
        return []

    def range_ids(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids with ``low (<|<=) key (<|<=) high``, sorted ascending.

        ``None`` bounds are open ends.  NULL/NaN rows never appear (the
        scan engine's comparisons are false for them).
        """
        out: list[int] = []
        if low is None:
            leaf: _Leaf | None = self._first_leaf()
            position = 0
        else:
            leaf = self._leaf_for(low)
            if low_inclusive:
                position = bisect_left(leaf.keys, low)
            else:
                position = bisect_right(leaf.keys, low)
        while leaf is not None:
            keys = leaf.keys
            while position < len(keys):
                key = keys[position]
                if high is not None:
                    if high_inclusive:
                        if key > high:
                            out.sort()
                            return out
                    elif key >= high:
                        out.sort()
                        return out
                out.extend(leaf.vals[position])
                position += 1
            leaf = leaf.next
            position = 0
        out.sort()
        return out

    # -- introspection (tests, invariant checks) ----------------------------

    def keys(self) -> list:
        """All ordered keys, ascending (excludes NULL/NaN)."""
        out = []
        leaf: _Leaf | None = self._first_leaf()
        while leaf is not None:
            out.extend(leaf.keys)
            leaf = leaf.next
        return out

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not isinstance(node, _Leaf):
            depth += 1
            node = node.children[0]
        return depth

    def check_invariants(self) -> None:
        """Assert structural invariants (tests only; O(n))."""
        keys = self.keys()
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(keys) == len(set(keys)), "duplicate key slots"
        self._check_node(self._root, None, None, is_root=True)

    def _check_node(self, node, low, high, is_root=False) -> None:
        if isinstance(node, _Leaf):
            assert len(node.keys) == len(node.vals)
            assert len(node.keys) <= self.order
            for key in node.keys:
                assert low is None or key >= low
                assert high is None or key < high
            return
        assert len(node.children) == len(node.keys) + 1
        assert len(node.children) <= self.order
        if not is_root:
            assert len(node.keys) >= 1
        bounds = [low, *node.keys, high]
        for index, child in enumerate(node.children):
            self._check_node(child, bounds[index], bounds[index + 1])

    def __len__(self) -> int:
        return self.size
