"""Execution engine for the mini SQL database.

Two SELECT paths share one semantics:

* the **row scan** (:meth:`Database._execute_select_scan`) — the frozen
  reference, interpreting the WHERE AST per row dict; and
* the **compiled columnar** path (:meth:`Database._execute_select_compiled`)
  — index probes plus closures from :mod:`repro.sqldb.compile` evaluated
  over each table's :class:`~repro.sqldb.columnar.ColumnStore`.

The compiled path is the default; ``SQLDB_FORCE_SCAN=1`` in the
environment (or ``Database.force_scan = True``) pins the reference, and
statements the compiler cannot lower fall back to it automatically.  The
differential suite in ``tests/sqldb/test_engine_properties.py`` holds the
two paths row-for-row equal.
"""

from __future__ import annotations

import fnmatch
import os
from typing import Any

from repro.sqldb import ast
from repro.sqldb.compile import CompiledSelect, CompileFallback, plan_for
from repro.sqldb.errors import ExecutionError, SchemaError
from repro.sqldb.parser import parse_statement, parse_statement_cached
from repro.sqldb.table import Column, Table


def _env_flag(name: str) -> bool:
    """Whether an environment switch is set (checked per call, never cached,
    so tests and operators can flip it mid-process)."""
    return os.environ.get(name, "") not in ("", "0", "false", "False")


def per_client_forced() -> bool:
    """Whether ``SQLDB_FORCE_PER_CLIENT`` pins the per-client compiled path.

    The middle oracle of the differential ladder: arena answering is
    disabled, but each client still answers on its own compiled columnar
    path (``SQLDB_FORCE_SCAN`` pins the row-scan reference below both).
    """
    return _env_flag("SQLDB_FORCE_PER_CLIENT")


def arena_answering_enabled() -> bool:
    """Whether the shard-wide arena answer path may be used at all."""
    return not per_client_forced() and not _env_flag("SQLDB_FORCE_SCAN")


#: Slot-level fallback marker from :func:`arena_select_per_client`: this
#: member must answer the statement itself (missing table, mixed schema,
#: or a per-database ``force_scan`` pin).
ARENA_FALLBACK = object()


class ResultSet:
    """Result of a SELECT: ordered column names plus a list of row tuples."""

    def __init__(self, columns: list[str], rows: list[tuple]):
        self.columns = columns
        self.rows = rows

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a one-row one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() requires a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExecutionError(f"result has no column {name}")
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Database:
    """An in-memory SQL database holding a set of named tables."""

    def __init__(self, name: str = "local"):
        self.name = name
        self._tables: dict[str, Table] = {}
        # Pins the row-scan reference path for this database regardless of
        # the SQLDB_FORCE_SCAN environment switch.
        self.force_scan = False

    # -- schema management ---------------------------------------------------

    def create_table(self, name: str, columns: list[tuple[str, str]]) -> Table:
        """Create a table from (column name, SQL type) pairs."""
        if name in self._tables:
            raise SchemaError(f"table {name} already exists")
        table = Table(name=name, columns=[Column(n, t) for n, t in columns])
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"table {name} does not exist")
        del self._tables[name]

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise SchemaError(f"table {name} does not exist")
        return self._tables[name]

    def get_table(self, name: str) -> Table | None:
        """The named table, or ``None`` when absent (no exception).

        The shard-arena builder (:mod:`repro.sqldb.columnar`) probes many
        member databases for the same table name; members without it are
        excluded rather than erroring.
        """
        return self._tables.get(name)

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def insert_rows(self, table_name: str, records: list[dict[str, Any]]) -> int:
        """Bulk-insert dictionaries into a table; returns the number inserted."""
        table = self.table(table_name)
        for record in records:
            table.insert_dict(record)
        return len(records)

    def sync_columnar(self) -> None:
        """Incrementally sync every existing columnar mirror with its table.

        Tables whose mirror has not been built yet are skipped — they
        stay lazy until first queried.  The resident runtime calls this
        after applying each ``ShardDelta`` so index maintenance happens
        at ingest time, off the answer critical path.
        """
        for table in self._tables.values():
            table.sync_store()

    def _scan_forced(self) -> bool:
        """Whether the row-scan reference path is pinned.

        Checked per statement (not cached) so tests and operators can
        flip ``SQLDB_FORCE_SCAN`` mid-process; any value other than
        empty/``0``/``false`` pins the scan.
        """
        if self.force_scan:
            return True
        return _env_flag("SQLDB_FORCE_SCAN")

    # -- statement execution ---------------------------------------------------

    def execute(self, sql: str) -> ResultSet | int:
        """Execute one SQL statement.

        SELECT returns a :class:`ResultSet`; INSERT/DELETE return the number of
        affected rows; CREATE/DROP return 0.
        """
        if self._scan_forced():
            statement = parse_statement(sql)
        else:
            statement = parse_statement_cached(sql)
        if isinstance(statement, ast.SelectStatement):
            return self._execute_select(statement)
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, ast.CreateTableStatement):
            self.create_table(statement.table, list(statement.columns))
            return 0
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement)
        if isinstance(statement, ast.DropTableStatement):
            self.drop_table(statement.table)
            return 0
        raise ExecutionError(f"unsupported statement type: {type(statement).__name__}")

    def query(self, sql: str) -> ResultSet:
        """Execute a SELECT and return its result set."""
        result = self.execute(sql)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() requires a SELECT statement")
        return result

    # -- SELECT ------------------------------------------------------------------

    def _execute_select(self, stmt: ast.SelectStatement) -> ResultSet:
        table = self.table(stmt.table)
        if self._scan_forced():
            return self._execute_select_scan(stmt, table)
        try:
            plan = plan_for(stmt, table.columns)
        except CompileFallback:
            return self._execute_select_scan(stmt, table)
        return self._execute_select_compiled(stmt, plan, table)

    def _execute_select_scan(self, stmt: ast.SelectStatement, table: Table) -> ResultSet:
        """The frozen row-scan reference: one dict per row, AST walked per row."""
        rows = [row for row in table.scan() if _evaluate(stmt.where, row)]

        if stmt.group_by:
            return self._execute_grouped(stmt, rows)

        has_aggregate = any(isinstance(item, ast.Aggregate) for item in stmt.items)
        if has_aggregate:
            if any(isinstance(item, ast.SelectItem) for item in stmt.items):
                raise ExecutionError(
                    "mixing plain columns and aggregates requires GROUP BY"
                )
            columns = [_aggregate_label(item) for item in stmt.items]
            values = tuple(_compute_aggregate(item, rows) for item in stmt.items)
            return ResultSet(columns=columns, rows=[values])

        if stmt.select_star:
            out_columns = table.column_names
            projected = [tuple(row[c] for c in out_columns) for row in rows]
        else:
            out_columns = [item.alias or item.column for item in stmt.items]
            source_columns = [item.column for item in stmt.items]
            for column in source_columns:
                table.column_index(column)  # validate existence
            projected = [tuple(row[c] for c in source_columns) for row in rows]

        if stmt.order_by is not None:
            order_column = stmt.order_by.column
            if stmt.select_star or order_column in out_columns:
                sort_key_rows = list(zip(projected, rows))
                sort_key_rows.sort(
                    key=lambda pair: _sort_key(pair[1][order_column]),
                    reverse=stmt.order_by.descending,
                )
                projected = [pair[0] for pair in sort_key_rows]
            else:
                pairs = sorted(
                    zip(projected, rows),
                    key=lambda pair: _sort_key(pair[1].get(order_column)),
                    reverse=stmt.order_by.descending,
                )
                projected = [pair[0] for pair in pairs]

        if stmt.limit is not None:
            projected = projected[: stmt.limit]
        return ResultSet(columns=out_columns, rows=projected)

    def _execute_select_compiled(
        self, stmt: ast.SelectStatement, plan: CompiledSelect, table: Table
    ) -> ResultSet:
        """Evaluate a compiled plan over the table's columnar store."""
        store = table.column_store
        ids = plan.matching_ids(store)
        return _finish_compiled_select(stmt, table, store, ids)

    def _execute_grouped_compiled(
        self, stmt: ast.SelectStatement, store, ids
    ) -> ResultSet:
        return _grouped_compiled(stmt, store, ids)

    def _execute_grouped(self, stmt: ast.SelectStatement, rows: list[dict]) -> ResultSet:
        groups: dict[tuple, list[dict]] = {}
        for row in rows:
            key = tuple(row.get(col) for col in stmt.group_by)
            groups.setdefault(key, []).append(row)

        out_columns: list[str] = []
        for item in stmt.items:
            if isinstance(item, ast.SelectItem):
                if item.column not in stmt.group_by:
                    raise ExecutionError(
                        f"column {item.column} must appear in GROUP BY"
                    )
                out_columns.append(item.alias or item.column)
            else:
                out_columns.append(_aggregate_label(item))

        result_rows: list[tuple] = []
        for key in sorted(groups, key=lambda k: tuple(_sort_key(v) for v in k)):
            group_rows = groups[key]
            values = []
            for item in stmt.items:
                if isinstance(item, ast.SelectItem):
                    values.append(key[stmt.group_by.index(item.column)])
                else:
                    values.append(_compute_aggregate(item, group_rows))
            result_rows.append(tuple(values))
        if stmt.limit is not None:
            result_rows = result_rows[: stmt.limit]
        return ResultSet(columns=out_columns, rows=result_rows)

    # -- INSERT / DELETE -----------------------------------------------------------

    def _execute_insert(self, stmt: ast.InsertStatement) -> int:
        table = self.table(stmt.table)
        columns = list(stmt.columns) if stmt.columns is not None else None
        table.insert(list(stmt.values), column_names=columns)
        return 1

    def _execute_delete(self, stmt: ast.DeleteStatement) -> int:
        table = self.table(stmt.table)
        names = table.column_names
        kept: list[tuple] = []
        deleted = 0
        for row_tuple in table.rows:
            row = dict(zip(names, row_tuple))
            if _evaluate(stmt.where, row):
                deleted += 1
            else:
                kept.append(row_tuple)
        table.rows = kept
        return deleted


# -- expression evaluation ------------------------------------------------------


def _evaluate(expression, row: dict[str, Any]) -> bool:
    """Evaluate a WHERE expression against one row (None means 'match all')."""
    if expression is None:
        return True
    return bool(_evaluate_value(expression, row))


def _evaluate_value(node, row: dict[str, Any]):
    if isinstance(node, ast.Literal):
        return node.value
    if isinstance(node, ast.ColumnRef):
        if node.name not in row:
            lowered = {k.lower(): v for k, v in row.items()}
            if node.name.lower() in lowered:
                return lowered[node.name.lower()]
            raise ExecutionError(f"unknown column in expression: {node.name}")
        return row[node.name]
    if isinstance(node, ast.Comparison):
        left = _evaluate_value(node.left, row)
        right = _evaluate_value(node.right, row)
        return _compare(left, node.operator, right)
    if isinstance(node, ast.BooleanOp):
        if node.operator == "AND":
            return _evaluate(node.left, row) and _evaluate(node.right, row)
        return _evaluate(node.left, row) or _evaluate(node.right, row)
    if isinstance(node, ast.NotOp):
        return not _evaluate(node.operand, row)
    if isinstance(node, ast.BetweenOp):
        value = _evaluate_value(node.operand, row)
        low = _evaluate_value(node.low, row)
        high = _evaluate_value(node.high, row)
        if value is None:
            return False
        return low <= value <= high
    if isinstance(node, ast.InOp):
        value = _evaluate_value(node.operand, row)
        return value in node.choices
    if isinstance(node, ast.IsNullOp):
        value = _evaluate_value(node.operand, row)
        return (value is not None) if node.negated else (value is None)
    if isinstance(node, ast.LikeOp):
        value = _evaluate_value(node.operand, row)
        if value is None:
            return False
        pattern = node.pattern.replace("%", "*").replace("_", "?")
        return fnmatch.fnmatch(str(value), pattern)
    raise ExecutionError(f"unsupported expression node: {type(node).__name__}")


def _compare(left, operator: str, right) -> bool:
    if left is None or right is None:
        return False
    if operator == "=":
        return left == right
    if operator in ("!=", "<>"):
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise ExecutionError(f"unsupported comparison operator: {operator}")


def _sort_key(value):
    """Ordering key that tolerates None and mixed numeric values."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def _aggregate_label(item: ast.Aggregate) -> str:
    if item.alias:
        return item.alias
    argument = item.argument if item.argument is not None else "*"
    return f"{item.function.lower()}({argument})"


def _compute_aggregate_columnar(item: ast.Aggregate, store, ids) -> Any:
    """:func:`_compute_aggregate` over a ColumnStore and matching row ids.

    Mirrors the reference exactly: the argument column is read by exact
    name (``row.get`` semantics — an unknown or case-mismatched column
    yields ``None`` for every row, so COUNT gives 0 and the rest give
    ``None``), values are consumed in row order, and AVG is ``sum/len``
    for float-identical results.
    """
    if item.function == "COUNT" and item.argument is None:
        return len(ids)
    argument = item.argument
    if argument is None or not store.has_column(argument):
        return 0 if item.function == "COUNT" else None
    vector = store.column(argument)
    values = [vector[i] for i in ids if vector[i] is not None]
    if item.function == "COUNT":
        return len(values)
    if not values:
        return None
    if item.function == "SUM":
        return sum(values)
    if item.function == "AVG":
        return sum(values) / len(values)
    if item.function == "MIN":
        return min(values)
    if item.function == "MAX":
        return max(values)
    raise ExecutionError(f"unsupported aggregate: {item.function}")


def _compute_aggregate(item: ast.Aggregate, rows: list[dict]):
    if item.function == "COUNT":
        if item.argument is None:
            return len(rows)
        return sum(1 for row in rows if row.get(item.argument) is not None)
    values = [row.get(item.argument) for row in rows if row.get(item.argument) is not None]
    if not values:
        return None
    if item.function == "SUM":
        return sum(values)
    if item.function == "AVG":
        return sum(values) / len(values)
    if item.function == "MIN":
        return min(values)
    if item.function == "MAX":
        return max(values)
    raise ExecutionError(f"unsupported aggregate: {item.function}")


def _finish_compiled_select(
    stmt: ast.SelectStatement, table, store, ids
) -> ResultSet:
    """Turn matching row ids into a :class:`ResultSet` for a compiled SELECT.

    Shared by the per-client compiled path (``table`` is a
    :class:`~repro.sqldb.table.Table`, ``store`` its ``ColumnStore``) and
    the shard-wide arena path (both are the same
    :class:`~repro.sqldb.columnar.ArenaTable`, whose per-slot ids address
    arena rows directly).  Every branch mirrors
    :meth:`Database._execute_select_scan` exactly — including its error
    behavior: projection and ORDER BY read columns by *exact* name from
    the row dict (``KeyError`` when absent and rows matched), after
    case-insensitive validation via ``column_index`` (``SchemaError``
    takes precedence); aggregates and GROUP BY use ``row.get`` (missing
    column → ``None``).
    """
    if stmt.group_by:
        return _grouped_compiled(stmt, store, ids)

    has_aggregate = any(isinstance(item, ast.Aggregate) for item in stmt.items)
    if has_aggregate:
        if any(isinstance(item, ast.SelectItem) for item in stmt.items):
            raise ExecutionError(
                "mixing plain columns and aggregates requires GROUP BY"
            )
        columns = [_aggregate_label(item) for item in stmt.items]
        values = tuple(
            _compute_aggregate_columnar(item, store, ids) for item in stmt.items
        )
        return ResultSet(columns=columns, rows=[values])

    if stmt.select_star:
        out_columns = table.column_names
        # Stored row tuples are already in schema order: reuse them.
        source_rows = table.rows
        projected = [source_rows[i] for i in ids]
    else:
        out_columns = [item.alias or item.column for item in stmt.items]
        source_columns = [item.column for item in stmt.items]
        for column in source_columns:
            table.column_index(column)  # validate existence
        if ids:
            for column in source_columns:
                if not store.has_column(column):
                    raise KeyError(column)  # exact-name row access, as the scan does
            vectors = [store.column(column) for column in source_columns]
            projected = [tuple(vector[i] for vector in vectors) for i in ids]
        else:
            projected = []

    if stmt.order_by is not None:
        order_column = stmt.order_by.column
        if stmt.select_star or order_column in out_columns:
            if projected and not store.has_column(order_column):
                raise KeyError(order_column)
            if projected:
                order_vector = store.column(order_column)
                pairs = sorted(
                    zip(projected, ids),
                    key=lambda pair: _sort_key(order_vector[pair[1]]),
                    reverse=stmt.order_by.descending,
                )
                projected = [pair[0] for pair in pairs]
        else:
            order_vector = (
                store.column(order_column) if store.has_column(order_column) else None
            )
            pairs = sorted(
                zip(projected, ids),
                key=lambda pair: _sort_key(
                    order_vector[pair[1]] if order_vector is not None else None
                ),
                reverse=stmt.order_by.descending,
            )
            projected = [pair[0] for pair in pairs]

    if stmt.limit is not None:
        projected = projected[: stmt.limit]
    return ResultSet(columns=out_columns, rows=projected)


def _grouped_compiled(stmt: ast.SelectStatement, store, ids) -> ResultSet:
    group_vectors = [
        store.column(column) if store.has_column(column) else None
        for column in stmt.group_by
    ]
    groups: dict[tuple, list[int]] = {}
    for row_id in ids:
        key = tuple(
            vector[row_id] if vector is not None else None
            for vector in group_vectors
        )
        groups.setdefault(key, []).append(row_id)

    out_columns: list[str] = []
    for item in stmt.items:
        if isinstance(item, ast.SelectItem):
            if item.column not in stmt.group_by:
                raise ExecutionError(
                    f"column {item.column} must appear in GROUP BY"
                )
            out_columns.append(item.alias or item.column)
        else:
            out_columns.append(_aggregate_label(item))

    result_rows: list[tuple] = []
    for key in sorted(groups, key=lambda k: tuple(_sort_key(v) for v in k)):
        group_ids = groups[key]
        values = []
        for item in stmt.items:
            if isinstance(item, ast.SelectItem):
                values.append(key[stmt.group_by.index(item.column)])
            else:
                values.append(_compute_aggregate_columnar(item, store, group_ids))
        result_rows.append(tuple(values))
    if stmt.limit is not None:
        result_rows = result_rows[: stmt.limit]
    return ResultSet(columns=out_columns, rows=result_rows)


#: Lazily-computed shared-empty-outcome marker in :func:`arena_select_per_client`.
_UNSET = object()


def arena_select_per_client(arena, sql: str):
    """Answer one SELECT for every member of a shard in a single pass.

    Probes the shard's :class:`~repro.sqldb.columnar.ShardArena` once and
    splits the matching arena row ids back into per-member outcomes via
    the span table.  Returns a list aligned with ``arena.databases``
    where each entry is one of:

    * a :class:`ResultSet` — the member's answer, identical (row-for-row
      and error-for-error) to what ``member.query(sql)`` would produce;
    * an :class:`Exception` instance — the error that member's own
      evaluation would raise (residual-predicate errors are captured per
      slot; finishing errors likewise);
    * :data:`ARENA_FALLBACK` — this member must answer itself (its table
      is missing or schema-mismatched against the arena, or the database
      pins ``force_scan``).

    Returns ``None`` for statement-level fallbacks (unparsable SQL,
    non-SELECT, no member defines the table, or the compiler cannot
    lower the statement): the caller must let every member answer
    itself.  Draw-neutral by construction — SQL evaluation consumes no
    randomness, so hoisting it shard-wide cannot shift any client's RNG
    or keystream state.
    """
    try:
        statement = parse_statement_cached(sql)
    except Exception:  # noqa: BLE001 - parse errors fall back per client
        return None
    if not isinstance(statement, ast.SelectStatement):
        return None
    table = arena.table(statement.table)
    if table is None:
        return None
    try:
        plan = plan_for(statement, table.columns)
    except CompileFallback:
        return None

    ids_per_slot = plan.matching_ids_per_client(table)
    outcomes: list = []
    empty_outcome = _UNSET
    for db, ids in zip(arena.databases, ids_per_slot):
        if ids is None or db._scan_forced():
            outcomes.append(ARENA_FALLBACK)
            continue
        if isinstance(ids, BaseException):
            outcomes.append(ids)
            continue
        if len(ids) == 0:
            # The empty-ids outcome is a pure function of (statement,
            # arena schema): compute it once and share it across every
            # empty member — decisive at sparse selectivities.
            if empty_outcome is _UNSET:
                empty_outcome = _finish_outcome(statement, table, ())
            outcomes.append(empty_outcome)
            continue
        outcomes.append(_finish_outcome(statement, table, ids))
    return outcomes


def _finish_outcome(stmt: ast.SelectStatement, table, ids):
    """Finish one member's result, capturing the error instead of raising."""
    try:
        return _finish_compiled_select(stmt, table, table, ids)
    except Exception as exc:  # noqa: BLE001 - outcome parity with per-client
        return exc
