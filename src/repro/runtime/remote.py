"""Remote resident workers over TCP: wire v3 leaves the process boundary.

Every executor so far runs its shards in children of one parent process.
This module ships the resident bootstrap/delta/ack protocol
(:mod:`repro.runtime.wire`, :mod:`repro.runtime.affinity`) over real TCP
sockets, so shards run on worker processes that are launched separately —
on another terminal, another container, another machine:

* :class:`RemoteWorkerServer` — the worker side.  ``python -m repro.cli
  worker --listen HOST:PORT --key-file ...`` binds a listening socket,
  accepts one coordinator session at a time, and serves each sealed frame
  through the same :func:`~repro.runtime.affinity.serve_resident_frame`
  step the in-process pinned workers use.  The
  :class:`~repro.runtime.affinity.ResidentShardCache` outlives coordinator
  sessions: a coordinator that reconnects finds the resident state intact.
* :class:`RemoteWorkerTransport` — the coordinator side.  One authenticated
  connection per worker address, presenting exactly the
  :class:`~repro.runtime.affinity.StickyShardRouter` interface
  (``send``/``recv``/``worker_alive``/``dead_slots``/``replace``), so
  :class:`RemoteResidentExecutor` is the unchanged
  :class:`~repro.runtime.affinity.ResidentProcessExecutor` epoch logic with
  its router swapped for sockets.  Connect failures retry with bounded
  exponential backoff; a socket that dies mid-epoch surfaces as a dead
  worker and falls onto the existing checkpoint+replay re-bootstrap path.

**Authentication: every frame travels sealed.**  The wire-frame payloads are
pickle — arbitrary code execution on hostile bytes — so nothing reaches
``decode_frame`` until its MAC has verified.  The model follows the
pull-style authenticated RPC of ``qvm-remote``: a pre-shared per-worker key,
HMAC-SHA256 over every message, constant-time comparison, and the privileged
side (the coordinator) initiating all connections.  Concretely:

* the connection handshake exchanges HELLO messages carrying each side's
  wire version and a fresh 16-byte nonce, MAC'd under the pre-shared key
  (the worker's reply MACs the coordinator's nonce too, proving freshness);
  the negotiated version is the minimum of the two and must support the
  resident frame kinds (>= 3);
* both nonces derive a per-session MAC key, so a frame recorded on one
  connection can never replay on another;
* each sealed envelope is ``magic + direction + sequence + length`` followed
  by the frame bytes and a 32-byte HMAC-SHA256 over header-plus-frame.  The
  direction byte kills reflection; the sequence counter — monotonically
  increasing per direction, verified against the receiver's expectation —
  kills in-session replays and reorders.

The full normative layout lives in ``docs/WIRE.md``; launch, key
distribution and failure handling in ``docs/OPERATIONS.md``.

**Trust model unchanged.**  The sealed channel authenticates *mutually
trusted* coordinator/worker hosts to each other — the frames still carry
simulation-harness state (see the :mod:`repro.runtime.wire` warning), so a
remote worker is a stand-in for a fleet of simulated devices, never an
untrusted relay.  HMAC gives integrity and authenticity, not
confidentiality: run it over links you control (localhost, a private
network, a tunnel).
"""

from __future__ import annotations

import hashlib
import hmac
import os
import queue
import socket
import struct
import threading
import time

from repro.runtime.affinity import (
    _RECV_POLL_SECONDS,
    ResidentDriver,
    ResidentProcessExecutor,
    ResidentShardCache,
    ResidentWorkerError,
    serve_resident_frame,
)
from repro.runtime.engine import EpochHandle, StageDriver, StagedEpochEngine
from repro.runtime.sharding import Shard
from repro.runtime.wire import (
    WIRE_VERSION,
    ShardAck,
    ShardBatch,
    ShardTask,
    WireError,
    decode_frame,
    encode_shard_task,
)

# -- protocol constants -------------------------------------------------------

# Sealed envelope: magic, direction, sequence counter, frame length — then the
# frame bytes, then the 32-byte HMAC-SHA256 over header + frame.
ENVELOPE_MAGIC = b"PAWS"
_ENVELOPE_FORMAT = ">4sBQI"
_ENVELOPE_SIZE = struct.calcsize(_ENVELOPE_FORMAT)
_MAC_SIZE = hashlib.sha256().digest_size

DIRECTION_COORDINATOR = 0x43  # 'C': coordinator -> worker
DIRECTION_WORKER = 0x57  # 'W': worker -> coordinator

# HELLO: magic, role (direction byte of the sender), wire version, nonce.
HELLO_MAGIC = b"PAWH"
_HELLO_FORMAT = ">4sBB16s"
_HELLO_SIZE = struct.calcsize(_HELLO_FORMAT)
_NONCE_SIZE = 16

# The resident triple (bootstrap/delta/ack) only exists from wire v3 on; a
# peer that cannot speak it has nothing to say on this channel.
MIN_REMOTE_WIRE_VERSION = 3

# Hard ceiling on a declared frame length: a forged 4-byte length field must
# not be able to make the receiver allocate gigabytes.  Generous enough for
# bootstrap frames of very large shards.
MAX_FRAME_BYTES = 1 << 30

_SESSION_KEY_LABEL = b"privapprox-remote-session-v1"

# Keys shorter than this are rejected outright — an operator typo (an empty
# line, a truncated paste) must not silently become a guessable channel.
MIN_KEY_BYTES = 16
RECOMMENDED_KEY_BYTES = 32

# Coordinator-side reconnect policy: bounded exponential backoff.
_CONNECT_ATTEMPTS = 4
_BACKOFF_BASE_SECONDS = 0.05
_CONNECT_TIMEOUT_SECONDS = 5.0

# Worker-side accept/handshake pacing; short enough that stop() is prompt.
_ACCEPT_POLL_SECONDS = 0.2
_IDLE_POLL_SECONDS = 0.5
# A read that has made *some* progress tolerates short stalls (a congested
# link is not a dead peer) up to this bound of zero-progress seconds.
_READ_STALL_SECONDS = 30.0


class RemoteProtocolError(WireError):
    """A sealed envelope or handshake failed validation.

    Subclasses :class:`~repro.runtime.wire.WireError` so transport-layer
    corruption and frame-layer corruption surface through one exception
    family, with the same structured context (kind/declared length/offset).
    """


class RemoteWorkerUnavailable(ResidentWorkerError):
    """A remote worker could not be reached (connect/reconnect exhausted)."""


# -- keys ---------------------------------------------------------------------


def load_keys(path: str) -> list[bytes]:
    """Parse a key file: one hex-encoded key per line.

    Blank lines and ``#`` comments are skipped.  Each key must decode to at
    least :data:`MIN_KEY_BYTES` bytes (32 recommended; generate with
    ``python -c "import secrets; print(secrets.token_hex(32))"``).
    """
    keys = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                key = bytes.fromhex(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number}: key is not valid hex"
                ) from exc
            if len(key) < MIN_KEY_BYTES:
                raise ValueError(
                    f"{path}:{line_number}: key is {len(key)} bytes, "
                    f"need at least {MIN_KEY_BYTES} (use "
                    f"{RECOMMENDED_KEY_BYTES}-byte keys)"
                )
            keys.append(key)
    if not keys:
        raise ValueError(f"{path}: no keys found")
    return keys


def keys_for_workers(keys: list[bytes], num_workers: int) -> list[bytes]:
    """Assign coordinator-side keys to worker slots.

    Line ``i`` keys worker ``i``; a single-key file is shared by every
    worker (allowed, but per-worker keys are the recommended deployment —
    see ``docs/OPERATIONS.md``).
    """
    if len(keys) == 1:
        return [keys[0]] * num_workers
    if len(keys) < num_workers:
        raise ValueError(
            f"key file holds {len(keys)} keys for {num_workers} workers: "
            "provide one key per worker (line i keys worker i) or exactly one "
            "shared key"
        )
    return list(keys[:num_workers])


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``host:port`` (the CLI's ``--listen`` / ``--workers`` syntax)."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected host:port, got {text!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"invalid port in {text!r}") from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in {text!r}")
    return host, port


# -- sealed envelope primitives ------------------------------------------------


def derive_session_key(
    key: bytes, coordinator_nonce: bytes, worker_nonce: bytes
) -> bytes:
    """The per-session MAC key: HMAC(key, label || nonces).

    Binding both handshake nonces means a frame sealed on one connection can
    never verify on another, even under the same pre-shared key — the
    cross-session replay defense.
    """
    return hmac.new(
        key, _SESSION_KEY_LABEL + coordinator_nonce + worker_nonce, hashlib.sha256
    ).digest()


def seal_frame(
    session_key: bytes, direction: int, sequence: int, frame: bytes
) -> bytes:
    """Seal one wire frame into an authenticated envelope."""
    if len(frame) > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"frame of {len(frame)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "envelope ceiling"
        )
    header = struct.pack(
        _ENVELOPE_FORMAT, ENVELOPE_MAGIC, direction, sequence, len(frame)
    )
    mac = hmac.new(session_key, header + frame, hashlib.sha256).digest()
    return header + frame + mac


def _verify_envelope(
    session_key: bytes,
    direction: int,
    sequence: int,
    header: bytes,
    frame: bytes,
    mac: bytes,
    *,
    offset: int = 0,
) -> None:
    """Validate one received envelope; raises with stream context on failure.

    The MAC is checked (constant-time) before the direction and sequence
    fields are trusted — a forged header must not steer the error path.
    """
    magic, got_direction, got_sequence, length = struct.unpack(
        _ENVELOPE_FORMAT, header
    )
    if magic != ENVELOPE_MAGIC:
        raise RemoteProtocolError(
            f"bad envelope magic {magic!r}: not a sealed runtime frame",
            offset=offset,
        )
    expected = hmac.new(session_key, header + frame, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, mac):
        raise RemoteProtocolError(
            "envelope MAC verification failed (wrong key, tampered bytes, or "
            "bytes from another session)",
            declared_length=length,
            offset=offset,
        )
    if got_direction != direction:
        raise RemoteProtocolError(
            f"envelope direction {got_direction:#x} != expected {direction:#x} "
            "(reflected frame?)",
            declared_length=length,
            offset=offset + 4,
        )
    if got_sequence != sequence:
        raise RemoteProtocolError(
            f"envelope sequence {got_sequence} != expected {sequence} "
            "(replayed, dropped or reordered frame)",
            declared_length=length,
            offset=offset + 5,
        )


def open_frame(
    session_key: bytes, direction: int, sequence: int, data: bytes
) -> bytes:
    """Open one sealed envelope held fully in memory (the non-stream form).

    The streaming receive path (:class:`FrameChannel`) shares the same
    verification core; this function exists for tests and for transports
    that already have whole messages (a broker, a datagram).
    """
    if len(data) < _ENVELOPE_SIZE + _MAC_SIZE:
        raise RemoteProtocolError(
            f"sealed envelope too short: {len(data)} bytes", offset=len(data)
        )
    header = data[:_ENVELOPE_SIZE]
    length = struct.unpack(_ENVELOPE_FORMAT, header)[3]
    if length > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"envelope declares {length} frame bytes, exceeding the "
            f"{MAX_FRAME_BYTES}-byte ceiling",
            declared_length=length,
            offset=9,
        )
    if len(data) != _ENVELOPE_SIZE + length + _MAC_SIZE:
        raise RemoteProtocolError(
            f"envelope declares {length} frame bytes, got "
            f"{len(data) - _ENVELOPE_SIZE - _MAC_SIZE}",
            declared_length=length,
            offset=len(data),
        )
    frame = data[_ENVELOPE_SIZE : _ENVELOPE_SIZE + length]
    mac = data[_ENVELOPE_SIZE + length :]
    _verify_envelope(session_key, direction, sequence, header, frame, mac)
    return frame


# -- socket plumbing ------------------------------------------------------------


class _IdleTimeout(Exception):
    """A read timed out before any byte arrived (clean idle, not corruption)."""


def _recv_exact(
    sock: socket.socket,
    count: int,
    *,
    idle_ok: bool = False,
    mid_message: bool = False,
) -> bytes:
    """Read exactly ``count`` bytes from a socket.

    EOF mid-message is death and raises :class:`RemoteProtocolError`.  A
    timeout before the first byte raises :class:`_IdleTimeout` when
    ``idle_ok`` (the worker's stop-event poll) and a protocol error
    otherwise — except ``mid_message`` reads (the body of an envelope whose
    header already arrived), which tolerate short stalls (a congested link
    is not a dead peer) until no progress is made for
    :data:`_READ_STALL_SECONDS`.
    """
    chunks = []
    received = 0
    last_progress = time.monotonic()
    while received < count:
        try:
            chunk = sock.recv(count - received)
        except socket.timeout:
            if received == 0 and not mid_message:
                if idle_ok:
                    raise _IdleTimeout() from None
                raise RemoteProtocolError(
                    f"read timed out before any of {count} bytes arrived",
                    offset=0,
                ) from None
            if time.monotonic() - last_progress < _READ_STALL_SECONDS:
                continue
            raise RemoteProtocolError(
                f"read stalled after {received} of {count} bytes",
                offset=received,
            ) from None
        if not chunk:
            raise RemoteProtocolError(
                f"connection closed after {received} of {count} bytes",
                offset=received,
            )
        chunks.append(chunk)
        received += len(chunk)
        last_progress = time.monotonic()
    return b"".join(chunks)


class FrameChannel:
    """One authenticated, sequenced frame stream over a connected socket.

    Built by the handshake helpers (:func:`initiate_session` /
    :func:`accept_session`).  ``send_frame`` seals with the side's send
    direction and next send sequence; ``recv_frame`` reads one envelope and
    verifies MAC, direction and sequence before returning the frame bytes.
    ``bytes_received`` counts the stream offset so decode errors name the
    position of the corruption.
    """

    def __init__(
        self,
        sock: socket.socket,
        session_key: bytes,
        send_direction: int,
        recv_direction: int,
    ):
        self.sock = sock
        self._session_key = session_key
        self._send_direction = send_direction
        self._recv_direction = recv_direction
        self._send_sequence = 0
        self._recv_sequence = 0
        self._send_lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0

    def send_frame(self, frame: bytes) -> int:
        """Seal and send one frame; returns the envelope size in bytes."""
        with self._send_lock:
            self._send_sequence += 1
            envelope = seal_frame(
                self._session_key, self._send_direction, self._send_sequence, frame
            )
            self.sock.sendall(envelope)
            self.bytes_sent += len(envelope)
        return len(envelope)

    def recv_frame(self, *, idle_ok: bool = False) -> bytes:
        """Read, verify and return the next frame (blocking)."""
        offset = self.bytes_received
        header = _recv_exact(self.sock, _ENVELOPE_SIZE, idle_ok=idle_ok)
        length = struct.unpack(_ENVELOPE_FORMAT, header)[3]
        if length > MAX_FRAME_BYTES:
            raise RemoteProtocolError(
                f"envelope declares {length} frame bytes, exceeding the "
                f"{MAX_FRAME_BYTES}-byte ceiling",
                declared_length=length,
                offset=offset + 9,
            )
        frame = _recv_exact(self.sock, length, mid_message=True)
        mac = _recv_exact(self.sock, _MAC_SIZE, mid_message=True)
        self._recv_sequence += 1
        _verify_envelope(
            self._session_key,
            self._recv_direction,
            self._recv_sequence,
            header,
            frame,
            mac,
            offset=offset,
        )
        self.bytes_received = offset + _ENVELOPE_SIZE + length + _MAC_SIZE
        return frame

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


# -- handshake -------------------------------------------------------------------


def _hello_mac(key: bytes, hello: bytes, bound_nonce: bytes = b"") -> bytes:
    return hmac.new(key, hello + bound_nonce, hashlib.sha256).digest()


def initiate_session(sock: socket.socket, key: bytes) -> FrameChannel:
    """Coordinator-side handshake on a freshly connected socket.

    Sends HELLO(version, nonce) MAC'd under the pre-shared key; the worker's
    reply MACs its own HELLO *plus our nonce*, proving it holds the key and
    is answering this connection, not replaying an old one.  The negotiated
    wire version is the minimum of both and must be >=
    :data:`MIN_REMOTE_WIRE_VERSION`.
    """
    nonce = os.urandom(_NONCE_SIZE)
    hello = struct.pack(
        _HELLO_FORMAT, HELLO_MAGIC, DIRECTION_COORDINATOR, WIRE_VERSION, nonce
    )
    sock.sendall(hello + _hello_mac(key, hello))
    reply = _recv_exact(sock, _HELLO_SIZE + _MAC_SIZE)
    reply_hello, reply_mac = reply[:_HELLO_SIZE], reply[_HELLO_SIZE:]
    magic, role, peer_version, worker_nonce = struct.unpack(
        _HELLO_FORMAT, reply_hello
    )
    if magic != HELLO_MAGIC:
        raise RemoteProtocolError(
            f"bad handshake magic {magic!r}: peer is not a privapprox worker",
            offset=0,
        )
    if not hmac.compare_digest(_hello_mac(key, reply_hello, nonce), reply_mac):
        raise RemoteProtocolError(
            "worker handshake MAC verification failed (wrong key or replayed "
            "handshake)"
        )
    if role != DIRECTION_WORKER:
        raise RemoteProtocolError(
            f"peer announced role {role:#x}, expected a worker"
        )
    negotiated = min(WIRE_VERSION, peer_version)
    if negotiated < MIN_REMOTE_WIRE_VERSION:
        raise RemoteProtocolError(
            f"negotiated wire version {negotiated} cannot carry resident "
            f"frames (requires >= {MIN_REMOTE_WIRE_VERSION})"
        )
    session_key = derive_session_key(key, nonce, worker_nonce)
    return FrameChannel(
        sock, session_key, DIRECTION_COORDINATOR, DIRECTION_WORKER
    )


def accept_session(sock: socket.socket, key: bytes) -> FrameChannel:
    """Worker-side handshake on a freshly accepted connection.

    Verifies the coordinator's HELLO MAC before replying — an unauthenticated
    peer learns nothing but a closed connection.
    """
    data = _recv_exact(sock, _HELLO_SIZE + _MAC_SIZE)
    hello, mac = data[:_HELLO_SIZE], data[_HELLO_SIZE:]
    magic, role, peer_version, coordinator_nonce = struct.unpack(
        _HELLO_FORMAT, hello
    )
    if magic != HELLO_MAGIC:
        raise RemoteProtocolError(
            f"bad handshake magic {magic!r}: peer is not a privapprox "
            "coordinator",
            offset=0,
        )
    if not hmac.compare_digest(_hello_mac(key, hello), mac):
        raise RemoteProtocolError(
            "coordinator handshake MAC verification failed (wrong key?)"
        )
    if role != DIRECTION_COORDINATOR:
        raise RemoteProtocolError(
            f"peer announced role {role:#x}, expected a coordinator"
        )
    negotiated = min(WIRE_VERSION, peer_version)
    if negotiated < MIN_REMOTE_WIRE_VERSION:
        raise RemoteProtocolError(
            f"negotiated wire version {negotiated} cannot carry resident "
            f"frames (requires >= {MIN_REMOTE_WIRE_VERSION})"
        )
    nonce = os.urandom(_NONCE_SIZE)
    reply = struct.pack(
        _HELLO_FORMAT, HELLO_MAGIC, DIRECTION_WORKER, WIRE_VERSION, nonce
    )
    sock.sendall(reply + _hello_mac(key, reply, coordinator_nonce))
    session_key = derive_session_key(key, coordinator_nonce, nonce)
    return FrameChannel(sock, session_key, DIRECTION_WORKER, DIRECTION_COORDINATOR)


# -- the worker side ---------------------------------------------------------------


class RemoteWorkerServer:
    """A separately launched resident worker serving sealed frames over TCP.

    Accepts one coordinator session at a time (the resident protocol has
    exactly one coordinator; a second connection queues in the listen
    backlog until the current session ends).  The shard cache survives
    across sessions, so a coordinator that reconnects after a network blip
    — or a replacement coordinator resuming from checkpoints — finds the
    resident state still warm; only a worker *process* restart loses it,
    and the coordinator then re-bootstraps via checkpoint + replay.

    A connection that fails the handshake, sends an unverifiable envelope,
    or dies mid-frame is closed and counted in ``rejected_connections`` /
    ``failed_sessions``; the server returns to accepting.  Hostile bytes
    never reach the pickle layer — the MAC gate is in front of it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        key: bytes,
        *,
        max_sessions: int | None = None,
        handshake_timeout: float = _CONNECT_TIMEOUT_SECONDS,
    ):
        self._key = key
        self._max_sessions = max_sessions
        self._handshake_timeout = handshake_timeout
        self._listener = socket.create_server((host, port), backlog=4)
        self._listener.settimeout(_ACCEPT_POLL_SECONDS)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._cache = ResidentShardCache()
        self._stop = threading.Event()
        self.sessions_served = 0
        self.failed_sessions = 0
        self.rejected_connections = 0
        self.frames_served = 0

    def serve_forever(self) -> None:
        """Accept and serve coordinator sessions until :meth:`stop` (or
        ``max_sessions`` sessions have ended)."""
        try:
            while not self._stop.is_set():
                if (
                    self._max_sessions is not None
                    and self.sessions_served + self.failed_sessions
                    >= self._max_sessions
                ):
                    return
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return  # listener closed by stop()
                self._serve_connection(conn)
        finally:
            self._listener.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        channel = None
        clean = False
        try:
            conn.settimeout(self._handshake_timeout)
            try:
                channel = accept_session(conn, self._key)
            except (RemoteProtocolError, OSError):
                self.rejected_connections += 1
                conn.close()
                return
            conn.settimeout(_IDLE_POLL_SECONDS)
            while not self._stop.is_set():
                try:
                    frame = channel.recv_frame(idle_ok=True)
                except _IdleTimeout:
                    continue
                except RemoteProtocolError as exc:
                    # EOF at a frame boundary is the session ending cleanly.
                    clean = exc.offset == 0 and "closed" in str(exc)
                    return
                channel.send_frame(serve_resident_frame(self._cache, frame))
                self.frames_served += 1
            clean = True
        except OSError:
            pass
        finally:
            if channel is not None:
                channel.close()
            else:
                conn.close()
            if clean:
                self.sessions_served += 1
            else:
                self.failed_sessions += 1

    def stop(self) -> None:
        """Stop accepting; the live session (if any) ends at its next poll."""
        self._stop.set()
        self._listener.close()

    @property
    def resident_shards(self) -> int:
        return len(self._cache)


# -- the coordinator side -----------------------------------------------------------


class _RemoteLink:
    """One worker's authenticated connection plus its ack-reader thread."""

    def __init__(
        self,
        address: tuple[str, int],
        key: bytes,
        result_queue: queue.Queue,
        connect_timeout: float,
    ):
        self.address = address
        sock = socket.create_connection(address, timeout=connect_timeout)
        sock.settimeout(connect_timeout)
        try:
            self.channel = initiate_session(sock, key)
        except BaseException:
            sock.close()
            raise
        # Post-handshake the socket blocks: epochs can be arbitrarily far
        # apart, and a dead peer surfaces as EOF/reset, not a read timeout.
        sock.settimeout(None)
        self.alive = True
        self._result_queue = result_queue
        self._reader = threading.Thread(
            target=self._read_acks,
            name=f"privapprox-remote-recv-{address[0]}:{address[1]}",
            daemon=True,
        )
        self._reader.start()

    def _read_acks(self) -> None:
        try:
            while True:
                self._result_queue.put(self.channel.recv_frame())
        except (RemoteProtocolError, OSError):
            pass
        finally:
            self.alive = False

    def send_frame(self, frame: bytes) -> None:
        try:
            self.channel.send_frame(frame)
        except OSError as exc:
            self.alive = False
            raise RemoteWorkerUnavailable(
                f"worker at {self.address[0]}:{self.address[1]} dropped the "
                f"connection: {exc}"
            ) from exc

    def close(self) -> None:
        self.alive = False
        self.channel.close()
        self._reader.join(timeout=2.0)


class RemoteWorkerTransport:
    """Sticky shard routing to separately launched TCP workers.

    The drop-in socket replacement for
    :class:`~repro.runtime.affinity.StickyShardRouter`: same affinity
    function (``shard_index % num_workers``), same framed-bytes-in /
    ack-bytes-out contract, same liveness surface — so
    :class:`~repro.runtime.affinity.ResidentProcessExecutor` runs unchanged
    on top of it.  Differences are confined to what "worker" means:

    * ``ensure_worker`` connects (with bounded exponential backoff) instead
      of spawning; ``replace`` reconnects instead of respawning.  A worker
      that stays unreachable raises :class:`RemoteWorkerUnavailable` —
      the epoch fails loudly and the shards re-bootstrap from checkpoint +
      replay once the worker is back.
    * a connection that dies mid-epoch marks its slot dead exactly like a
      killed pinned process, so the executor's collector, healer and
      recovery paths apply verbatim.
    """

    def __init__(
        self,
        addresses: list[tuple[str, int]],
        keys: list[bytes],
        *,
        connect_timeout: float = _CONNECT_TIMEOUT_SECONDS,
        connect_attempts: int = _CONNECT_ATTEMPTS,
        backoff_base_seconds: float = _BACKOFF_BASE_SECONDS,
    ):
        if not addresses:
            raise ValueError("need at least one worker address")
        if len(keys) != len(addresses):
            raise ValueError(
                f"{len(addresses)} worker addresses but {len(keys)} keys"
            )
        if connect_attempts < 1:
            raise ValueError("connect_attempts must be positive")
        self.num_workers = len(addresses)
        self._addresses = list(addresses)
        self._keys = list(keys)
        self._connect_timeout = connect_timeout
        self._connect_attempts = connect_attempts
        self._backoff_base = backoff_base_seconds
        self._links: list[_RemoteLink | None] = [None] * self.num_workers
        self._result_queue: queue.Queue = queue.Queue()
        self.connects = 0
        self.reconnects = 0

    # -- StickyShardRouter interface ------------------------------------------

    def slot_for(self, shard_index: int) -> int:
        return shard_index % self.num_workers

    def worker_alive(self, slot: int) -> bool:
        link = self._links[slot]
        return link is not None and link.alive

    def dead_slots(self) -> list[int]:
        return [
            slot
            for slot, link in enumerate(self._links)
            if link is not None and not link.alive
        ]

    def _connect(self, slot: int) -> None:
        """Dial one worker with bounded exponential backoff."""
        address = self._addresses[slot]
        last_error: Exception | None = None
        for attempt in range(self._connect_attempts):
            if attempt:
                time.sleep(self._backoff_base * (2 ** (attempt - 1)))
            try:
                self._links[slot] = _RemoteLink(
                    address, self._keys[slot], self._result_queue,
                    self._connect_timeout,
                )
                self.connects += 1
                return
            except (OSError, RemoteProtocolError) as exc:
                last_error = exc
        raise RemoteWorkerUnavailable(
            f"worker at {address[0]}:{address[1]} unreachable after "
            f"{self._connect_attempts} attempts: {last_error}"
        )

    def ensure_worker(self, slot: int) -> None:
        if self.worker_alive(slot):
            return
        if self._links[slot] is not None:
            self.replace(slot)
        else:
            self._connect(slot)

    def replace(self, slot: int) -> None:
        """Drop a (dead or live) connection and dial the worker again."""
        link = self._links[slot]
        if link is not None:
            link.close()
            self._links[slot] = None
            self.reconnects += 1
        self._connect(slot)

    def send(self, shard_index: int, frame: bytes) -> None:
        slot = self.slot_for(shard_index)
        self.ensure_worker(slot)
        self._links[slot].send_frame(frame)

    def recv(self, timeout: float) -> bytes:
        """Next ack frame; raises ``queue.Empty`` after ``timeout`` seconds."""
        return self._result_queue.get(timeout=timeout)

    def drain_stale(self) -> None:
        while True:
            try:
                self._result_queue.get_nowait()
            except queue.Empty:
                return

    def close(self) -> None:
        """Close every connection; the workers keep running for the next
        coordinator."""
        for slot, link in enumerate(self._links):
            if link is not None:
                link.close()
                self._links[slot] = None


class RemoteResidentExecutor(ResidentProcessExecutor):
    """The resident executor with its pinned workers on the far side of TCP.

    Identical epoch logic, recovery semantics and observability counters to
    :class:`~repro.runtime.affinity.ResidentProcessExecutor` — the same
    :class:`~repro.runtime.affinity.ResidentDriver` with its router swapped
    for a :class:`RemoteWorkerTransport` (the ``pinned-worker`` ×
    ``sealed-tcp-remote`` combination), so the seeded-equivalence contract
    holds by construction (the workers run the very same
    :func:`~repro.runtime.affinity.serve_resident_frame`).

    ``addresses`` are ``host:port`` strings of separately launched workers
    (CLI ``worker --listen``); ``keys`` carries one pre-shared MAC key per
    worker (see :func:`keys_for_workers`).
    """

    _consumer_group_prefix = "remote"

    def __init__(
        self,
        addresses: list[str],
        keys: list[bytes],
        num_shards: int | None = None,
        queue_depth: int | None = None,
        adaptive: bool = True,
        checkpoint_every: int = 4,
        connect_timeout: float = _CONNECT_TIMEOUT_SECONDS,
    ):
        parsed = [parse_address(address) for address in addresses]
        worker_keys = keys_for_workers(keys, len(parsed))
        self._worker_addresses = parsed
        self._worker_keys = worker_keys
        self._connect_timeout = connect_timeout

        def router_factory(num_workers: int) -> RemoteWorkerTransport:
            return RemoteWorkerTransport(
                parsed, worker_keys, connect_timeout=connect_timeout
            )

        StagedEpochEngine.__init__(
            self,
            ResidentDriver(
                checkpoint_every=checkpoint_every,
                router_factory=router_factory,
                transport="sealed-tcp-remote",
            ),
            num_workers=len(parsed),
            num_shards=num_shards,
            queue_depth=queue_depth,
            adaptive=adaptive,
        )


class OverlapSnapshotRemoteDriver(StageDriver):
    """``pipelined-overlap`` × ``sealed-tcp-remote``: snapshot shipping over
    the sealed transport — a combination no legacy executor could express.

    Each epoch, every occupied shard travels to its sticky remote worker as
    a full :class:`~repro.runtime.wire.ShardTask` snapshot and comes back as
    a :class:`~repro.runtime.wire.ShardBatch`
    (:func:`~repro.runtime.affinity.serve_resident_frame` answers the task
    statelessly, so unmodified resident workers serve it).  No resident
    state, no checkpoint/replay machinery: a worker that dies mid-epoch
    fails only that epoch, and the next epoch re-ships — the operational
    trade against :class:`RemoteResidentExecutor` is wire bytes for
    recovery simplicity.
    """

    scheduling = "pipelined-overlap"
    transport = "sealed-tcp-remote"
    runs_collector = True

    def __init__(
        self,
        addresses: list[str],
        keys: list[bytes],
        connect_timeout: float = _CONNECT_TIMEOUT_SECONDS,
    ):
        self._addresses = [parse_address(address) for address in addresses]
        self._keys = keys_for_workers(keys, len(self._addresses))
        self._connect_timeout = connect_timeout
        self._router: RemoteWorkerTransport | None = None
        self._pending: dict[int, Shard] = {}

    def _ensure_router(self) -> RemoteWorkerTransport:
        if self._router is None:
            self._router = RemoteWorkerTransport(
                self._addresses, self._keys, connect_timeout=self._connect_timeout
            )
        return self._router

    def prepare(self, context, epoch: int) -> None:
        self._ensure_router().drain_stale()

    def begin_epoch(self, handle: EpochHandle) -> None:
        router = self._ensure_router()
        self._pending = {}
        for shard in handle.occupied:
            blob = encode_shard_task(
                ShardTask(
                    shard_index=shard.index,
                    epoch=handle.epoch,
                    query_ids=handle.query_ids,
                    client_states=tuple(
                        client.export_state()
                        for client in handle.context.clients[shard.as_slice()]
                    ),
                )
            )
            handle.metrics.add_wire_bytes(len(blob))
            router.send(shard.index, blob)
            self._pending[shard.index] = shard

    def collect(self, handle: EpochHandle) -> None:
        from repro.core.client import Client  # deferred: core <-> runtime

        router = self._router
        pending = self._pending
        while pending:
            for shard_index in list(pending):
                if not router.worker_alive(router.slot_for(shard_index)):
                    shard = pending.pop(shard_index)
                    handle.emit(
                        shard.index,
                        None,
                        error=ResidentWorkerError(
                            f"worker pinned to shard {shard_index} died mid-epoch"
                        ),
                    )
            if not pending:
                return
            try:
                blob = router.recv(timeout=_RECV_POLL_SECONDS)
            except queue.Empty:
                continue
            handle.metrics.add_wire_bytes(len(blob))
            try:
                message = decode_frame(blob)
            except WireError as exc:
                for shard in list(pending.values()):
                    handle.emit(shard.index, None, error=exc)
                pending.clear()
                return
            if isinstance(message, ShardBatch):
                shard = pending.get(message.shard_index)
                if shard is None or message.epoch != handle.epoch:
                    continue  # stale batch from an earlier, failed epoch
                del pending[shard.index]
                handle.context.clients[shard.as_slice()] = [
                    Client.from_state(state) for state in message.client_states
                ]
                handle.emit(
                    shard.index,
                    [list(responses) for responses in message.responses],
                    wall_seconds=message.wall_seconds,
                )
            elif isinstance(message, ShardAck) and message.error is not None:
                if message.shard_index == -1:
                    exc = ResidentWorkerError(
                        f"{message.error[0]}: {message.error[1]}"
                    )
                    for shard in list(pending.values()):
                        handle.emit(shard.index, None, error=exc)
                    pending.clear()
                    return
                shard = pending.get(message.shard_index)
                if shard is None or message.epoch != handle.epoch:
                    continue
                del pending[shard.index]
                handle.emit(
                    shard.index,
                    None,
                    error=ResidentWorkerError(
                        f"{message.error[0]}: {message.error[1]}"
                    ),
                )
            # Anything else (a stray resident ack) is stale traffic: skip.

    def close(self) -> None:
        if self._router is not None:
            self._router.close()
            self._router = None


def remote_snapshot_engine(
    addresses: list[str],
    keys: list[bytes],
    num_shards: int | None = None,
    queue_depth: int | None = None,
    connect_timeout: float = _CONNECT_TIMEOUT_SECONDS,
) -> StagedEpochEngine:
    """Build the ``pipelined-overlap/sealed-tcp-remote`` engine configuration.

    The ``make_executor`` entry point for that spelling; one pool slot per
    worker address, balanced (non-adaptive) shard boundaries — without
    resident state there is no benefit to moving boundaries between epochs,
    and keeping them fixed keeps the snapshot traffic predictable.
    """
    engine = StagedEpochEngine(
        OverlapSnapshotRemoteDriver(addresses, keys, connect_timeout=connect_timeout),
        num_workers=len(addresses),
        num_shards=num_shards,
        queue_depth=queue_depth,
    )
    return engine
