"""Parallel epoch runtimes for the PrivApprox deployment.

The paper's architecture is horizontally scalable by construction — clients
answer independently, proxies only relay, the aggregator joins per-``MID`` —
and this package gives the in-process simulation the same shape: an
:class:`EpochExecutor` abstraction with four implementations:

* :class:`SerialExecutor` — the in-order reference loop (the executable
  specification every other executor must match byte-for-byte);
* :class:`ShardedExecutor` — client shards answered in a worker pool with
  per-shard batched broker traffic and a grouped ``MID`` join;
* :class:`PipelinedExecutor` — no barriers between answering, transmission
  and ingestion: completed shards stream through shard-aware proxy topics
  into the aggregator while other shards are still answering;
* :class:`ProcessPoolEpochExecutor` — the pipelined shape with answering in
  worker *processes*, fed by the serialized shard tasks of
  :mod:`repro.runtime.wire` and balanced by adaptive shard sizing — the
  executor whose answer stage escapes the GIL.

See ``docs/ARCHITECTURE.md`` for the executors side by side, when to use
which, and the seeded-equivalence contract; ``README.md`` ("Runtime
architecture") covers executor and worker-count selection from the CLI.
"""

from repro.runtime.affinity import (
    ResidentProcessExecutor,
    ResidentShardCache,
    ResidentWorkerError,
    StickyShardRouter,
    serve_resident_frame,
    shard_fingerprint,
)
from repro.runtime.remote import (
    RemoteProtocolError,
    RemoteResidentExecutor,
    RemoteWorkerServer,
    RemoteWorkerTransport,
    RemoteWorkerUnavailable,
    load_keys,
    parse_address,
)
from repro.runtime.executor import (
    EXECUTOR_KINDS,
    EpochContext,
    EpochExecutor,
    EpochOutcome,
    QueryContext,
    QueryEpochOutcome,
    apply_deadline,
    late_drops_for,
    make_executor,
)
from repro.runtime.scenario import (
    EpochDeadline,
    EpochPlan,
    EpochStats,
    InjectionPlan,
    ScenarioPlan,
    ScenarioRun,
    ScenarioSpec,
    build_plan,
    client_latency_seconds,
    epoch_deadline_for,
    find_scenario,
    run_scenario,
    scenario_grid,
)
from repro.runtime.pipelined import PipelinedExecutor
from repro.runtime.process_pool import (
    AdaptiveShardSizer,
    ProcessPoolEpochExecutor,
    answer_shard_task,
)
from repro.runtime.serial import SerialExecutor
from repro.runtime.sharded import ShardedExecutor, answer_shard
from repro.runtime.sharding import Shard, plan_shards, plan_weighted_shards, shard_span
from repro.runtime.wire import (
    ClientDelta,
    ShardAck,
    ShardBatch,
    ShardBootstrap,
    ShardDelta,
    ShardTask,
    WireError,
    decode_frame,
    decode_shard_ack,
    decode_shard_batch,
    decode_shard_bootstrap,
    decode_shard_delta,
    decode_shard_task,
    encode_shard_ack,
    encode_shard_batch,
    encode_shard_bootstrap,
    encode_shard_delta,
    encode_shard_task,
)

__all__ = [
    "EXECUTOR_KINDS",
    "AdaptiveShardSizer",
    "ClientDelta",
    "EpochContext",
    "EpochDeadline",
    "EpochExecutor",
    "EpochOutcome",
    "EpochPlan",
    "EpochStats",
    "InjectionPlan",
    "PipelinedExecutor",
    "ProcessPoolEpochExecutor",
    "QueryContext",
    "QueryEpochOutcome",
    "RemoteProtocolError",
    "RemoteResidentExecutor",
    "RemoteWorkerServer",
    "RemoteWorkerTransport",
    "RemoteWorkerUnavailable",
    "ResidentProcessExecutor",
    "ScenarioPlan",
    "ScenarioRun",
    "ScenarioSpec",
    "ResidentShardCache",
    "ResidentWorkerError",
    "SerialExecutor",
    "Shard",
    "ShardAck",
    "ShardBatch",
    "ShardBootstrap",
    "ShardDelta",
    "ShardTask",
    "ShardedExecutor",
    "StickyShardRouter",
    "WireError",
    "answer_shard",
    "answer_shard_task",
    "apply_deadline",
    "build_plan",
    "client_latency_seconds",
    "decode_frame",
    "decode_shard_ack",
    "decode_shard_batch",
    "decode_shard_bootstrap",
    "decode_shard_delta",
    "decode_shard_task",
    "encode_shard_ack",
    "encode_shard_batch",
    "encode_shard_bootstrap",
    "encode_shard_delta",
    "encode_shard_task",
    "epoch_deadline_for",
    "find_scenario",
    "late_drops_for",
    "load_keys",
    "make_executor",
    "parse_address",
    "plan_shards",
    "plan_weighted_shards",
    "run_scenario",
    "scenario_grid",
    "serve_resident_frame",
    "shard_fingerprint",
    "shard_span",
]
