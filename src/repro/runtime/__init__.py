"""Parallel epoch runtimes for the PrivApprox deployment.

The paper's architecture is horizontally scalable by construction — clients
answer independently, proxies only relay, the aggregator joins per-``MID`` —
and this package gives the in-process simulation the same shape.  Two
runtimes exist:

* :class:`SerialExecutor` — the in-order reference loop (the executable
  specification every other configuration must match byte-for-byte);
* :class:`~repro.runtime.engine.StagedEpochEngine` — one staged epoch
  dataflow (plan → answer → transmit → ingest → finalize) parameterized by
  a pluggable :class:`~repro.runtime.engine.StageDriver` chosen on two
  axes: *scheduling* (``inline``, ``thread-pool``, ``pipelined-overlap``,
  ``pinned-worker``) × *transport* (``in-process``, ``framed-wire-local``,
  ``sealed-tcp-remote``).  :data:`~repro.runtime.executor.DRIVER_COMBOS`
  is the registry of supported combinations.

The historical executor classes — :class:`ShardedExecutor`,
:class:`PipelinedExecutor`, :class:`ProcessPoolEpochExecutor`,
:class:`~repro.runtime.affinity.ResidentProcessExecutor`,
:class:`~repro.runtime.remote.RemoteResidentExecutor` — remain importable
as thin driver configurations of the engine (deprecation shims).

See ``docs/ARCHITECTURE.md`` for the staged engine and the driver matrix,
and the seeded-equivalence contract; ``README.md`` ("Runtime
architecture") covers executor and worker-count selection from the CLI.
"""

from repro.runtime.affinity import (
    ResidentDriver,
    ResidentProcessExecutor,
    ResidentShardCache,
    ResidentWorkerError,
    StickyShardRouter,
    serve_resident_frame,
    shard_fingerprint,
)
from repro.runtime.remote import (
    OverlapSnapshotRemoteDriver,
    RemoteProtocolError,
    RemoteResidentExecutor,
    RemoteWorkerServer,
    RemoteWorkerTransport,
    RemoteWorkerUnavailable,
    load_keys,
    parse_address,
    remote_snapshot_engine,
)
from repro.runtime.engine import (
    BarrierThreadDriver,
    EpochHandle,
    InlineDriver,
    OverlapThreadDriver,
    StageDriver,
    StageMetrics,
    StagedEpochEngine,
)
from repro.runtime.executor import (
    DRIVER_COMBOS,
    DRIVER_SPELLINGS,
    EXECUTOR_KINDS,
    LEGACY_EXECUTOR_ALIASES,
    SCHEDULING_KINDS,
    TRANSPORT_KINDS,
    EpochContext,
    EpochExecutor,
    EpochOutcome,
    QueryContext,
    QueryEpochOutcome,
    apply_deadline,
    cli_smoke_matrix,
    late_drops_for,
    make_executor,
    validate_driver_combo,
)
from repro.runtime.scenario import (
    EpochDeadline,
    EpochPlan,
    EpochStats,
    InjectionPlan,
    ScenarioPlan,
    ScenarioRun,
    ScenarioSpec,
    build_plan,
    client_latency_seconds,
    epoch_deadline_for,
    find_scenario,
    run_scenario,
    scenario_grid,
)
from repro.runtime.pipelined import PipelinedExecutor
from repro.runtime.process_pool import (
    AdaptiveShardSizer,
    OverlapSnapshotWireDriver,
    ProcessPoolEpochExecutor,
    SnapshotWireBarrierDriver,
    answer_shard_task,
)
from repro.runtime.serial import SerialExecutor
from repro.runtime.sharded import ShardedExecutor, answer_shard
from repro.runtime.sharding import Shard, plan_shards, plan_weighted_shards, shard_span
from repro.runtime.wire import (
    ClientDelta,
    ShardAck,
    ShardBatch,
    ShardBootstrap,
    ShardDelta,
    ShardTask,
    WireError,
    decode_frame,
    decode_shard_ack,
    decode_shard_batch,
    decode_shard_bootstrap,
    decode_shard_delta,
    decode_shard_task,
    encode_shard_ack,
    encode_shard_batch,
    encode_shard_bootstrap,
    encode_shard_delta,
    encode_shard_task,
)

__all__ = [
    "DRIVER_COMBOS",
    "DRIVER_SPELLINGS",
    "EXECUTOR_KINDS",
    "LEGACY_EXECUTOR_ALIASES",
    "SCHEDULING_KINDS",
    "TRANSPORT_KINDS",
    "AdaptiveShardSizer",
    "BarrierThreadDriver",
    "ClientDelta",
    "EpochContext",
    "EpochDeadline",
    "EpochExecutor",
    "EpochHandle",
    "EpochOutcome",
    "EpochPlan",
    "EpochStats",
    "InjectionPlan",
    "InlineDriver",
    "OverlapSnapshotRemoteDriver",
    "OverlapSnapshotWireDriver",
    "OverlapThreadDriver",
    "PipelinedExecutor",
    "ProcessPoolEpochExecutor",
    "QueryContext",
    "QueryEpochOutcome",
    "RemoteProtocolError",
    "RemoteResidentExecutor",
    "RemoteWorkerServer",
    "RemoteWorkerTransport",
    "RemoteWorkerUnavailable",
    "ResidentDriver",
    "ResidentProcessExecutor",
    "ScenarioPlan",
    "ScenarioRun",
    "ScenarioSpec",
    "ResidentShardCache",
    "ResidentWorkerError",
    "SerialExecutor",
    "Shard",
    "SnapshotWireBarrierDriver",
    "StageDriver",
    "StageMetrics",
    "StagedEpochEngine",
    "ShardAck",
    "ShardBatch",
    "ShardBootstrap",
    "ShardDelta",
    "ShardTask",
    "ShardedExecutor",
    "StickyShardRouter",
    "WireError",
    "answer_shard",
    "answer_shard_task",
    "apply_deadline",
    "build_plan",
    "cli_smoke_matrix",
    "client_latency_seconds",
    "decode_frame",
    "decode_shard_ack",
    "decode_shard_batch",
    "decode_shard_bootstrap",
    "decode_shard_delta",
    "decode_shard_task",
    "encode_shard_ack",
    "encode_shard_batch",
    "encode_shard_bootstrap",
    "encode_shard_delta",
    "encode_shard_task",
    "epoch_deadline_for",
    "find_scenario",
    "late_drops_for",
    "load_keys",
    "make_executor",
    "parse_address",
    "plan_shards",
    "plan_weighted_shards",
    "remote_snapshot_engine",
    "run_scenario",
    "scenario_grid",
    "serve_resident_frame",
    "shard_fingerprint",
    "shard_span",
    "validate_driver_combo",
]
