"""Parallel sharded epoch runtime for the PrivApprox deployment.

The paper's architecture is horizontally scalable by construction — clients
answer independently, proxies only relay, the aggregator joins per-``MID`` —
and this package gives the in-process simulation the same shape: an
:class:`EpochExecutor` abstraction with a serial reference implementation and
a sharded implementation that answers client shards in a worker pool and
batches all broker traffic per shard.  See ``README.md`` ("Runtime
architecture") for how to pick an executor and worker count.
"""

from repro.runtime.executor import (
    EXECUTOR_KINDS,
    EpochContext,
    EpochExecutor,
    EpochOutcome,
    make_executor,
)
from repro.runtime.serial import SerialExecutor
from repro.runtime.sharded import ShardedExecutor, answer_shard
from repro.runtime.sharding import Shard, plan_shards

__all__ = [
    "EXECUTOR_KINDS",
    "EpochContext",
    "EpochExecutor",
    "EpochOutcome",
    "SerialExecutor",
    "Shard",
    "ShardedExecutor",
    "answer_shard",
    "make_executor",
    "plan_shards",
]
