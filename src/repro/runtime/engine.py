"""The staged epoch engine: one dataflow, pluggable stage drivers.

Historically every executor (sharded, pipelined, process-pool, resident,
remote) re-implemented the same answering epoch — plan shards, answer them,
deadline-gate, transmit to the proxy brokers, ingest into the aggregators —
with its own copies of deadline gating, wire accounting, adaptive re-shard
hysteresis and failure plumbing.  This module collapses that zoo into a
single :class:`StagedEpochEngine` that decomposes an epoch into explicit
stages:

    plan -> answer -> transmit -> ingest -> finalize

and delegates *how the answer stage runs* to a pluggable
:class:`StageDriver`.  Drivers are classified along two orthogonal axes
(declared in :mod:`repro.runtime.executor`):

* **scheduling** — ``inline`` (caller thread), ``thread-pool`` (barrier
  worker pool), ``pipelined-overlap`` (answer/transmit/ingest run
  concurrently), ``pinned-worker`` (long-lived workers holding resident
  state);
* **transport** — ``in-process`` (shared objects), ``framed-wire-local``
  (serialized :mod:`repro.runtime.wire` frames across a process border),
  ``sealed-tcp-remote`` (the same frames in HMAC-sealed envelopes over TCP).

The engine owns everything the drivers used to duplicate:

* the **single** authoritative deadline-gate call site
  (:func:`~repro.runtime.executor.apply_deadline`) — drivers hand raw
  responses to :meth:`EpochHandle.emit` and never see the gate;
* per-epoch :class:`StageMetrics` (stage wall-clocks, wire bytes, late
  drops, re-shard events) replacing the ad-hoc ``epoch_wire_bytes`` ledgers;
* adaptive shard sizing (:class:`AdaptiveShardSizer`) *and* the re-shard
  hysteresis that residency-holding drivers need (moving a boundary costs a
  sync + re-bootstrap, so boundaries move only on sustained imbalance);
* both dataflow shapes: the **barrier** flow (inline / thread-pool: collect
  in shard order, transmit per shard, ingest after the last shard) and the
  **overlap** flow (pipelined-overlap / pinned-worker: a transmitter thread
  and the caller's ingest loop run while shards are still answering, with a
  bounded hand-off queue for backpressure).

:class:`~repro.runtime.serial.SerialExecutor` deliberately stays *outside*
the engine: it is the frozen executable specification every driver
combination must match byte-for-byte (``docs/ARCHITECTURE.md``, the
equivalence and torture suites).

The driver *mechanisms* live next to the machinery they drive: thread-pool
and in-process drivers here, snapshot-wire drivers in
:mod:`repro.runtime.process_pool`, the resident driver in
:mod:`repro.runtime.affinity`, and the sealed-TCP drivers in
:mod:`repro.runtime.remote`.  The legacy executor classes remain importable
as thin driver configurations over this engine.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.runtime.executor import (
    EpochContext,
    EpochOutcome,
    PooledEpochExecutor,
    QueryEpochOutcome,
    apply_deadline,
    late_drops_for,
    validate_driver_combo,
)
from repro.runtime.sharding import Shard, plan_shards, plan_weighted_shards
from repro.sqldb import (
    ARENA_FALLBACK,
    ShardArena,
    arena_answering_enabled,
    arena_select_per_client,
)

if TYPE_CHECKING:
    from repro.core.client import Client, ClientResponse
    from repro.pubsub import Consumer

# Re-sharding hysteresis (engine-owned; drivers only *report* residency):
# moving a boundary under a residency-holding driver costs a state sync plus
# a full re-bootstrap of the moved shards, so boundaries only move when the
# current cut's predicted bottleneck shard exceeds the rebalanced cut's by
# this factor, and at most once per cooldown window — otherwise per-epoch
# wall-clock noise would move boundaries every epoch and each move would
# throw away resident state.  (Snapshot-shipping drivers re-plan freely —
# their boundaries are free to move because they ship all state every epoch
# anyway.)
_RESHARD_IMBALANCE_THRESHOLD = 2.0
_RESHARD_COOLDOWN_EPOCHS = 3


def answer_shard(
    clients: list["Client"],
    query_ids: Sequence[str],
    epoch: int,
    arena: ShardArena | None = None,
) -> tuple[list[list["ClientResponse"]], list["Client"]]:
    """Answer one shard of clients for one epoch (the picklable shard task).

    Every client answers all of ``query_ids`` in one pass; the return value
    holds one participating-response list per query (client order within
    each list) together with the clients themselves: in-process (thread)
    execution returns the very same objects, while a process border returns
    copies carrying the advanced RNG/keystream state that the parent must
    adopt for the next epoch.

    With a :class:`~repro.sqldb.columnar.ShardArena` over these clients'
    databases, the epoch's SQL is evaluated once shard-wide and each
    client's pre-computed outcome is injected through its ``scan_cache`` —
    draw-neutral (SQL consumes no randomness), so responses are
    byte-identical to per-client evaluation.  Members flagged for fallback
    simply keep an empty cache and answer themselves.
    """
    caches = shard_scan_caches(clients, query_ids, arena)
    responses_per_query: list[list["ClientResponse"]] = [[] for _ in query_ids]
    for slot, client in enumerate(clients):
        scan_cache = None if caches is None else caches[slot]
        answers = client.answer(query_ids, epoch=epoch, scan_cache=scan_cache)
        for index, response in enumerate(answers):
            if response is not None:
                responses_per_query[index].append(response)
    return responses_per_query, clients


def shard_scan_caches(
    clients: list["Client"],
    query_ids: Sequence[str],
    arena: ShardArena | None,
) -> list[dict] | None:
    """Pre-compute per-client scan caches for one epoch via the shard arena.

    Returns one ``{sql: outcome}`` dict per client (outcome is a result
    set or the exception that client's own evaluation would raise), or
    ``None`` when the arena is absent or no longer matches the shard's
    databases (churn replaced a member — the caller answers per-client
    and the arena owner rebuilds on the next sync).  Statements that fall
    back (unparsable, non-SELECT, missing table, compiler fallback) are
    simply absent from every cache; members flagged :data:`ARENA_FALLBACK`
    are absent from that member's cache only.
    """
    if arena is None or not clients:
        return None
    if not arena.matches([client.database for client in clients]):
        return None
    caches: list[dict] = [{} for _ in clients]
    seen: set[str] = set()
    for query_id in query_ids:
        sql = None
        for client in clients:
            sql = client.query_sql(query_id)
            if sql is not None:
                break
        if sql is None or sql in seen:
            continue
        seen.add(sql)
        outcomes = arena_select_per_client(arena, sql)
        if outcomes is None:
            continue
        for cache, outcome in zip(caches, outcomes):
            if outcome is ARENA_FALLBACK:
                continue
            cache[sql] = outcome
    return caches


def make_shard_arena(clients: list["Client"]) -> ShardArena | None:
    """A fresh arena over a shard's databases, or ``None`` when disabled."""
    if not clients or not arena_answering_enabled():
        return None
    return ShardArena([client.database for client in clients])


def _timed_answer_shard(
    clients: list["Client"],
    query_ids: Sequence[str],
    epoch: int,
    arena: ShardArena | None = None,
) -> tuple[list[list["ClientResponse"]], list["Client"], float]:
    """:func:`answer_shard` plus its own wall-clock, for stage accounting."""
    started = time.perf_counter()
    responses, clients = answer_shard(clients, query_ids, epoch, arena=arena)
    return responses, clients, time.perf_counter() - started


class AdaptiveShardSizer:
    """Plans shard boundaries from per-shard answering wall-clock feedback.

    Epoch 0 uses balanced :func:`~repro.runtime.sharding.plan_shards`
    boundaries.  After each epoch :meth:`record` spreads every timed shard's
    wall-clock evenly over its clients and folds it into a per-client cost
    EWMA; :meth:`plan` then cuts the next epoch's boundaries so each shard
    carries roughly equal predicted cost.  A changed population size resets
    the estimates (client indices no longer line up).
    """

    def __init__(self, num_shards: int, smoothing: float = 0.5):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must lie in (0, 1], got {smoothing}")
        self.num_shards = num_shards
        self.smoothing = smoothing
        self._cost_per_client: list[float] | None = None

    def plan(self, num_items: int) -> list[Shard]:
        """Shard boundaries for the next epoch over ``num_items`` clients."""
        costs = self._cost_per_client
        if costs is None or len(costs) != num_items:
            return plan_shards(num_items, self.num_shards)
        return plan_weighted_shards(costs, self.num_shards)

    def cost_estimates(self, num_items: int) -> list[float] | None:
        """The current per-client cost EWMA, or ``None`` if not (yet) usable.

        The engine's re-shard hysteresis consults this to decide whether
        moving boundaries is worth invalidating worker-resident shards.
        """
        costs = self._cost_per_client
        if costs is None or len(costs) != num_items:
            return None
        return list(costs)

    def prime(self, costs: list[float]) -> None:
        """Seed the per-client cost estimates directly.

        Lets tests (and deployments with offline profiles) force a specific
        re-sharding decision instead of waiting for wall-clock feedback.
        """
        self._cost_per_client = list(costs)

    def record(self, shards: list[Shard], wall_seconds: dict[int, float]) -> None:
        """Fold one epoch's per-shard timings into the per-client estimates.

        ``wall_seconds`` maps shard index → answering wall-clock; shards that
        never produced a timing (failed epochs) are simply skipped.
        """
        if not shards:
            return
        num_items = shards[-1].stop
        costs = self._cost_per_client
        if costs is None or len(costs) != num_items:
            costs = [0.0] * num_items
        alpha = self.smoothing
        for shard in shards:
            if shard.num_items == 0 or shard.index not in wall_seconds:
                continue
            per_client = wall_seconds[shard.index] / shard.num_items
            for i in range(shard.start, shard.stop):
                previous = costs[i]
                costs[i] = per_client if previous <= 0.0 else (
                    (1.0 - alpha) * previous + alpha * per_client
                )
        self._cost_per_client = costs


@dataclass
class StageMetrics:
    """One epoch's unified stage accounting, emitted by every driver combo.

    ``wire_bytes`` counts every serialized frame that crossed a process or
    socket border this epoch (tasks/deltas out plus batches/acks back) —
    zero for in-process transports.  ``late_drops`` counts responses the
    engine's deadline gate removed at the transmit boundary.
    ``reshard_events`` counts adopted boundary moves (hysteresis-approved
    for residency drivers).  Stage seconds measure *active* work: in the
    overlap flow the stages run concurrently, so they legitimately sum to
    more than the epoch's wall-clock.
    """

    epoch: int
    plan_seconds: float = 0.0
    answer_seconds: float = 0.0
    transmit_seconds: float = 0.0
    ingest_seconds: float = 0.0
    finalize_seconds: float = 0.0
    wire_bytes: int = 0
    late_drops: int = 0
    reshard_events: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def add_wire_bytes(self, count: int) -> None:
        """Thread-safe wire accounting (drivers call from any stage thread)."""
        with self._lock:
            self.wire_bytes += count

    def add_late_drops(self, count: int) -> None:
        with self._lock:
            self.late_drops += count

    def add_stage_seconds(self, stage: str, seconds: float) -> None:
        with self._lock:
            setattr(self, f"{stage}_seconds", getattr(self, f"{stage}_seconds") + seconds)


class EpochHandle:
    """Everything a driver needs for one epoch, plus the emit contract.

    The driver must call :meth:`emit` **exactly once per occupied shard** —
    success or failure — with the shard's raw (ungated) per-query response
    lists.  The engine's emit wrapper owns the single deadline-gate call
    site and the hand-off into the transmit stage; in the overlap flow emit
    may be called from any driver thread (the gate and metrics lock
    internally, and the bounded hand-off queue applies backpressure).
    """

    __slots__ = ("context", "epoch", "occupied", "query_ids", "metrics", "emit", "emitted")

    def __init__(self, context: EpochContext, epoch: int, occupied: list[Shard],
                 metrics: StageMetrics, emit) -> None:
        self.context = context
        self.epoch = epoch
        self.occupied = occupied
        self.query_ids = tuple(context.query_ids)
        self.metrics = metrics
        self.emitted: set[int] = set()
        inner = emit

        def tracking_emit(shard_index, responses, error=None, wall_seconds=None):
            self.emitted.add(shard_index)
            inner(shard_index, responses, error=error, wall_seconds=wall_seconds)

        self.emit = tracking_emit


class StageDriver:
    """Base class for answer-stage drivers.

    A driver declares its position on the two axes (``scheduling`` ×
    ``transport``; validated against the registry in
    :mod:`repro.runtime.executor`) and implements the *mechanism* of the
    answer stage.  All policy — deadline gating, metrics, shard planning,
    pool/consumer lifecycle, failure unwinding — stays in the engine.

    Lifecycle hooks (all optional except :meth:`collect` /
    :meth:`begin_epoch` as the driver's shape requires):

    * :meth:`prepare` — before planning (heal dead workers, drain stale
      acks);
    * :meth:`residency_spans` — report per-shard resident boundaries so the
      engine's hysteresis can avoid invalidating resident state;
    * :meth:`migrate` — after planning, before the epoch starts: move/export
      state for shards whose boundaries changed, returning wire bytes spent;
    * :meth:`begin_epoch` — runs on the caller thread *before* any pipeline
      thread starts; a failure here must leave nothing transmitted (the
      pre-pipeline error contract);
    * :meth:`collect` — produce one :meth:`EpochHandle.emit` per occupied
      shard.  ``runs_collector`` drivers do this on a dedicated collector
      thread; others emit directly from their answer tasks;
    * :meth:`handle_epoch_error` — after the pipeline has drained on a
      failed epoch (discard a broken pool, ...).
    """

    scheduling = "inline"
    transport = "in-process"
    #: True when collect() must run on a dedicated engine-owned collector
    #: thread (the driver receives results from elsewhere — a process pool,
    #: a result queue, a socket).  False when begin_epoch() schedules tasks
    #: that call emit themselves.
    runs_collector = False

    def bind(self, engine: "StagedEpochEngine") -> None:
        self.engine = engine

    def make_pool(self, num_workers: int):
        """The ``concurrent.futures`` pool this driver answers on (or None)."""
        return None

    def prepare(self, context: EpochContext, epoch: int) -> None:
        """Pre-plan hook (heal workers, record the context for shutdown)."""

    def residency_spans(self) -> dict[int, tuple[int, int]] | None:
        """Per-shard resident ``(start, stop)`` spans, or ``None`` if the
        driver holds no cross-epoch state (boundaries are free to move)."""
        return None

    def migrate(self, context: EpochContext, shards: list[Shard]) -> int:
        """Export state for shards whose boundaries moved; returns wire bytes."""
        return 0

    def begin_epoch(self, handle: EpochHandle) -> None:
        """Start the epoch's answering work (pre-pipeline; may raise cleanly)."""

    def collect(self, handle: EpochHandle) -> None:
        """Emit every occupied shard's result (collector-thread drivers)."""
        raise NotImplementedError

    def handle_epoch_error(self, error: Exception) -> None:
        """Post-drain cleanup for a failed epoch."""

    def close(self) -> None:
        """Release driver-owned resources (routers, caches); idempotent."""


class StagedEpochEngine(PooledEpochExecutor):
    """Epoch execution as explicit stages over one pluggable stage driver.

    Satisfies the seeded-equivalence contract for every registered driver
    combination: results are byte-identical to
    :class:`~repro.runtime.serial.SerialExecutor` for a fixed seed,
    regardless of scheduling or transport.

    Parameters
    ----------
    driver:
        The answer-stage driver; its ``scheduling``/``transport`` axes are
        validated against the combo registry.
    adaptive:
        Feed per-shard answering wall-clock back into the next epoch's
        boundaries.  Under a residency-reporting driver, boundary moves are
        additionally hysteresis-gated.
    """

    _consumer_group_prefix = "engine"

    def __init__(
        self,
        driver: StageDriver,
        num_workers: int = 4,
        num_shards: int | None = None,
        queue_depth: int | None = None,
        adaptive: bool = False,
    ):
        super().__init__(
            num_workers=num_workers, num_shards=num_shards, queue_depth=queue_depth
        )
        validate_driver_combo(driver.scheduling, driver.transport)
        self.driver = driver
        self.scheduling = driver.scheduling
        self.transport = driver.transport
        self.adaptive = adaptive
        self._sizer = AdaptiveShardSizer(self.num_shards)
        self._epochs_since_reshard = 0
        #: Per-epoch StageMetrics, success and failure alike.
        self.stage_metrics: dict[int, StageMetrics] = {}
        #: Shard index → ShardArena for the in-process drivers; reused across
        #: epochs while the shard's member databases are identical objects.
        self._arenas: dict[int, ShardArena] = {}
        driver.bind(self)

    def arena_for(
        self, shard_index: int, clients: list["Client"]
    ) -> ShardArena | None:
        """The cached arena for a shard, rebuilt when its membership changed.

        Returns ``None`` (and drops any cached arena) when arena answering
        is disabled or the shard is empty.  Membership is compared by
        database-object identity — re-sharding or churn that replaces a
        member rebuilds; stable shards keep their arena and sync it
        incrementally as ``ShardDelta`` traffic appends rows.  Call only on
        the epoch caller thread (shards are disjoint, so the per-shard
        arenas themselves may then be used concurrently).
        """
        if not clients or not arena_answering_enabled():
            self._arenas.pop(shard_index, None)
            return None
        databases = [client.database for client in clients]
        arena = self._arenas.get(shard_index)
        if arena is None or not arena.matches(databases):
            arena = ShardArena(databases)
            self._arenas[shard_index] = arena
        return arena

    # -- capability surface ---------------------------------------------------

    @property
    def uses_shard_topics(self) -> bool:
        """Whether ingestion reads the shard-aware proxy topics.

        The overlap flow streams per-shard batch records through shard
        topics; the barrier flow publishes per-share records on the query
        channel and ingests with ``consume_from_proxies``.  The scenario
        layer's byzantine injector keys off this to place forged records
        where this executor's ingest actually reads.
        """
        return self.scheduling in ("pipelined-overlap", "pinned-worker")

    @property
    def epoch_wire_bytes(self) -> dict[int, int]:
        """Epoch → serialized frame bytes (the legacy ledger view).

        Derived from :attr:`stage_metrics`; kept for the scenario sweep's
        wire accounting and the resident-vs-snapshot benchmark claim.
        """
        return {
            epoch: metrics.wire_bytes for epoch, metrics in self.stage_metrics.items()
        }

    # -- pool / lifecycle -----------------------------------------------------

    def _make_pool(self):
        return self.driver.make_pool(self.num_workers)

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool so the next epoch builds a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Close the driver (export resident state, stop workers), then the
        shared pool/consumer machinery (idempotent)."""
        try:
            self.driver.close()
        finally:
            self._arenas.clear()
            super().close()

    # -- plan stage -----------------------------------------------------------

    def _plan_stage(self, context: EpochContext, metrics: StageMetrics) -> list[Shard]:
        """Shard boundaries for this epoch, with re-shard hysteresis.

        Without residency (``residency_spans() is None``) the adaptive plan
        is adopted as-is — snapshot transports ship all state every epoch,
        so boundary moves are free.  With residency, while the recorded
        boundaries tile the population, the adaptive plan is adopted only
        when it shrinks the predicted bottleneck shard by more than
        ``_RESHARD_IMBALANCE_THRESHOLD`` and the cooldown window since the
        last move has passed.  The recorded spans are kept even for shards
        that just lost residency (a replaced worker): moving *their*
        boundary would needlessly invalidate their still-resident neighbors
        — exactly the lost shards re-bootstrap, nothing else.  A first epoch
        or a population change takes the plan as-is.
        """
        num_clients = len(context.clients)
        self._epochs_since_reshard += 1
        if not self.adaptive:
            return plan_shards(num_clients, self.num_shards)
        proposed = self._sizer.plan(num_clients)
        spans = self.driver.residency_spans()
        if spans is None:
            return proposed
        current: list[Shard] = []
        position = 0
        for index in range(self.num_shards):
            span = spans.get(index)
            if span is None or span[0] != position:
                return proposed
            current.append(Shard(index=index, start=span[0], stop=span[1]))
            position = span[1]
        if position != num_clients:
            return proposed
        if self._epochs_since_reshard < _RESHARD_COOLDOWN_EPOCHS:
            return current
        costs = self._sizer.cost_estimates(num_clients)
        if costs is None:
            return current
        prefix = [0.0]
        for cost in costs:
            prefix.append(prefix[-1] + cost)
        current_max = max(prefix[s.stop] - prefix[s.start] for s in current)
        proposed_max = max(prefix[s.stop] - prefix[s.start] for s in proposed)
        if proposed_max > 0.0 and current_max > _RESHARD_IMBALANCE_THRESHOLD * proposed_max:
            self._epochs_since_reshard = 0
            metrics.reshard_events += 1
            return proposed
        return current

    # -- the single deadline-gate call site -----------------------------------

    def _gate(
        self, context: EpochContext, responses_per_query: list[list], metrics: StageMetrics
    ) -> list[list]:
        """Deadline-gate one shard's raw responses at the transmit boundary.

        The one place :func:`~repro.runtime.executor.apply_deadline` is
        invoked across every driver combination: late answers were produced
        (RNG streams advanced exactly as under the serial reference) but
        never reach the proxies, and the drop count lands in the metrics.
        """
        gated = apply_deadline(context.deadline, responses_per_query)
        if context.deadline is not None:
            metrics.add_late_drops(
                sum(
                    len(raw) - len(kept)
                    for raw, kept in zip(responses_per_query, gated)
                )
            )
        return gated

    # -- epoch execution ------------------------------------------------------

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        metrics = StageMetrics(epoch=epoch)
        self.stage_metrics[epoch] = metrics
        plan_started = time.perf_counter()
        self.driver.prepare(context, epoch)
        shards = self._plan_stage(context, metrics)
        metrics.add_wire_bytes(self.driver.migrate(context, shards))
        occupied = [shard for shard in shards if shard.num_items > 0]
        metrics.plan_seconds = time.perf_counter() - plan_started
        if self.uses_shard_topics:
            return self._run_overlap(context, epoch, shards, occupied, metrics)
        return self._run_barrier(context, epoch, shards, occupied, metrics)

    def _finalize(
        self, shards: list[Shard], answer_walls: dict[int, float], metrics: StageMetrics
    ) -> None:
        started = time.perf_counter()
        if answer_walls:
            metrics.answer_seconds = sum(answer_walls.values())
        if self.adaptive and answer_walls:
            self._sizer.record(shards, answer_walls)
        metrics.finalize_seconds = time.perf_counter() - started

    def _merge_outcome(
        self,
        context: EpochContext,
        shards: list[Shard],
        responses_by_shard: list,
        window_results: list[list],
    ) -> EpochOutcome:
        """Merge per-shard logs in shard-index (= client) order."""
        per_query = []
        for index, query in enumerate(context.queries):
            responses: list = []
            for shard in shards:
                shard_responses = responses_by_shard[shard.index]
                if shard_responses:
                    responses.extend(shard_responses[index])
            per_query.append(
                QueryEpochOutcome(
                    query_id=query.query_id,
                    responses=tuple(responses),
                    window_results=tuple(window_results[index]),
                    late_drops=late_drops_for(context, query.query_id),
                )
            )
        return EpochOutcome(per_query=tuple(per_query))

    # -- barrier flow (inline / thread-pool scheduling) -----------------------

    def _run_barrier(
        self,
        context: EpochContext,
        epoch: int,
        shards: list[Shard],
        occupied: list[Shard],
        metrics: StageMetrics,
    ) -> EpochOutcome:
        """Collect in shard order, transmit per shard, ingest after the last.

        Emits arrive on the caller thread in shard-index order (the driver
        contract for barrier scheduling), so the per-query logs extend in
        serial client order and driver errors propagate naturally from the
        collect call — exactly the legacy sharded executor's shape.
        """
        queries = context.queries
        responses_by_shard: list[list | None] = [None] * len(shards)
        answer_walls: dict[int, float] = {}
        answer_started = time.perf_counter()

        def emit(shard_index, responses, error=None, wall_seconds=None):
            if error is not None:
                raise error
            gated = self._gate(context, responses, metrics)
            responses_by_shard[shard_index] = gated
            if wall_seconds is not None:
                answer_walls[shard_index] = wall_seconds
            transmit_started = time.perf_counter()
            for index, query in enumerate(queries):
                context.proxies.transmit_batch(
                    [list(response.encrypted.shares) for response in gated[index]],
                    channel=query.channel,
                )
            metrics.add_stage_seconds(
                "transmit", time.perf_counter() - transmit_started
            )

        handle = EpochHandle(context, epoch, occupied, metrics, emit)
        try:
            self.driver.begin_epoch(handle)
            self.driver.collect(handle)
        except Exception as error:
            self.driver.handle_epoch_error(error)
            raise
        if not answer_walls:
            # Wire drivers without per-shard wall-clocks: charge the collect
            # span minus transmit to the answer stage, clamped at zero — the
            # two spans are measured independently, so subtraction could
            # otherwise dip (fractionally) negative and corrupt the ledger.
            metrics.answer_seconds = max(
                0.0,
                time.perf_counter() - answer_started - metrics.transmit_seconds,
            )
        ingest_started = time.perf_counter()
        window_results: list[list] = []
        for query in queries:
            window_results.append(
                query.aggregator.consume_from_proxies(
                    list(query.consumers), epoch=epoch, batched=True
                )
            )
        metrics.ingest_seconds = time.perf_counter() - ingest_started
        self._finalize(shards, answer_walls, metrics)
        return self._merge_outcome(context, shards, responses_by_shard, window_results)

    # -- overlap flow (pipelined-overlap / pinned-worker scheduling) ----------

    def _run_overlap(
        self,
        context: EpochContext,
        epoch: int,
        shards: list[Shard],
        occupied: list[Shard],
        metrics: StageMetrics,
    ) -> EpochOutcome:
        """Answer, transmit and ingest concurrently through bounded queues."""
        consumers = self._consumers_for(context)
        responses_by_shard: list[list | None] = [None] * len(shards)
        answer_walls: dict[int, float] = {}
        answered: queue.Queue = queue.Queue(maxsize=self.queue_depth)
        transmitted: queue.Queue = queue.Queue()

        def emit(shard_index, responses, error=None, wall_seconds=None):
            if error is None:
                responses_by_shard[shard_index] = self._gate(
                    context, responses, metrics
                )
                if wall_seconds is not None:
                    answer_walls[shard_index] = wall_seconds
            else:
                responses_by_shard[shard_index] = [[] for _ in context.queries]
            answered.put((shard_index, error))

        handle = EpochHandle(context, epoch, occupied, metrics, emit)
        # Pre-pipeline: a begin_epoch failure surfaces with nothing
        # transmitted and no pipeline thread started; the partial metrics
        # (frames already encoded/sent) stay recorded for this epoch.
        try:
            self.driver.begin_epoch(handle)
        except Exception as error:
            self.driver.handle_epoch_error(error)
            raise
        collector = None
        if self.driver.runs_collector:
            collector = threading.Thread(
                target=self._run_collector,
                args=(handle,),
                name=f"privapprox-{self.scheduling}-collect",
                daemon=True,
            )
            collector.start()
        transmitter = threading.Thread(
            target=_transmit_stage,
            args=(context, len(occupied), responses_by_shard, answered, transmitted),
            kwargs={"metrics": metrics},
            name=f"privapprox-{self.scheduling}-transmit",
            daemon=True,
        )
        transmitter.start()
        window_results, error = _ingest_stage(
            context, consumers, epoch, transmitted, metrics=metrics
        )
        transmitter.join()
        if collector is not None:
            collector.join()

        self._finalize(shards, answer_walls, metrics)
        if error is not None:
            self.driver.handle_epoch_error(error)
            raise error
        return self._merge_outcome(context, shards, responses_by_shard, window_results)

    def _run_collector(self, handle: EpochHandle) -> None:
        """Run the driver's collect loop; never lets the pipeline hang.

        Drivers' collect implementations convert failures into per-shard
        error emits; this wrapper is the backstop for a driver bug — any
        escaped exception is emitted for every not-yet-emitted shard so the
        transmitter's expected-item count still lands.
        """
        try:
            self.driver.collect(handle)
        except BaseException as exc:  # noqa: BLE001 — backstop, must not hang
            error = exc if isinstance(exc, Exception) else RuntimeError(repr(exc))
            for shard in handle.occupied:
                if shard.index not in handle.emitted:
                    handle.emit(shard.index, None, error=error)


# -- in-process drivers -------------------------------------------------------


class InlineDriver(StageDriver):
    """``inline`` × ``in-process``: answer every shard on the caller thread.

    The minimal engine configuration — no pool, no threads, no serialization
    — and the cheapest way to run the engine's full plan/gate/transmit/
    ingest policy surface.  Useful as a debugging baseline one step above
    the frozen serial reference (same barrier dataflow as ``thread-pool``
    scheduling, deterministic by construction).
    """

    scheduling = "inline"
    transport = "in-process"

    def collect(self, handle: EpochHandle) -> None:
        for shard in handle.occupied:
            clients = handle.context.clients[shard.as_slice()]
            arena = self.engine.arena_for(shard.index, clients)
            responses, _, wall = _timed_answer_shard(
                clients, handle.query_ids, handle.epoch, arena=arena
            )
            handle.emit(shard.index, responses, wall_seconds=wall)


class BarrierThreadDriver(StageDriver):
    """``thread-pool`` × ``in-process``: the legacy sharded executor's shape.

    All occupied shards are submitted to a thread pool up front; collect
    waits in shard-index order (a later shard may finish answering while an
    earlier one transmits), so emits — and therefore transmits — happen in
    serial client order and a worker exception surfaces exactly where
    ``Future.result()`` would have raised it.
    """

    scheduling = "thread-pool"
    transport = "in-process"

    def make_pool(self, num_workers: int) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="privapprox-shard"
        )

    def begin_epoch(self, handle: EpochHandle) -> None:
        pool = self.engine._ensure_pool()
        # Arenas are fetched (and possibly synced/rebuilt) on the caller
        # thread; the disjoint per-shard arenas are then used concurrently.
        self._futures = []
        for shard in handle.occupied:
            clients = handle.context.clients[shard.as_slice()]
            arena = self.engine.arena_for(shard.index, clients)
            self._futures.append(
                (
                    shard,
                    pool.submit(
                        _timed_answer_shard,
                        clients,
                        handle.query_ids,
                        handle.epoch,
                        arena=arena,
                    ),
                )
            )

    def collect(self, handle: EpochHandle) -> None:
        for shard, future in self._futures:
            responses, _, wall = future.result()
            handle.emit(shard.index, responses, wall_seconds=wall)


class OverlapThreadDriver(StageDriver):
    """``pipelined-overlap`` × ``in-process``: the legacy pipelined executor.

    Answer tasks run on a thread pool and emit directly from the worker
    thread — the engine's emit wrapper gates the deadline (the gate locks
    internally) and the bounded hand-off queue applies backpressure when
    transmission or ingestion falls behind.
    """

    scheduling = "pipelined-overlap"
    transport = "in-process"
    runs_collector = False

    def make_pool(self, num_workers: int) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="privapprox-pipeline"
        )

    def begin_epoch(self, handle: EpochHandle) -> None:
        pool = self.engine._ensure_pool()
        for shard in handle.occupied:
            # Fetch the arena on the caller thread so concurrent workers
            # never sync/rebuild shared engine state.
            clients = handle.context.clients[shard.as_slice()]
            arena = self.engine.arena_for(shard.index, clients)
            pool.submit(self._answer_one, handle, shard, clients, arena)

    @staticmethod
    def _answer_one(
        handle: EpochHandle,
        shard: Shard,
        clients: list["Client"],
        arena: ShardArena | None,
    ) -> None:
        started = time.perf_counter()
        try:
            responses, _ = answer_shard(
                clients, handle.query_ids, handle.epoch, arena=arena
            )
        except Exception as exc:  # surfaced from run_epoch, never swallowed
            handle.emit(shard.index, None, error=exc)
        else:
            handle.emit(
                shard.index, responses, wall_seconds=time.perf_counter() - started
            )


# -- the shared overlap pipeline stages ---------------------------------------


def _transmit_stage(
    context: EpochContext,
    expected: int,
    responses_by_shard: list,
    answered: queue.Queue,
    transmitted: queue.Queue,
    metrics: StageMetrics | None = None,
) -> None:
    """Publish finished shards to their shard-aware topics as they arrive.

    Every query's responses for the shard go out as one batch record per
    proxy on that query's channel.  Consumes exactly ``expected`` items from
    the answered queue even after a failure (so no answering worker ever
    blocks on a full hand-off queue), stops publishing once an error is
    seen, and always terminates the ingest stage with a ``("done", error)``
    sentinel.
    """
    error: Exception | None = None
    for _ in range(expected):
        shard_index, exc = answered.get()
        if exc is not None:
            if error is None:
                error = exc
            continue
        if error is not None:
            continue  # drain without publishing; the epoch already failed
        started = time.perf_counter()
        try:
            for index, query in enumerate(context.queries):
                context.proxies.transmit_shard(
                    shard_index,
                    [
                        list(response.encrypted.shares)
                        for response in responses_by_shard[shard_index][index]
                    ],
                    channel=query.channel,
                )
        except Exception as exc:
            error = exc
            continue
        finally:
            if metrics is not None:
                metrics.add_stage_seconds(
                    "transmit", time.perf_counter() - started
                )
        transmitted.put(("shard", shard_index))
    transmitted.put(("done", error))


def _ingest_stage(
    context: EpochContext,
    consumers: list[list[list["Consumer"]]],
    epoch: int,
    transmitted: queue.Queue,
    metrics: StageMetrics | None = None,
) -> tuple[list[list], Exception | None]:
    """Ingest each relayed shard as soon as its transmission lands.

    ``consumers`` holds one ``[slot][proxy]`` grid per context query.  For
    every relayed shard each query's consumers are polled across all proxies
    together, so every batch carries complete ``MID`` groups and takes the
    grouped-join fast path of that query's aggregator.  Returns one
    window-result list per query.  Runs until the transmitter's ``done``
    sentinel and never raises — the first error is returned for
    ``run_epoch`` to re-raise after the pipeline has fully unwound.

    On a failed epoch, every query's shard consumers are drained (polled and
    discarded) before returning: records that were published but never
    ingested must not linger in the cached consumers, or a caller that
    treats the failure as transient and runs the next epoch would ingest
    them into the wrong epoch.
    """
    window_results: list[list] = [[] for _ in context.queries]
    error: Exception | None = None
    while True:
        kind, payload = transmitted.get()
        if kind == "done":
            if error is None:
                error = payload
            if error is not None:
                for grid in consumers:
                    _drain_consumers(grid)
            return window_results, error
        if error is not None:
            continue  # skip further shards; the final drain discards them
        started = time.perf_counter()
        try:
            for index, query in enumerate(context.queries):
                shares = []
                for consumer in consumers[index][payload]:
                    for record in consumer.poll():
                        shares.extend(record.value)
                if shares:
                    window_results[index].extend(
                        query.aggregator.ingest_shares(shares, epoch, batched=True)
                    )
        except Exception as exc:
            error = exc
        finally:
            if metrics is not None:
                metrics.add_stage_seconds("ingest", time.perf_counter() - started)


def _drain_consumers(consumers: list[list["Consumer"]]) -> None:
    """Poll and discard everything pending on one query's shard consumers.

    Best-effort cleanup for failed epochs; a consumer that itself fails to
    poll is skipped (the epoch error already surfaces).
    """
    for slot_consumers in consumers:
        for consumer in slot_consumers:
            try:
                while consumer.poll():
                    pass
            except Exception:
                continue
