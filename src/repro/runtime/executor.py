"""The epoch-executor abstraction of the parallel runtime.

An :class:`EpochExecutor` owns the "answering epoch" dataflow of
:class:`~repro.core.system.PrivApproxSystem`: have every subscribed client
answer (sample -> SQL -> randomize -> encrypt), move the resulting shares
into the proxy brokers, and drain the proxy streams into the aggregator.
The system delegates :meth:`run_epoch` to whichever executor its
:class:`~repro.core.system.SystemConfig` selected and keeps everything else
(historical recording, result delivery, feedback re-tuning) executor-agnostic.

Four implementations ship with the runtime:

* :class:`~repro.runtime.serial.SerialExecutor` — the reference
  implementation: one in-order loop over clients, one transmit per client,
  per-record ingestion.  This is exactly the pre-runtime behavior.
* :class:`~repro.runtime.sharded.ShardedExecutor` — partitions clients into
  contiguous shards, answers each shard in a ``concurrent.futures`` worker
  pool, batches share transmission into the brokers per shard, and ingests
  with the aggregator's grouped join.  The three stages still run as
  barriers: transmit starts per shard only as answering results are
  collected, and ingestion runs after every shard has transmitted.
* :class:`~repro.runtime.pipelined.PipelinedExecutor` — removes the barriers:
  shards answer in a worker pool while a transmitter thread publishes each
  *completed* shard to shard-aware proxy topics and the caller's thread
  ingests relayed shards into the aggregator, all concurrently.
* :class:`~repro.runtime.process_pool.ProcessPoolEpochExecutor` — the
  pipelined shape with answering in worker *processes*: each worker receives
  a serialized, self-contained shard task (:mod:`repro.runtime.wire`),
  reconstructs its clients from seeded-RNG snapshots, and returns a
  serialized shard batch; shard boundaries adapt to per-shard wall-clock
  across epochs.  The only executor whose answer stage escapes the GIL.

Because every client draws from its own seeded RNG and keystream, the work is
embarrassingly parallel and the merged outcome is independent of shard count
and worker scheduling; the equivalence test suite pins this property down.
See ``docs/ARCHITECTURE.md`` for the executors side by side and the
seeded-equivalence contract each must satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # imported lazily to keep repro.core <-> repro.runtime acyclic
    from repro.core.aggregator import Aggregator
    from repro.core.client import Client
    from repro.core.proxy import ProxyNetwork
    from repro.pubsub import Consumer


@dataclass
class EpochContext:
    """Everything an executor needs to run one epoch for one query.

    ``clients`` is the system's *live* client list: executors that move
    client state to other processes must write the advanced state back into
    it so later epochs continue the same RNG streams.
    """

    clients: list["Client"]
    proxies: "ProxyNetwork"
    aggregator: "Aggregator"
    consumers: Sequence["Consumer"]
    query_id: str


@dataclass(frozen=True)
class EpochOutcome:
    """What one executed epoch produced.

    ``responses`` holds the participating clients' responses in client order
    (the deterministic merge of per-shard logs); ``window_results`` holds the
    window results the aggregator emitted while ingesting this epoch.
    """

    responses: tuple
    window_results: tuple

    @property
    def num_participants(self) -> int:
        return len(self.responses)


# The canonical registry of executor kinds make_executor understands;
# SystemConfig validation and the CLI choices import this single source.
EXECUTOR_KINDS = ("serial", "sharded", "pipelined", "process")


class EpochExecutor:
    """Base class for epoch execution strategies.

    An executor must satisfy the *seeded-equivalence contract* (documented in
    ``docs/ARCHITECTURE.md``): for a seeded system, :meth:`run_epoch` must
    produce the same participating responses in client order and byte-identical
    window results as :class:`~repro.runtime.serial.SerialExecutor`, for any
    internal parallelism or batching configuration.
    """

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        """Answer, transmit and ingest one epoch; return the merged outcome."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools or other resources (idempotent no-op here)."""


class PooledEpochExecutor(EpochExecutor):
    """Shared lifecycle for the pipelined-shape executors.

    The pipelined and process-pool executors differ in *where* shards answer
    (threads vs. processes) but share everything around it: worker/shard/queue
    validation, the lazily built worker pool, the per-query shard-topic
    consumers whose offsets persist across epochs, and shutdown.  Subclasses
    provide :meth:`_make_pool` and a ``_consumer_group_prefix``.

    Parameters
    ----------
    num_workers:
        Workers in the answering pool.
    num_shards:
        Shard count (and shard-aware topic slots per proxy); defaults to
        ``num_workers``.  More shards than workers gives finer pipelining.
    queue_depth:
        Capacity of the bounded hand-off queue feeding the transmitter.
        Small values apply backpressure when transmission or ingestion falls
        behind; the default keeps roughly one shard per worker in flight.
    """

    _consumer_group_prefix = "pooled"

    def __init__(
        self,
        num_workers: int = 4,
        num_shards: int | None = None,
        queue_depth: int | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if num_shards is not None and num_shards < 1:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if queue_depth is not None and queue_depth < 1:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        self.num_workers = num_workers
        self.num_shards = num_shards if num_shards is not None else num_workers
        self.queue_depth = queue_depth if queue_depth is not None else max(2, num_workers)
        self._pool = None
        # Shard-topic consumers per query id, tagged with the proxy network
        # they were built against; offsets persist across epochs.
        self._consumers: dict[str, tuple["ProxyNetwork", list[list["Consumer"]]]] = {}

    def _make_pool(self):
        """Build the ``concurrent.futures`` pool this executor answers on."""
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _consumers_for(self, context: EpochContext) -> list[list["Consumer"]]:
        """The per-(shard, proxy) consumers for this query, created on first use.

        The cache is keyed by query id but *validated* against the context's
        proxy network: query ids are deterministic per analyst name, so an
        executor reused across two deployments would otherwise keep polling
        the first deployment's brokers and silently ingest nothing.
        """
        cached = self._consumers.get(context.query_id)
        if cached is not None and cached[0] is context.proxies:
            return cached[1]
        consumers = context.proxies.make_shard_consumers(
            group_id=f"{self._consumer_group_prefix}-{context.query_id}",
            num_slots=self.num_shards,
        )
        self._consumers[context.query_id] = (context.proxies, consumers)
        return consumers

    def close(self) -> None:
        """Shut the worker pool down and drop cached consumers (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._consumers.clear()


def make_executor(
    name: str,
    workers: int = 4,
    shards: int | None = None,
    pool: str = "thread",
) -> EpochExecutor:
    """Build an executor from configuration values.

    Parameters
    ----------
    name:
        ``"serial"``, ``"sharded"``, ``"pipelined"`` or ``"process"`` (see
        :data:`EXECUTOR_KINDS`).
    workers:
        Worker pool size for the sharded, pipelined and process executors.
    shards:
        Shard count for the sharded, pipelined and process executors;
        ``None`` means one shard per worker.
    pool:
        ``"thread"`` or ``"process"``, sharded executor only — the pipelined
        executor shares live client/broker state across its stages and
        therefore only runs on threads, and the ``"process"`` executor is a
        process pool by construction (its workers answer from serialized
        shard tasks; see :mod:`repro.runtime.process_pool`).
    """
    from repro.runtime.pipelined import PipelinedExecutor
    from repro.runtime.process_pool import ProcessPoolEpochExecutor
    from repro.runtime.serial import SerialExecutor
    from repro.runtime.sharded import ShardedExecutor

    if name == "serial":
        return SerialExecutor()
    if name == "sharded":
        return ShardedExecutor(num_workers=workers, num_shards=shards, pool=pool)
    if name == "pipelined":
        if pool != "thread":
            raise ValueError(
                "the pipelined executor only supports pool='thread' "
                "(use the 'process' executor for cross-process pipelining)"
            )
        return PipelinedExecutor(num_workers=workers, num_shards=shards)
    if name == "process":
        return ProcessPoolEpochExecutor(num_workers=workers, num_shards=shards)
    raise ValueError(f"unknown executor {name!r} (expected one of {EXECUTOR_KINDS})")
