"""The epoch-executor abstraction of the parallel runtime.

An :class:`EpochExecutor` owns the "answering epoch" dataflow of
:class:`~repro.core.system.PrivApproxSystem`: have every subscribed client
answer (sample -> SQL -> randomize -> encrypt), move the resulting shares
into the proxy brokers, and drain the proxy streams into the aggregator.
The system delegates :meth:`run_epoch` to whichever executor its
:class:`~repro.core.system.SystemConfig` selected and keeps everything else
(historical recording, result delivery, feedback re-tuning) executor-agnostic.

An epoch context carries one :class:`QueryContext` per *concurrent* query:
all of them are served from a single answering pass over the clients (each
client answers every query it subscribes to in one go, sharing the local
table scan), while transmission and ingestion stay per query — every query
has its own channel topics, its own aggregator and its own consumers, so the
tenants are isolated end-to-end.  Single-query epochs are the one-element
case and keep the legacy shared proxy topics.

Four implementations ship with the runtime:

* :class:`~repro.runtime.serial.SerialExecutor` — the reference
  implementation: one in-order loop over clients, one transmit per client,
  per-record ingestion.  This is exactly the pre-runtime behavior.
* :class:`~repro.runtime.sharded.ShardedExecutor` — partitions clients into
  contiguous shards, answers each shard in a ``concurrent.futures`` worker
  pool, batches share transmission into the brokers per shard, and ingests
  with the aggregator's grouped join.  The three stages still run as
  barriers: transmit starts per shard only as answering results are
  collected, and ingestion runs after every shard has transmitted.
* :class:`~repro.runtime.pipelined.PipelinedExecutor` — removes the barriers:
  shards answer in a worker pool while a transmitter thread publishes each
  *completed* shard to shard-aware proxy topics and the caller's thread
  ingests relayed shards into the aggregator, all concurrently.
* :class:`~repro.runtime.process_pool.ProcessPoolEpochExecutor` — the
  pipelined shape with answering in worker *processes*: each worker receives
  a serialized, self-contained shard task (:mod:`repro.runtime.wire`),
  reconstructs its clients from seeded-RNG snapshots, and returns a
  serialized shard batch; shard boundaries adapt to per-shard wall-clock
  across epochs.  The only executor whose answer stage escapes the GIL.

Because every client draws from its own seeded RNG and keystream, the work is
embarrassingly parallel and the merged outcome is independent of shard count
and worker scheduling; the equivalence test suite pins this property down.
See ``docs/ARCHITECTURE.md`` for the executors side by side and the
seeded-equivalence contract each must satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # imported lazily to keep repro.core <-> repro.runtime acyclic
    from repro.core.aggregator import Aggregator
    from repro.core.client import Client
    from repro.core.proxy import ProxyNetwork
    from repro.pubsub import Consumer


@dataclass(frozen=True)
class QueryContext:
    """One query's slice of an epoch: its aggregator, consumers and channel.

    ``channel`` names the per-query topic scope on the proxies
    (:meth:`~repro.core.proxy.ProxyNetwork.transmit` and friends); ``None``
    keeps the legacy shared topics, which is correct only while a single
    query is in flight.  Multi-query epochs set ``channel=query_id`` so each
    aggregator only ever polls its own query's records.
    """

    query_id: str
    aggregator: "Aggregator"
    consumers: Sequence["Consumer"]
    channel: str | None = None


class EpochContext:
    """Everything an executor needs to run one epoch.

    ``clients`` is the system's *live* client list: executors that move
    client state to other processes must write the advanced state back into
    it so later epochs continue the same RNG streams.  ``queries`` holds one
    :class:`QueryContext` per concurrent query served by this epoch's single
    answering pass; the single-query constructor keywords (``aggregator``,
    ``consumers``, ``query_id``) remain as a convenience and build a
    one-element ``queries`` tuple.
    """

    def __init__(
        self,
        clients: list["Client"],
        proxies: "ProxyNetwork",
        queries: Sequence[QueryContext] | None = None,
        *,
        aggregator: "Aggregator | None" = None,
        consumers: Sequence["Consumer"] | None = None,
        query_id: str | None = None,
        deadline=None,
    ):
        if queries is None:
            if aggregator is None or consumers is None or query_id is None:
                raise ValueError(
                    "EpochContext needs either queries=[QueryContext, ...] or "
                    "the single-query aggregator/consumers/query_id trio"
                )
            queries = (
                QueryContext(
                    query_id=query_id, aggregator=aggregator, consumers=consumers
                ),
            )
        elif aggregator is not None or consumers is not None or query_id is not None:
            raise ValueError(
                "pass either queries= or the single-query trio, not both"
            )
        if not queries:
            raise ValueError("an epoch needs at least one query context")
        self.clients = clients
        self.proxies = proxies
        self.queries = tuple(queries)
        # Optional epoch-deadline gate (duck-typed; see
        # repro.runtime.scenario.EpochDeadline).  Executors consult it at
        # the transmit boundary: a response whose client the gate marks late
        # is produced (RNG streams advance) but never transmitted, and the
        # drop is recorded per query.  Because the gate decides from modeled
        # latency, never wall-clock, every executor drops the same answers.
        self.deadline = deadline

    @property
    def query_ids(self) -> list[str]:
        return [query.query_id for query in self.queries]

    # -- single-query conveniences (tests and legacy callers) ---------------

    def _single(self) -> QueryContext:
        if len(self.queries) != 1:
            raise ValueError(
                "this EpochContext carries multiple queries; use .queries"
            )
        return self.queries[0]

    @property
    def query_id(self) -> str:
        return self._single().query_id

    @property
    def aggregator(self) -> "Aggregator":
        return self._single().aggregator

    @property
    def consumers(self) -> Sequence["Consumer"]:
        return self._single().consumers


@dataclass(frozen=True)
class QueryEpochOutcome:
    """One query's share of an executed epoch.

    ``responses`` holds the query's participating responses in client order
    (the deterministic merge of per-shard logs); ``window_results`` holds the
    window results the query's aggregator emitted while ingesting the epoch.
    ``late_drops`` names the clients whose answers the epoch's deadline gate
    dropped for this query, sorted — empty when no deadline was armed.
    """

    query_id: str
    responses: tuple
    window_results: tuple
    late_drops: tuple = ()

    @property
    def num_participants(self) -> int:
        return len(self.responses)


@dataclass(frozen=True)
class EpochOutcome:
    """What one executed epoch produced, per query.

    ``per_query`` is aligned with the context's ``queries``.  The
    ``responses`` / ``window_results`` / ``num_participants`` accessors keep
    the single-query view for callers that ran a one-query epoch.
    """

    per_query: tuple[QueryEpochOutcome, ...]

    def _single(self) -> QueryEpochOutcome:
        if len(self.per_query) != 1:
            raise ValueError("this outcome covers multiple queries; use .per_query")
        return self.per_query[0]

    @property
    def responses(self) -> tuple:
        return self._single().responses

    @property
    def window_results(self) -> tuple:
        return self._single().window_results

    @property
    def num_participants(self) -> int:
        return self._single().num_participants


def apply_deadline(deadline, responses_per_query: list[list]) -> list[list]:
    """Filter late clients' responses out of one shard's answer lists.

    The shared deadline hook for the shard-shaped executors: called on each
    shard's per-query response lists before they are transmitted, so a late
    answer never reaches the proxies (it was still *produced*, advancing the
    client's RNG streams exactly as under the serial reference).  Thread-safe
    as long as the gate's ``should_drop`` is (the scenario layer's gate
    locks); a ``None`` deadline passes everything through untouched.
    """
    if deadline is None:
        return responses_per_query
    return [
        [response for response in responses if not deadline.should_drop(response)]
        for responses in responses_per_query
    ]


def late_drops_for(context: EpochContext, query_id: str) -> tuple:
    """One query's recorded deadline drops, or ``()`` without a gate."""
    if context.deadline is None:
        return ()
    return context.deadline.drops_for(query_id)


# -- the declarative driver registry ------------------------------------------
#
# Every parallel executor is a StagedEpochEngine (repro.runtime.engine)
# configured with one stage driver, classified along two orthogonal axes.
# SystemConfig validation, the CLI choices, make_executor and the CI smoke
# matrix all read this single source.

#: How the answer stage is scheduled.
SCHEDULING_KINDS = ("inline", "thread-pool", "pipelined-overlap", "pinned-worker")

#: How client state and answers cross (or don't cross) a process border.
TRANSPORT_KINDS = ("in-process", "framed-wire-local", "sealed-tcp-remote")

#: The registered (scheduling, transport) combinations, each backed by a
#: shipped driver.  Every combo satisfies the seeded-equivalence contract
#: against SerialExecutor.
DRIVER_COMBOS = (
    ("inline", "in-process"),
    ("thread-pool", "in-process"),
    ("thread-pool", "framed-wire-local"),
    ("pipelined-overlap", "in-process"),
    ("pipelined-overlap", "framed-wire-local"),
    ("pipelined-overlap", "sealed-tcp-remote"),
    ("pinned-worker", "framed-wire-local"),
    ("pinned-worker", "sealed-tcp-remote"),
)

# Structurally impossible combinations, with the reason validation reports.
_COMBO_REJECTIONS = {
    ("inline", "framed-wire-local"): (
        "inline scheduling answers on the caller thread over shared objects; "
        "a wire transport would serialize state only to hand it back to the "
        "same process"
    ),
    ("inline", "sealed-tcp-remote"): (
        "inline scheduling has no workers to place at the far end of a "
        "TCP connection"
    ),
    ("thread-pool", "sealed-tcp-remote"): (
        "the barrier thread pool collects in shard order from local futures; "
        "remote workers answer out of order and need the overlap or "
        "pinned-worker collectors"
    ),
    ("pinned-worker", "in-process"): (
        "pinned workers exist to hold resident state across a process "
        "border; in-process state needs no pinning (use thread-pool or "
        "pipelined-overlap scheduling)"
    ),
}

#: Legacy executor names as driver-combo aliases.  ``serial`` is absent on
#: purpose: SerialExecutor is the frozen engine-free reference.  The sharded
#: executor's ``pool="process"`` variant maps to thread-pool x
#: framed-wire-local and is handled by make_executor, not the alias table.
LEGACY_EXECUTOR_ALIASES = {
    "sharded": ("thread-pool", "in-process"),
    "pipelined": ("pipelined-overlap", "in-process"),
    "process": ("pipelined-overlap", "framed-wire-local"),
}

#: Every accepted ``--executor`` spelling that names a driver combo:
#: canonical ``"scheduling/transport"`` forms plus the legacy aliases.
DRIVER_SPELLINGS = {
    f"{scheduling}/{transport}": (scheduling, transport)
    for scheduling, transport in DRIVER_COMBOS
} | LEGACY_EXECUTOR_ALIASES

# The canonical registry of executor kinds make_executor understands;
# SystemConfig validation and the CLI choices import this single source.
# Legacy names first (stable CLI surface), canonical spellings after.
EXECUTOR_KINDS = ("serial", "sharded", "pipelined", "process") + tuple(
    f"{scheduling}/{transport}" for scheduling, transport in DRIVER_COMBOS
)


def validate_driver_combo(scheduling: str, transport: str) -> tuple[str, str]:
    """Check one (scheduling, transport) pair against the registry.

    Raises ``ValueError`` naming the unknown axis value, or — for known axes
    whose combination is structurally impossible — the recorded reason.
    Returns the pair unchanged so callers can validate-and-keep in one step.
    """
    if scheduling not in SCHEDULING_KINDS:
        raise ValueError(
            f"unknown scheduling kind {scheduling!r} "
            f"(expected one of {SCHEDULING_KINDS})"
        )
    if transport not in TRANSPORT_KINDS:
        raise ValueError(
            f"unknown transport kind {transport!r} "
            f"(expected one of {TRANSPORT_KINDS})"
        )
    combo = (scheduling, transport)
    if combo not in DRIVER_COMBOS:
        reason = _COMBO_REJECTIONS.get(
            combo, "no registered driver implements this combination"
        )
        raise ValueError(
            f"driver combo {scheduling!r} x {transport!r} is not available: {reason}"
        )
    return combo


def executor_supports_residency(name: str) -> bool:
    """Whether this executor spelling can keep client state worker-resident.

    True for the legacy ``"process"`` kind (its resident mode) and for any
    pinned-worker spelling — pinned workers *are* residency.
    """
    if name == "process":
        return True
    combo = DRIVER_SPELLINGS.get(name)
    return combo is not None and combo[0] == "pinned-worker"


def executor_supports_remote(name: str) -> bool:
    """Whether this executor spelling can drive remote TCP workers."""
    if name == "process":
        return True
    combo = DRIVER_SPELLINGS.get(name)
    return combo is not None and combo[1] == "sealed-tcp-remote"


def executor_requires_remote(name: str) -> bool:
    """Whether this spelling *only* makes sense with remote worker addresses."""
    combo = DRIVER_SPELLINGS.get(name)
    return combo is not None and combo[1] == "sealed-tcp-remote"


def cli_smoke_matrix() -> tuple[str, ...]:
    """The ``--executor`` spellings CI smoke-tests on a single host.

    Serial plus every registered combo that runs without separately
    launched TCP workers — sealed-TCP spellings are exercised by the
    dedicated remote smoke (``tools/remote_smoke.py``) instead.  Adding a
    combo to :data:`DRIVER_COMBOS` automatically adds its smoke gate.
    """
    return ("serial",) + tuple(
        f"{scheduling}/{transport}"
        for scheduling, transport in DRIVER_COMBOS
        if transport != "sealed-tcp-remote"
    )


class EpochExecutor:
    """Base class for epoch execution strategies.

    An executor must satisfy the *seeded-equivalence contract* (documented in
    ``docs/ARCHITECTURE.md``): for a seeded system, :meth:`run_epoch` must
    produce the same participating responses in client order and byte-identical
    window results as :class:`~repro.runtime.serial.SerialExecutor`, for any
    internal parallelism or batching configuration.
    """

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        """Answer, transmit and ingest one epoch; return the merged outcome."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools or other resources (idempotent no-op here)."""


class PooledEpochExecutor(EpochExecutor):
    """Shared lifecycle for the pipelined-shape executors.

    The pipelined and process-pool executors differ in *where* shards answer
    (threads vs. processes) but share everything around it: worker/shard/queue
    validation, the lazily built worker pool, the per-query shard-topic
    consumers whose offsets persist across epochs, and shutdown.  Subclasses
    provide :meth:`_make_pool` and a ``_consumer_group_prefix``.

    Parameters
    ----------
    num_workers:
        Workers in the answering pool.
    num_shards:
        Shard count (and shard-aware topic slots per proxy); defaults to
        ``num_workers``.  More shards than workers gives finer pipelining.
    queue_depth:
        Capacity of the bounded hand-off queue feeding the transmitter.
        Small values apply backpressure when transmission or ingestion falls
        behind; the default keeps roughly one shard per worker in flight.
    """

    _consumer_group_prefix = "pooled"

    def __init__(
        self,
        num_workers: int = 4,
        num_shards: int | None = None,
        queue_depth: int | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if num_shards is not None and num_shards < 1:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if queue_depth is not None and queue_depth < 1:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        self.num_workers = num_workers
        self.num_shards = num_shards if num_shards is not None else num_workers
        self.queue_depth = queue_depth if queue_depth is not None else max(2, num_workers)
        self._pool = None
        # Shard-topic consumers per (query id, channel), tagged with the
        # proxy network they were built against; offsets persist across
        # epochs.  Channel-scoped entries point at the query's own topics,
        # so a multi-query epoch never cross-reads another query's records.
        self._consumers: dict[
            tuple[str, str | None],
            tuple["ProxyNetwork", list[list["Consumer"]]],
        ] = {}

    def _make_pool(self):
        """Build the ``concurrent.futures`` pool this executor answers on."""
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _consumers_for(self, context: EpochContext) -> list[list[list["Consumer"]]]:
        """Per-query shard-topic consumers, created on first use.

        Returns one ``[slot][proxy]`` consumer grid per context query, in
        context order.  The cache is keyed by (query id, channel) but
        *validated* against the context's proxy network: query ids are
        deterministic per analyst name, so an executor reused across two
        deployments would otherwise keep polling the first deployment's
        brokers and silently ingest nothing.
        """
        grids = []
        for query in context.queries:
            key = (query.query_id, query.channel)
            cached = self._consumers.get(key)
            if cached is not None and cached[0] is context.proxies:
                grids.append(cached[1])
                continue
            group = f"{self._consumer_group_prefix}-{query.query_id}"
            if query.channel is not None:
                group = f"{group}-q-{query.channel}"
            grid = context.proxies.make_shard_consumers(
                group_id=group,
                num_slots=self.num_shards,
                channel=query.channel,
            )
            self._consumers[key] = (context.proxies, grid)
            grids.append(grid)
        return grids

    def close(self) -> None:
        """Shut the worker pool down and drop cached consumers (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._consumers.clear()


def make_executor(
    name: str,
    workers: int = 4,
    shards: int | None = None,
    pool: str = "thread",
    resident: bool = False,
    checkpoint_every: int = 4,
    remote_workers: Sequence[str] | None = None,
    key_file: str | None = None,
) -> EpochExecutor:
    """Build an executor from configuration values.

    Parameters
    ----------
    name:
        A legacy kind (``"serial"``, ``"sharded"``, ``"pipelined"``,
        ``"process"``) or a canonical ``"scheduling/transport"`` driver
        spelling such as ``"pipelined-overlap/framed-wire-local"`` (see
        :data:`EXECUTOR_KINDS` and :data:`DRIVER_COMBOS`).  Legacy names
        resolve through :data:`LEGACY_EXECUTOR_ALIASES` to the same engine
        configurations.
    workers:
        Worker pool size for the sharded, pipelined and process executors.
    shards:
        Shard count for the sharded, pipelined and process executors;
        ``None`` means one shard per worker.
    pool:
        ``"thread"`` or ``"process"``, sharded executor only — the pipelined
        executor shares live client/broker state across its stages and
        therefore only runs on threads, and the ``"process"`` executor is a
        process pool by construction (its workers answer from serialized
        shard tasks; see :mod:`repro.runtime.process_pool`).
    resident:
        Process executor only: keep client state *resident* in pinned worker
        processes (sticky shard→worker affinity, bootstrap-once /
        delta-thereafter wire traffic; :mod:`repro.runtime.affinity`) instead
        of round-tripping full snapshots every epoch.
    checkpoint_every:
        Resident mode only: refresh the parent's authoritative state copy
        every this many epochs per shard (``0`` = only on demand/shutdown).
    remote_workers:
        ``host:port`` addresses of separately launched TCP workers
        (:mod:`repro.runtime.remote`).  Implies residency (the remote
        protocol *is* the resident protocol over sockets) and requires the
        ``"process"`` executor kind and a ``key_file``.  The pool size is
        the number of addresses; ``workers`` is ignored.
    key_file:
        Path to the pre-shared HMAC keys for ``remote_workers`` — one hex
        key per line (line *i* keys worker *i*), or a single shared key.
    """
    from repro.runtime.affinity import ResidentProcessExecutor
    from repro.runtime.pipelined import PipelinedExecutor
    from repro.runtime.process_pool import ProcessPoolEpochExecutor
    from repro.runtime.serial import SerialExecutor
    from repro.runtime.sharded import ShardedExecutor

    combo = DRIVER_SPELLINGS.get(name)
    if resident and not executor_supports_residency(name):
        raise ValueError(
            "resident client state requires the 'process' executor "
            f"(got {name!r}): only its workers outlive an epoch"
        )
    if remote_workers:
        from repro.runtime.remote import (
            RemoteResidentExecutor,
            load_keys,
            remote_snapshot_engine,
        )

        if not executor_supports_remote(name):
            raise ValueError(
                "remote workers require the 'process' executor "
                f"(got {name!r}): the remote transport speaks the resident "
                "protocol"
            )
        if key_file is None:
            raise ValueError(
                "remote workers require a key file (one hex HMAC key per "
                "line; see docs/OPERATIONS.md)"
            )
        if combo == ("pipelined-overlap", "sealed-tcp-remote"):
            return remote_snapshot_engine(
                list(remote_workers),
                load_keys(key_file),
                num_shards=shards,
            )
        return RemoteResidentExecutor(
            list(remote_workers),
            load_keys(key_file),
            num_shards=shards,
            checkpoint_every=checkpoint_every,
        )
    if key_file is not None:
        raise ValueError("key_file only applies with remote_workers")
    if executor_requires_remote(name):
        raise ValueError(
            f"executor {name!r} needs remote worker addresses "
            "(--workers host:port,... with a --key-file; "
            "see docs/OPERATIONS.md)"
        )
    if name == "serial":
        return SerialExecutor()
    if name == "sharded":
        return ShardedExecutor(num_workers=workers, num_shards=shards, pool=pool)
    if name == "pipelined":
        if pool != "thread":
            raise ValueError(
                "the pipelined executor only supports pool='thread' "
                "(use the 'process' executor for cross-process pipelining)"
            )
        return PipelinedExecutor(num_workers=workers, num_shards=shards)
    if name == "process":
        if resident:
            return ResidentProcessExecutor(
                num_workers=workers,
                num_shards=shards,
                checkpoint_every=checkpoint_every,
            )
        return ProcessPoolEpochExecutor(num_workers=workers, num_shards=shards)
    if combo is not None:
        scheduling, transport = combo
        if combo == ("inline", "in-process"):
            from repro.runtime.engine import InlineDriver, StagedEpochEngine

            return StagedEpochEngine(
                InlineDriver(), num_workers=workers, num_shards=shards
            )
        if combo == ("thread-pool", "in-process"):
            return ShardedExecutor(num_workers=workers, num_shards=shards)
        if combo == ("thread-pool", "framed-wire-local"):
            return ShardedExecutor(
                num_workers=workers, num_shards=shards, pool="process"
            )
        if combo == ("pipelined-overlap", "in-process"):
            return PipelinedExecutor(num_workers=workers, num_shards=shards)
        if combo == ("pipelined-overlap", "framed-wire-local"):
            return ProcessPoolEpochExecutor(num_workers=workers, num_shards=shards)
        if combo == ("pinned-worker", "framed-wire-local"):
            return ResidentProcessExecutor(
                num_workers=workers,
                num_shards=shards,
                checkpoint_every=checkpoint_every,
            )
    raise ValueError(f"unknown executor {name!r} (expected one of {EXECUTOR_KINDS})")
