"""The epoch-executor abstraction of the parallel runtime.

An :class:`EpochExecutor` owns the "answering epoch" dataflow of
:class:`~repro.core.system.PrivApproxSystem`: have every subscribed client
answer (sample -> SQL -> randomize -> encrypt), move the resulting shares
into the proxy brokers, and drain the proxy streams into the aggregator.
The system delegates :meth:`run_epoch` to whichever executor its
:class:`~repro.core.system.SystemConfig` selected and keeps everything else
(historical recording, result delivery, feedback re-tuning) executor-agnostic.

Three implementations ship with the runtime:

* :class:`~repro.runtime.serial.SerialExecutor` — the reference
  implementation: one in-order loop over clients, one transmit per client,
  per-record ingestion.  This is exactly the pre-runtime behavior.
* :class:`~repro.runtime.sharded.ShardedExecutor` — partitions clients into
  contiguous shards, answers each shard in a ``concurrent.futures`` worker
  pool, batches share transmission into the brokers per shard, and ingests
  with the aggregator's grouped join.  The three stages still run as
  barriers: transmit starts per shard only as answering results are
  collected, and ingestion runs after every shard has transmitted.
* :class:`~repro.runtime.pipelined.PipelinedExecutor` — removes the barriers:
  shards answer in a worker pool while a transmitter thread publishes each
  *completed* shard to shard-aware proxy topics and the caller's thread
  ingests relayed shards into the aggregator, all concurrently.

Because every client draws from its own seeded RNG and keystream, the work is
embarrassingly parallel and the merged outcome is independent of shard count
and worker scheduling; the equivalence test suite pins this property down.
See ``docs/ARCHITECTURE.md`` for the executors side by side and the
seeded-equivalence contract each must satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # imported lazily to keep repro.core <-> repro.runtime acyclic
    from repro.core.aggregator import Aggregator, WindowResult
    from repro.core.client import Client, ClientResponse
    from repro.core.proxy import ProxyNetwork
    from repro.pubsub import Consumer


@dataclass
class EpochContext:
    """Everything an executor needs to run one epoch for one query.

    ``clients`` is the system's *live* client list: executors that move
    client state to other processes must write the advanced state back into
    it so later epochs continue the same RNG streams.
    """

    clients: list["Client"]
    proxies: "ProxyNetwork"
    aggregator: "Aggregator"
    consumers: Sequence["Consumer"]
    query_id: str


@dataclass(frozen=True)
class EpochOutcome:
    """What one executed epoch produced.

    ``responses`` holds the participating clients' responses in client order
    (the deterministic merge of per-shard logs); ``window_results`` holds the
    window results the aggregator emitted while ingesting this epoch.
    """

    responses: tuple
    window_results: tuple

    @property
    def num_participants(self) -> int:
        return len(self.responses)


# The canonical registry of executor kinds make_executor understands;
# SystemConfig validation and the CLI choices import this single source.
EXECUTOR_KINDS = ("serial", "sharded", "pipelined")


class EpochExecutor:
    """Base class for epoch execution strategies.

    An executor must satisfy the *seeded-equivalence contract* (documented in
    ``docs/ARCHITECTURE.md``): for a seeded system, :meth:`run_epoch` must
    produce the same participating responses in client order and byte-identical
    window results as :class:`~repro.runtime.serial.SerialExecutor`, for any
    internal parallelism or batching configuration.
    """

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        """Answer, transmit and ingest one epoch; return the merged outcome."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools or other resources (idempotent no-op here)."""


def make_executor(
    name: str,
    workers: int = 4,
    shards: int | None = None,
    pool: str = "thread",
) -> EpochExecutor:
    """Build an executor from configuration values.

    Parameters
    ----------
    name:
        ``"serial"``, ``"sharded"`` or ``"pipelined"`` (see
        :data:`EXECUTOR_KINDS`).
    workers:
        Worker pool size for the sharded and pipelined executors.
    shards:
        Shard count for the sharded and pipelined executors; ``None`` means
        one shard per worker.
    pool:
        ``"thread"`` or ``"process"``, sharded executor only — the pipelined
        executor shares live client/broker state across its stages and
        therefore only runs on threads.
    """
    from repro.runtime.pipelined import PipelinedExecutor
    from repro.runtime.serial import SerialExecutor
    from repro.runtime.sharded import ShardedExecutor

    if name == "serial":
        return SerialExecutor()
    if name == "sharded":
        return ShardedExecutor(num_workers=workers, num_shards=shards, pool=pool)
    if name == "pipelined":
        if pool != "thread":
            raise ValueError(
                "the pipelined executor only supports pool='thread' "
                "(use the sharded executor for process pools)"
            )
        return PipelinedExecutor(num_workers=workers, num_shards=shards)
    raise ValueError(f"unknown executor {name!r} (expected one of {EXECUTOR_KINDS})")
