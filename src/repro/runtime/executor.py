"""The epoch-executor abstraction of the parallel runtime.

An :class:`EpochExecutor` owns the "answering epoch" dataflow of
:class:`~repro.core.system.PrivApproxSystem`: have every subscribed client
answer (sample -> SQL -> randomize -> encrypt), move the resulting shares
into the proxy brokers, and drain the proxy streams into the aggregator.
The system delegates :meth:`run_epoch` to whichever executor its
:class:`~repro.core.system.SystemConfig` selected and keeps everything else
(historical recording, result delivery, feedback re-tuning) executor-agnostic.

Two implementations ship with the runtime:

* :class:`~repro.runtime.serial.SerialExecutor` — the reference
  implementation: one in-order loop over clients, one transmit per client,
  per-record ingestion.  This is exactly the pre-runtime behavior.
* :class:`~repro.runtime.sharded.ShardedExecutor` — partitions clients into
  contiguous shards, answers each shard in a ``concurrent.futures`` worker
  pool, batches share transmission into the brokers per shard, and ingests
  with the aggregator's grouped join.

Because every client draws from its own seeded RNG and keystream, the work is
embarrassingly parallel and the merged outcome is independent of shard count
and worker scheduling; the equivalence test suite pins this property down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # imported lazily to keep repro.core <-> repro.runtime acyclic
    from repro.core.aggregator import Aggregator, WindowResult
    from repro.core.client import Client, ClientResponse
    from repro.core.proxy import ProxyNetwork
    from repro.pubsub import Consumer


@dataclass
class EpochContext:
    """Everything an executor needs to run one epoch for one query.

    ``clients`` is the system's *live* client list: executors that move
    client state to other processes must write the advanced state back into
    it so later epochs continue the same RNG streams.
    """

    clients: list["Client"]
    proxies: "ProxyNetwork"
    aggregator: "Aggregator"
    consumers: Sequence["Consumer"]
    query_id: str


@dataclass(frozen=True)
class EpochOutcome:
    """What one executed epoch produced.

    ``responses`` holds the participating clients' responses in client order
    (the deterministic merge of per-shard logs); ``window_results`` holds the
    window results the aggregator emitted while ingesting this epoch.
    """

    responses: tuple
    window_results: tuple

    @property
    def num_participants(self) -> int:
        return len(self.responses)


# The canonical registry of executor kinds make_executor understands;
# SystemConfig validation and the CLI choices import this single source.
EXECUTOR_KINDS = ("serial", "sharded")


class EpochExecutor:
    """Base class for epoch execution strategies."""

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        """Answer, transmit and ingest one epoch; return the merged outcome."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools or other resources (idempotent no-op here)."""


def make_executor(
    name: str,
    workers: int = 4,
    shards: int | None = None,
    pool: str = "thread",
) -> EpochExecutor:
    """Build an executor from configuration values.

    ``name`` is ``"serial"`` or ``"sharded"``; ``workers``/``shards``/``pool``
    only apply to the sharded executor (``shards=None`` means one shard per
    worker).
    """
    from repro.runtime.serial import SerialExecutor
    from repro.runtime.sharded import ShardedExecutor

    if name == "serial":
        return SerialExecutor()
    if name == "sharded":
        return ShardedExecutor(num_workers=workers, num_shards=shards, pool=pool)
    raise ValueError(f"unknown executor {name!r} (expected one of {EXECUTOR_KINDS})")
