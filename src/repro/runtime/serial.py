"""The serial reference executor: the pre-runtime epoch loop, verbatim.

Kept deliberately simple — one pass over the clients, one proxy transmission
per participating client, per-record ingestion at the aggregator — so it can
serve as the executable specification that the parallel executors
(:class:`~repro.runtime.sharded.ShardedExecutor`,
:class:`~repro.runtime.pipelined.PipelinedExecutor`) must match
result-for-result; ``docs/ARCHITECTURE.md`` spells the contract out.

A multi-query epoch keeps the same shape: the single client loop answers
every context query from one :meth:`~repro.core.client.Client.answer` pass
(shared table scan, per-query RNG streams), transmits each query's shares on
that query's channel, and then ingests query by query.  This is the
reference the multi-query equivalence suite pins the parallel executors to.
"""

from __future__ import annotations

from repro.runtime.executor import (
    EpochContext,
    EpochExecutor,
    EpochOutcome,
    QueryEpochOutcome,
    late_drops_for,
)


class SerialExecutor(EpochExecutor):
    """Answers every client one-by-one in a single in-process loop."""

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        queries = context.queries
        query_ids = context.query_ids
        deadline = context.deadline
        responses_per_query: list[list] = [[] for _ in queries]
        for client in context.clients:
            for index, response in enumerate(client.answer(query_ids, epoch=epoch)):
                if response is None:
                    continue
                if deadline is not None and deadline.should_drop(response):
                    continue  # produced (RNG advanced) but missed the deadline
                responses_per_query[index].append(response)
                context.proxies.transmit(
                    list(response.encrypted.shares), channel=queries[index].channel
                )
        per_query = []
        for index, query in enumerate(queries):
            window_results = query.aggregator.consume_from_proxies(
                list(query.consumers), epoch=epoch
            )
            per_query.append(
                QueryEpochOutcome(
                    query_id=query.query_id,
                    responses=tuple(responses_per_query[index]),
                    window_results=tuple(window_results),
                    late_drops=late_drops_for(context, query.query_id),
                )
            )
        return EpochOutcome(per_query=tuple(per_query))
