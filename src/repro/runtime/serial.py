"""The serial reference executor: the pre-runtime epoch loop, verbatim.

Kept deliberately simple — one pass over the clients, one proxy transmission
per participating client, per-record ingestion at the aggregator — so it can
serve as the executable specification that the parallel executors
(:class:`~repro.runtime.sharded.ShardedExecutor`,
:class:`~repro.runtime.pipelined.PipelinedExecutor`) must match
result-for-result; ``docs/ARCHITECTURE.md`` spells the contract out.
"""

from __future__ import annotations

from repro.runtime.executor import EpochContext, EpochExecutor, EpochOutcome


class SerialExecutor(EpochExecutor):
    """Answers every client one-by-one in a single in-process loop."""

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        responses = []
        for client in context.clients:
            response = client.answer_query(context.query_id, epoch=epoch)
            if response is None:
                continue
            responses.append(response)
            context.proxies.transmit(list(response.encrypted.shares))
        window_results = context.aggregator.consume_from_proxies(
            list(context.consumers), epoch=epoch
        )
        return EpochOutcome(
            responses=tuple(responses), window_results=tuple(window_results)
        )
