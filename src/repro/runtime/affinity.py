"""Worker-resident client state behind sticky shard→worker affinity.

The snapshot-shipping process executor (:mod:`repro.runtime.process_pool`)
pays for its GIL escape by round-tripping every client's full snapshot across
the process border twice per epoch — ~5 KB per client each way, every epoch,
even though almost none of it changes between epochs.  This module makes the
client state live *inside* the workers instead:

* :class:`StickyShardRouter` pins each shard id to one long-lived worker
  process (``shard_index % num_workers``) with a dedicated task queue per
  worker, so frames for a shard always reach the worker holding its state.
  Shard *boundaries* may move (adaptive re-sharding); shard *ids* are stable
  (:func:`repro.runtime.sharding.plan_weighted_shards` always emits ids
  ``0..num_shards-1``), so affinity survives boundary moves.
* Each worker keeps a :class:`ResidentShardCache` of reconstructed
  :class:`~repro.core.client.Client` objects per shard id, installed once
  from a :class:`~repro.runtime.wire.ShardBootstrap` and advanced in place
  epoch after epoch.
* The steady-state traffic is tiny: a :class:`~repro.runtime.wire.ShardDelta`
  per shard per epoch (subscription changes and appended stream rows since
  the last frame — usually nothing) and a :class:`~repro.runtime.wire.ShardAck`
  back (responses plus a 32-byte state fingerprint instead of full advanced
  snapshots).

**Split authority, lazy reunification.**  The parent stays authoritative for
tables and subscriptions (its live clients are mutated directly by ingest and
re-tuning, and the changes ship as deltas); the pinned worker is
authoritative for the advancing RNG/keystream streams.  The parent's copy of
those streams is refreshed lazily — `export on demand`: every
``checkpoint_every`` epochs (the delta sets ``want_state`` and the ack
carries full snapshots, grafted back via
:meth:`~repro.core.client.Client.adopt_rng_state`), whenever a delta carries
mutations (so replay windows never span a parent-side change), and on
shutdown or shard migration.

**Recovery = checkpoint + replay.**  Between checkpoints the parent records
which ``(epoch, query_ids)`` each shard answered.  Because every draw in the
answering path comes from client-owned seeded RNG/keystream streams — and the
*number* of draws is content-independent (one sampling coin; randomization
draws depend only on the first coin; keystream consumption is fixed-length
per query) — re-answering the logged epochs on the checkpoint copy and
discarding the responses reproduces the worker's state exactly.  That is how
a killed worker, a poisoned fingerprint, or a mid-run re-shard falls back:
fast-forward the parent copy, then send a bootstrap frame for exactly the
moved/lost shards.  Results stay byte-identical to the serial reference —
the equivalence and torture suites pin this with residency on and off.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

# The re-shard hysteresis now lives in the engine's plan stage (re-exported
# here for compatibility); the resident driver only *reports* its spans.
from repro.runtime.engine import (  # noqa: F401 — re-exported constants
    _RESHARD_COOLDOWN_EPOCHS,
    _RESHARD_IMBALANCE_THRESHOLD,
    EpochHandle,
    StageDriver,
    StagedEpochEngine,
    answer_shard,
    make_shard_arena,
)
from repro.sqldb import ShardArena, arena_answering_enabled
from repro.runtime.executor import EpochContext
from repro.runtime.sharding import Shard, shard_span
from repro.runtime.wire import (
    ClientDelta,
    ShardAck,
    ShardBatch,
    ShardBootstrap,
    ShardDelta,
    ShardTask,
    WireError,
    decode_frame,
    decode_shard_ack,
    encode_shard_ack,
    encode_shard_batch,
    encode_shard_bootstrap,
    encode_shard_delta,
)

if TYPE_CHECKING:
    from repro.core.client import Client

# How often the parent-side collectors poll the result queue between
# liveness checks; long enough to stay off the CPU, short enough that a
# killed worker is noticed promptly.
_RECV_POLL_SECONDS = 0.05
# A shard that keeps answering "bootstrap required" after being re-sent a
# fresh bootstrap is wedged, not cold; give up instead of looping.
_MAX_REBOOTSTRAPS_PER_EPOCH = 3


class ResidentWorkerError(RuntimeError):
    """A resident worker failed (worker-side exception or worker death)."""


def shard_fingerprint(clients: Sequence["Client"]) -> bytes:
    """Digest of a whole shard's answering-relevant state.

    The concatenation of every client's
    :meth:`~repro.core.client.Client.state_fingerprint`, hashed once more so
    the fingerprint stays 32 bytes regardless of shard size.  Parent and
    worker compute it over the same client order, so agreement means the
    worker's resident copy will make exactly the draws the parent expects.
    """
    digest = hashlib.sha256()
    for client in clients:
        digest.update(client.state_fingerprint())
    return digest.digest()


class ResidentShardCache:
    """The worker-side cache: shard id → live reconstructed clients.

    A plain dict with the lifecycle rules made explicit: ``install`` replaces
    a shard's clients wholesale (bootstrap), ``lookup`` verifies the parent's
    expected fingerprint before handing the clients out (a mismatch or miss
    returns ``None`` — the caller acks ``bootstrap_required``), and
    ``invalidate`` drops a shard whose state can no longer be trusted (a
    worker-side exception mid-answer leaves it half-advanced).
    """

    def __init__(self) -> None:
        self._clients: dict[int, list["Client"]] = {}
        # Shard id → ShardArena over the resident clients' databases; lives
        # and dies with the residency (bootstrap replaces it, invalidate
        # drops it) and syncs incrementally under ShardDelta traffic.
        self._arenas: dict[int, ShardArena] = {}

    def install(self, shard_index: int, clients: list["Client"]) -> None:
        self._clients[shard_index] = clients
        self._arenas.pop(shard_index, None)

    def lookup(self, shard_index: int, expected_fingerprint: bytes) -> list["Client"] | None:
        clients = self._clients.get(shard_index)
        if clients is None:
            return None
        if shard_fingerprint(clients) != expected_fingerprint:
            self.invalidate(shard_index)
            return None
        return clients

    def invalidate(self, shard_index: int) -> None:
        self._clients.pop(shard_index, None)
        self._arenas.pop(shard_index, None)

    def arena_for(self, shard_index: int) -> ShardArena | None:
        """The resident shard's arena, built lazily and reused across epochs.

        Returns ``None`` (dropping any cached arena) when arena answering is
        disabled or the shard is not resident.  Membership is compared by
        database-object identity, so a re-bootstrap that replaced the client
        objects rebuilds the arena while ``ShardDelta`` appends sync into it
        incrementally.
        """
        clients = self._clients.get(shard_index)
        if clients is None or not arena_answering_enabled():
            self._arenas.pop(shard_index, None)
            return None
        databases = [client.database for client in clients]
        arena = self._arenas.get(shard_index)
        if arena is None or not arena.matches(databases):
            arena = ShardArena(databases)
            self._arenas[shard_index] = arena
        return arena

    def __len__(self) -> int:
        return len(self._clients)


def _answer_from_residency(
    cache: ResidentShardCache,
    shard_index: int,
    epoch: int,
    query_ids: tuple,
    want_state: bool,
    clients: list["Client"],
) -> ShardAck:
    """Answer one epoch from resident clients and build the ack."""
    start = time.perf_counter()
    if query_ids:
        responses_per_query, clients = answer_shard(
            clients, query_ids, epoch, arena=cache.arena_for(shard_index)
        )
        responses = tuple(tuple(responses) for responses in responses_per_query)
    else:
        responses = ()
    wall_seconds = time.perf_counter() - start
    return ShardAck(
        shard_index=shard_index,
        epoch=epoch,
        wall_seconds=wall_seconds,
        responses=responses,
        fingerprint=shard_fingerprint(clients),
        client_states=(
            tuple(client.export_state() for client in clients) if want_state else None
        ),
    )


def serve_resident_frame(cache: ResidentShardCache, frame: bytes) -> bytes:
    """Serve one bootstrap/delta frame against a resident cache.

    The single protocol step both worker front-ends share — the in-process
    pinned worker loop (:func:`resident_worker_main`) and the TCP worker
    server (:mod:`repro.runtime.remote`): decode the frame, install or look
    up the shard's resident clients, answer, and return the encoded
    :class:`~repro.runtime.wire.ShardAck`.  Every frame produces exactly one
    ack — success, ``bootstrap_required``, or a captured worker-side error —
    so the parent's collector never counts itself into a hang.  An exception
    while answering invalidates the shard (its clients may be half-advanced)
    so the parent re-bootstraps it.
    """
    # Imported here: repro.core imports repro.runtime at package level, so a
    # module-level import would be cyclic.
    from repro.core.client import Client

    shard_index = -1
    epoch = -1
    try:
        message = decode_frame(frame)
        shard_index = message.shard_index
        epoch = message.epoch
        if isinstance(message, ShardBootstrap):
            clients = [Client.from_state(state) for state in message.client_states]
            cache.install(shard_index, clients)
            ack = _answer_from_residency(
                cache, shard_index, epoch, message.query_ids, False, clients
            )
        elif isinstance(message, ShardDelta):
            clients = cache.lookup(shard_index, message.expected_fingerprint)
            if clients is None:
                ack = ShardAck(
                    shard_index=shard_index, epoch=epoch, bootstrap_required=True
                )
            else:
                for client, delta in zip(clients, message.deltas):
                    if delta is not None:
                        client.apply_delta(delta)
                        # Delta-driven index maintenance: fold the
                        # appended rows into any live columnar mirrors
                        # now, at ingest, keeping the rebuild/append
                        # work off the answer critical path.
                        client.database.sync_columnar()
                ack = _answer_from_residency(
                    cache,
                    shard_index,
                    epoch,
                    message.query_ids,
                    message.want_state,
                    clients,
                )
        elif isinstance(message, ShardTask):
            # Snapshot shipping over the resident front-ends: the
            # pipelined-overlap x sealed-tcp-remote driver sends full client
            # snapshots every epoch.  Answer statelessly — the resident
            # cache is never touched, so one worker can serve resident and
            # snapshot coordinators interchangeably — and return a
            # ShardBatch (advanced snapshots travel back in the frame).
            start = time.perf_counter()
            clients = [Client.from_state(state) for state in message.client_states]
            responses_per_query, clients = answer_shard(
                clients,
                message.query_ids,
                message.epoch,
                arena=make_shard_arena(clients),
            )
            return encode_shard_batch(
                ShardBatch(
                    shard_index=shard_index,
                    epoch=epoch,
                    wall_seconds=time.perf_counter() - start,
                    responses=tuple(
                        tuple(responses) for responses in responses_per_query
                    ),
                    client_states=tuple(
                        client.export_state() for client in clients
                    ),
                )
            )
        else:
            raise WireError(
                f"resident worker cannot serve {type(message).__name__} frames"
            )
    except Exception as exc:  # noqa: BLE001 — every failure must become an ack
        cache.invalidate(shard_index)
        ack = ShardAck(
            shard_index=shard_index,
            epoch=epoch,
            error=(type(exc).__name__, str(exc)),
        )
    return encode_shard_ack(ack)


def resident_worker_main(task_queue, result_queue) -> None:
    """The pinned worker loop: bootstrap/delta frames in, ack frames out.

    Runs in a dedicated process until it receives the ``None`` sentinel.
    State lives in a :class:`ResidentShardCache` for the life of the
    process; each frame is served by :func:`serve_resident_frame`.
    """
    cache = ResidentShardCache()
    while True:
        frame = task_queue.get()
        if frame is None:
            return
        result_queue.put(serve_resident_frame(cache, frame))


class _WorkerHandle:
    """One pinned worker: its process and its dedicated task queue."""

    __slots__ = ("process", "task_queue")

    def __init__(self, process, task_queue):
        self.process = process
        self.task_queue = task_queue


class StickyShardRouter:
    """Routes shard frames to long-lived pinned worker processes.

    The affinity function is ``shard_index % num_workers`` — deterministic
    and stable, so a shard's frames always land on the worker caching its
    state.  Workers read framed bytes from their own task queue and push ack
    bytes onto one shared result queue; the router only moves bytes, the
    executor owns all protocol decisions.  Dead workers are detected via
    ``Process.is_alive`` and replaced with :meth:`replace` (their resident
    state is gone — the executor re-bootstraps their shards).
    """

    def __init__(self, num_workers: int, context=None):
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers
        self._ctx = context if context is not None else multiprocessing.get_context()
        self._workers: list[_WorkerHandle | None] = [None] * num_workers
        self._result_queue = self._ctx.Queue()
        self.workers_spawned = 0
        self.workers_replaced = 0

    def slot_for(self, shard_index: int) -> int:
        """The worker slot a shard id is pinned to (stable across epochs)."""
        return shard_index % self.num_workers

    def worker_alive(self, slot: int) -> bool:
        handle = self._workers[slot]
        return handle is not None and handle.process.is_alive()

    def dead_slots(self) -> list[int]:
        """Slots whose worker was started but is no longer alive."""
        return [
            slot
            for slot, handle in enumerate(self._workers)
            if handle is not None and not handle.process.is_alive()
        ]

    def _spawn(self, slot: int) -> None:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=resident_worker_main,
            args=(task_queue, self._result_queue),
            name=f"privapprox-resident-{slot}",
            daemon=True,
        )
        process.start()
        self._workers[slot] = _WorkerHandle(process, task_queue)
        self.workers_spawned += 1

    def ensure_worker(self, slot: int) -> None:
        if not self.worker_alive(slot):
            if self._workers[slot] is not None:
                self.replace(slot)
            else:
                self._spawn(slot)

    def replace(self, slot: int) -> None:
        """Tear down a (dead or live) worker and spawn a fresh one."""
        handle = self._workers[slot]
        if handle is not None:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=2.0)
            handle.task_queue.close()
            self.workers_replaced += 1
        self._workers[slot] = None
        self._spawn(slot)

    def send(self, shard_index: int, frame: bytes) -> None:
        slot = self.slot_for(shard_index)
        self.ensure_worker(slot)
        self._workers[slot].task_queue.put(frame)

    def recv(self, timeout: float) -> bytes:
        """Next ack frame; raises ``queue.Empty`` after ``timeout`` seconds."""
        return self._result_queue.get(timeout=timeout)

    def drain_stale(self) -> None:
        """Discard acks left over from a failed epoch or sync round."""
        while True:
            try:
                self._result_queue.get_nowait()
            except queue.Empty:
                return

    def close(self) -> None:
        """Send every live worker its sentinel; terminate stragglers."""
        for handle in self._workers:
            if handle is not None and handle.process.is_alive():
                try:
                    handle.task_queue.put(None)
                except (ValueError, OSError):
                    pass
        for slot, handle in enumerate(self._workers):
            if handle is None:
                continue
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.task_queue.close()
            self._workers[slot] = None


@dataclass
class _ShardResidency:
    """Parent-side bookkeeping for one shard id.

    ``start``/``stop`` are the boundaries the resident copy was built for
    (affinity survives boundary moves, resident state does not — a moved
    shard is synced back and re-bootstrapped).  ``fingerprint`` is the last
    acked state digest the next delta will demand.  ``replay_log`` holds the
    ``(epoch, query_ids)`` answered since the parent's copy was last current;
    replaying it on the checkpoint copy reproduces the worker state exactly.
    ``replay_subscriptions`` pins the per-client subscription sets those
    logged epochs actually ran under — replay must restore them, because a
    parent-side unsubscribe or re-tune whose checkpoint ack never landed
    would otherwise change which draws the replay makes.  ``baseline`` is
    the per-client subscriptions/table-content snapshot deltas are diffed
    against.
    """

    resident: bool = False
    start: int = 0
    stop: int = 0
    fingerprint: bytes = b""
    replay_log: list = field(default_factory=list)
    replay_subscriptions: list | None = None
    baseline: list | None = None
    epochs_since_checkpoint: int = 0


def _client_baseline(client: "Client") -> tuple[dict, dict]:
    """Snapshot the parent-authoritative parts deltas are computed against.

    The table snapshot keeps the *rows themselves* (as a tuple), not just a
    row count: a delete-and-reinsert or an in-place row edit can leave the
    length unchanged while the content diverges, and the worker's copy would
    silently go stale — tables are excluded from the state fingerprint on
    purpose, so nothing downstream would catch it.  Prefix comparison against
    the snapshot is a C-speed tuple equality check that short-circuits on the
    first mismatch.
    """
    tables = {}
    for name in client.database.table_names():
        table = client.database.table(name)
        columns = tuple((column.name, column.sql_type) for column in table.columns)
        tables[name] = (columns, tuple(table.rows))
    return (client.subscriptions, tables)


def _delta_since(client: "Client", baseline: tuple[dict, dict]) -> tuple:
    """Diff a live client against its baseline.

    Returns ``(delta_or_None, dirty)``: ``dirty`` means the change cannot be
    expressed as a delta (a table dropped, re-schema'd, shrunk, or edited
    anywhere in the already-shipped prefix) and the shard must fall back to
    a full bootstrap.
    """
    base_subs, base_tables = baseline
    subs = client.subscriptions
    subscribe = tuple(
        (query, parameters)
        for query_id, (query, parameters) in sorted(subs.items())
        if base_subs.get(query_id) != (query, parameters)
    )
    unsubscribe = tuple(
        query_id for query_id in sorted(base_subs) if query_id not in subs
    )
    append_rows = []
    names = client.database.table_names()
    for name in base_tables:
        if name not in names:
            return None, True
    for name in names:
        table = client.database.table(name)
        columns = tuple((column.name, column.sql_type) for column in table.columns)
        base = base_tables.get(name)
        if base is None:
            append_rows.append((name, columns, tuple(table.rows)))
            continue
        base_columns, base_rows = base
        base_count = len(base_rows)
        if (
            columns != base_columns
            or len(table.rows) < base_count
            or tuple(table.rows[:base_count]) != base_rows
        ):
            return None, True
        if len(table.rows) > base_count:
            append_rows.append((name, columns, tuple(table.rows[base_count:])))
    if not (subscribe or unsubscribe or append_rows):
        return None, False
    return (
        ClientDelta(
            subscribe=subscribe,
            unsubscribe=unsubscribe,
            append_rows=tuple(append_rows),
        ),
        False,
    )


class ResidentDriver(StageDriver):
    """``pinned-worker`` scheduling: resident state, sticky affinity.

    The engine runs its overlap dataflow; this driver owns the resident
    protocol — bootstrap-once / delta-thereafter framing, checkpoint +
    replay recovery, worker healing, shard migration — and reports its
    per-shard spans so the engine's plan stage can apply re-shard
    hysteresis.  The transport axis is ``framed-wire-local`` over a
    :class:`StickyShardRouter` of pinned processes by default; a
    ``router_factory`` swaps in any router speaking the same interface —
    :class:`~repro.runtime.remote.RemoteWorkerTransport` makes this the
    ``sealed-tcp-remote`` combination without changing a single protocol
    decision.

    Parameters
    ----------
    checkpoint_every:
        Refresh the parent's authoritative copy every this many acked epochs
        per shard (``0`` = only on demand: mutation epochs, migration,
        shutdown).  Smaller values shorten recovery replay at the cost of
        periodic full-state acks.
    router_factory:
        ``num_workers -> router``; defaults to :class:`StickyShardRouter`.
    transport:
        Override the declared transport axis (the remote factory passes
        ``"sealed-tcp-remote"``).
    """

    scheduling = "pinned-worker"
    transport = "framed-wire-local"
    runs_collector = True

    def __init__(
        self,
        checkpoint_every: int = 4,
        router_factory=None,
        transport: str | None = None,
    ):
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be non-negative, got {checkpoint_every}"
            )
        self.checkpoint_every = checkpoint_every
        self._router_factory = router_factory
        if transport is not None:
            self.transport = transport
        self._router = None
        self._shards: dict[int, _ShardResidency] = {}
        self._last_context: EpochContext | None = None
        self._pending: dict[int, Shard] = {}
        # Observability: frame counts and fallback events, surfaced on the
        # executor shims for the benchmark's shrinkage claim.
        self.bootstrap_frames = 0
        self.delta_frames = 0
        self.sync_frames = 0
        self.rebootstraps = 0

    # -- lifecycle -----------------------------------------------------------

    def _ensure_router(self):
        if self._router is None:
            if self._router_factory is not None:
                self._router = self._router_factory(self.engine.num_workers)
            else:
                self._router = StickyShardRouter(self.engine.num_workers)
        return self._router

    def close(self) -> None:
        """Export resident state back to the parent, then stop the workers."""
        if self._router is not None:
            try:
                if self._last_context is not None:
                    resident = [
                        index for index, st in self._shards.items() if st.resident
                    ]
                    if resident:
                        self._sync_shards(self._last_context, resident)
            finally:
                self._router.close()
                self._router = None
        self._shards.clear()
        self._last_context = None

    # -- engine hooks --------------------------------------------------------

    def prepare(self, context: EpochContext, epoch: int) -> None:
        self._last_context = context
        router = self._ensure_router()
        router.drain_stale()
        self._heal_workers(context)

    def residency_spans(self) -> dict[int, tuple[int, int]]:
        """The recorded per-shard spans (kept even for shards that just lost
        residency — moving their boundary would needlessly invalidate their
        still-resident neighbors)."""
        return {
            index: (state.start, state.stop)
            for index, state in self._shards.items()
        }

    def migrate(self, context: EpochContext, shards: list[Shard]) -> int:
        return self._migrate_moved_shards(context, shards)

    def begin_epoch(self, handle: EpochHandle) -> None:
        """Frame and send every occupied shard's bootstrap/delta.

        Frames are all built *before* any is sent: ``_frame_for`` may need a
        synchronous state sync (dirty tables → export + bootstrap), which is
        only safe while no epoch acks are in flight on the result queue.
        """
        router = self._ensure_router()
        context, epoch, query_ids = handle.context, handle.epoch, handle.query_ids
        self._pending = {}
        try:
            frames = [
                (shard, self._frame_for(context, shard, epoch, query_ids))
                for shard in handle.occupied
            ]
            for shard, frame in frames:
                handle.metrics.add_wire_bytes(len(frame))
                router.send(shard.index, frame)
                self._pending[shard.index] = shard
        except Exception:
            # Workers already holding this epoch's frames may answer them and
            # advance state the parent never logged; residency cannot be
            # trusted for any shard this epoch touched, so every occupied
            # shard re-bootstraps (from checkpoint + replay) next epoch.
            # (The engine keeps the partial wire bytes recorded.)
            for shard in handle.occupied:
                self._residency(shard.index).resident = False
            raise

    def collect(self, handle: EpochHandle) -> None:
        """Decode acks, adopt checkpoints, fall back to bootstrap on demand.

        Runs on the engine's collector thread.  Emits exactly once per
        pending shard — success, worker error, or worker death — so the
        transmitter's expected-item count never hangs.  A
        ``bootstrap_required`` ack re-sends a bootstrap frame for the same
        epoch (the shard stays pending), bounded by
        ``_MAX_REBOOTSTRAPS_PER_EPOCH``.
        """
        router = self._router
        context, epoch, query_ids = handle.context, handle.epoch, handle.query_ids
        pending = self._pending
        rebootstraps: dict[int, int] = {}

        def fail(shard: Shard, exc: Exception) -> None:
            self._residency(shard.index).resident = False
            handle.emit(shard.index, None, error=exc)

        while pending:
            for shard_index in list(pending):
                if not router.worker_alive(router.slot_for(shard_index)):
                    shard = pending.pop(shard_index)
                    # The resident copy died with the worker; the replay log
                    # still reaches the last *acked* epoch, so the next epoch
                    # re-bootstraps from checkpoint + replay.
                    fail(
                        shard,
                        ResidentWorkerError(
                            f"worker pinned to shard {shard_index} died mid-epoch"
                        ),
                    )
            if not pending:
                return
            try:
                blob = router.recv(timeout=_RECV_POLL_SECONDS)
            except queue.Empty:
                continue
            handle.metrics.add_wire_bytes(len(blob))
            try:
                ack = decode_shard_ack(blob)
            except WireError as exc:
                for shard in list(pending.values()):
                    fail(shard, exc)
                pending.clear()
                return
            if ack.shard_index == -1 and ack.error is not None:
                # The worker could not even decode the frame enough to name a
                # shard; nothing can be attributed, so the epoch fails whole.
                exc = ResidentWorkerError(f"{ack.error[0]}: {ack.error[1]}")
                for shard in list(pending.values()):
                    fail(shard, exc)
                pending.clear()
                return
            shard = pending.get(ack.shard_index)
            if shard is None or ack.epoch != epoch:
                continue  # stale ack from an earlier, failed epoch
            state = self._residency(shard.index)
            if ack.error is not None:
                # The worker invalidated its cache before acking.
                del pending[shard.index]
                fail(shard, ResidentWorkerError(f"{ack.error[0]}: {ack.error[1]}"))
                continue
            if ack.bootstrap_required:
                count = rebootstraps.get(shard.index, 0) + 1
                rebootstraps[shard.index] = count
                self.rebootstraps += 1
                state.resident = False
                if count > _MAX_REBOOTSTRAPS_PER_EPOCH:
                    del pending[shard.index]
                    fail(
                        shard,
                        ResidentWorkerError(
                            f"shard {shard.index} still required a bootstrap "
                            f"after {count - 1} attempts"
                        ),
                    )
                    continue
                try:
                    frame = self._bootstrap_frame(context, shard, epoch, query_ids)
                    handle.metrics.add_wire_bytes(len(frame))
                    router.send(shard.index, frame)
                except Exception as exc:  # unpicklable state, dead worker, ...
                    del pending[shard.index]
                    fail(shard, exc)
                continue
            # Success: adopt the fingerprint (and checkpoint, if present).
            del pending[shard.index]
            state.fingerprint = ack.fingerprint
            if ack.client_states is not None:
                clients = context.clients[state.start : state.stop]
                for client, snapshot in zip(clients, ack.client_states):
                    client.adopt_rng_state(snapshot)
                state.replay_log.clear()
                state.epochs_since_checkpoint = 0
                self._capture_replay_subscriptions(context, state)
            else:
                state.replay_log.append((epoch, query_ids))
                state.epochs_since_checkpoint += 1
            handle.emit(
                shard.index,
                [list(responses) for responses in ack.responses],
                wall_seconds=ack.wall_seconds,
            )

    # -- recovery helpers ----------------------------------------------------

    def _residency(self, shard_index: int) -> _ShardResidency:
        state = self._shards.get(shard_index)
        if state is None:
            state = _ShardResidency()
            self._shards[shard_index] = state
        return state

    @staticmethod
    def _apply_subscriptions(client: "Client", subscriptions: dict) -> None:
        """Make a client's subscription set equal the given qid → (query, params)."""
        for query_id in list(client.subscriptions):
            if query_id not in subscriptions:
                client.unsubscribe(query_id)
        for query, parameters in subscriptions.values():
            client.subscribe(query, parameters)

    def _capture_replay_subscriptions(
        self, context: EpochContext, state: _ShardResidency
    ) -> None:
        """Pin the subscription sets the next replay window will run under.

        Called exactly when the replay log resets (bootstrap send, checkpoint
        graft, sync graft): at those moments the live subscriptions equal the
        resident copy's, and — because mutation deltas force a checkpoint —
        they stay in force for every epoch the log will accumulate.
        """
        clients = context.clients[state.start : state.stop]
        state.replay_subscriptions = [client.subscriptions for client in clients]

    def _fast_forward(self, context: EpochContext, shard_index: int) -> None:
        """Replay the logged epochs on the parent's checkpoint copy.

        After this the parent's live clients for the shard carry exactly the
        RNG/keystream state the worker-resident copy had after its last acked
        epoch — see the module docstring for why replay is exact.  Replay
        runs under the pinned ``replay_subscriptions``: a subscription change
        whose checkpoint ack never landed (mutation epoch lost to a worker
        death) postdates every logged epoch, and replaying with it applied
        would skip or alter draws the worker actually made.  Table content
        needs no such pinning — draw counts are content-independent.
        """
        state = self._residency(shard_index)
        if not state.replay_log:
            return
        clients = context.clients[state.start : state.stop]
        live_subscriptions = None
        if state.replay_subscriptions is not None:
            live_subscriptions = [client.subscriptions for client in clients]
            for client, pinned in zip(clients, state.replay_subscriptions):
                self._apply_subscriptions(client, pinned)
        for epoch, query_ids in state.replay_log:
            answer_shard(clients, query_ids, epoch)
        if live_subscriptions is not None:
            for client, current in zip(clients, live_subscriptions):
                self._apply_subscriptions(client, current)
        state.replay_log.clear()
        state.epochs_since_checkpoint = 0

    def _heal_workers(self, context: EpochContext) -> None:
        """Replace dead workers; recover their shards' state parent-side."""
        router = self._ensure_router()
        for slot in router.dead_slots():
            router.replace(slot)
            for shard_index, state in self._shards.items():
                if state.resident and router.slot_for(shard_index) == slot:
                    self._fast_forward(context, shard_index)
                    state.resident = False

    def _sync_shards(self, context: EpochContext, shard_indices: list[int]) -> int:
        """Pull full state back from workers for the given resident shards.

        Sends sync deltas (no answering, ``want_state``), grafts the exported
        RNG/keystream state onto the parent's live clients, and marks the
        shards non-resident (the callers either re-bootstrap them under new
        boundaries or are shutting down).  Shards whose worker cannot serve
        the sync (died, fingerprint mismatch) fall back to checkpoint replay.
        Returns the wire bytes moved.
        """
        router = self._ensure_router()
        router.drain_stale()
        wire_bytes = 0
        pending: dict[int, _ShardResidency] = {}
        for shard_index in shard_indices:
            state = self._residency(shard_index)
            frame = encode_shard_delta(
                ShardDelta(
                    shard_index=shard_index,
                    epoch=-1,
                    query_ids=(),
                    deltas=(),
                    expected_fingerprint=state.fingerprint,
                    want_state=True,
                )
            )
            self.sync_frames += 1
            wire_bytes += len(frame)
            router.send(shard_index, frame)
            pending[shard_index] = state
        while pending:
            for shard_index in list(pending):
                if not router.worker_alive(router.slot_for(shard_index)):
                    state = pending.pop(shard_index)
                    self._fast_forward(context, shard_index)
                    state.resident = False
            if not pending:
                break
            try:
                blob = router.recv(timeout=_RECV_POLL_SECONDS)
            except queue.Empty:
                continue
            wire_bytes += len(blob)
            ack = decode_shard_ack(blob)
            state = pending.get(ack.shard_index)
            if state is None or ack.epoch != -1:
                continue  # stale ack from an earlier, failed round
            del pending[ack.shard_index]
            if ack.error is None and not ack.bootstrap_required and ack.client_states:
                clients = context.clients[state.start : state.stop]
                for client, snapshot in zip(clients, ack.client_states):
                    client.adopt_rng_state(snapshot)
                state.replay_log.clear()
                state.epochs_since_checkpoint = 0
                self._capture_replay_subscriptions(context, state)
            else:
                self._fast_forward(context, ack.shard_index)
            state.resident = False
        return wire_bytes

    def _migrate_moved_shards(self, context: EpochContext, shards: list[Shard]) -> int:
        """Sync back every resident shard whose boundaries are about to move.

        Adaptive re-sharding keeps shard ids stable but moves their client
        ranges; the resident copies are keyed to the old ranges, so exactly
        the moved shards are exported and later re-bootstrapped.  Returns the
        sync wire bytes.
        """
        moved = [
            shard.index
            for shard in shards
            if self._shards.get(shard.index) is not None
            and self._shards[shard.index].resident
            and shard_span(shard) != (
                self._shards[shard.index].start,
                self._shards[shard.index].stop,
            )
        ]
        if not moved:
            return 0
        return self._sync_shards(context, moved)

    # -- framing -------------------------------------------------------------

    def _bootstrap_frame(
        self, context: EpochContext, shard: Shard, epoch: int, query_ids: tuple
    ) -> bytes:
        """Fast-forward the parent copy and frame a full bootstrap."""
        state = self._residency(shard.index)
        self._fast_forward(context, shard.index)
        clients = context.clients[shard.as_slice()]
        frame = encode_shard_bootstrap(
            ShardBootstrap(
                shard_index=shard.index,
                epoch=epoch,
                query_ids=query_ids,
                client_states=tuple(client.export_state() for client in clients),
            )
        )
        state.resident = True
        state.start, state.stop = shard.start, shard.stop
        state.fingerprint = b""
        state.replay_log.clear()
        state.baseline = [_client_baseline(client) for client in clients]
        state.epochs_since_checkpoint = 0
        self._capture_replay_subscriptions(context, state)
        self.bootstrap_frames += 1
        return frame

    def _frame_for(
        self, context: EpochContext, shard: Shard, epoch: int, query_ids: tuple
    ) -> bytes:
        """The next frame for one occupied shard: delta if possible, else bootstrap."""
        state = self._residency(shard.index)
        if state.resident and (state.start, state.stop) == shard_span(shard):
            clients = context.clients[shard.as_slice()]
            deltas = []
            dirty = False
            for client, baseline in zip(clients, state.baseline):
                delta, client_dirty = _delta_since(client, baseline)
                if client_dirty:
                    dirty = True
                    break
                deltas.append(delta)
            if not dirty:
                mutated = any(delta is not None for delta in deltas)
                want_state = mutated or (
                    self.checkpoint_every > 0
                    and state.epochs_since_checkpoint + 1 >= self.checkpoint_every
                )
                frame = encode_shard_delta(
                    ShardDelta(
                        shard_index=shard.index,
                        epoch=epoch,
                        query_ids=query_ids,
                        deltas=tuple(deltas),
                        expected_fingerprint=state.fingerprint,
                        want_state=want_state,
                    )
                )
                if mutated:
                    state.baseline = [_client_baseline(client) for client in clients]
                self.delta_frames += 1
                return frame
            # A non-append mutation: pull the worker's stream state back so
            # the bootstrap below ships current RNG state with the new tables.
            self._sync_shards(context, [shard.index])
        return self._bootstrap_frame(context, shard, epoch, query_ids)


class ResidentProcessExecutor(StagedEpochEngine):
    """Deprecated shim: pinned-worker scheduling as an engine configuration.

    Same overlap dataflow and adaptive shard sizing as
    :class:`~repro.runtime.process_pool.ProcessPoolEpochExecutor`, but the
    per-epoch traffic is bootstrap-once / delta-thereafter (wire v3) instead
    of full snapshots both ways every epoch.  Satisfies the same
    seeded-equivalence contract.

    Parameters
    ----------
    adaptive:
        Feed per-shard wall-clock back into the next epoch's boundaries.
        Boundary moves under residency trigger a state sync + re-bootstrap
        of exactly the moved shards (hysteresis lives in the engine's plan
        stage).
    checkpoint_every:
        Refresh the parent's authoritative copy every this many acked epochs
        per shard (``0`` = only on demand: mutation epochs, migration,
        shutdown).  Smaller values shorten recovery replay at the cost of
        periodic full-state acks.
    """

    _consumer_group_prefix = "resident"

    def __init__(
        self,
        num_workers: int = 4,
        num_shards: int | None = None,
        queue_depth: int | None = None,
        adaptive: bool = True,
        checkpoint_every: int = 4,
    ):
        super().__init__(
            ResidentDriver(checkpoint_every=checkpoint_every),
            num_workers=num_workers,
            num_shards=num_shards,
            queue_depth=queue_depth,
            adaptive=adaptive,
        )

    # -- observability surface delegated to the driver ------------------------

    @property
    def checkpoint_every(self) -> int:
        return self.driver.checkpoint_every

    @property
    def bootstrap_frames(self) -> int:
        return self.driver.bootstrap_frames

    @property
    def delta_frames(self) -> int:
        return self.driver.delta_frames

    @property
    def sync_frames(self) -> int:
        return self.driver.sync_frames

    @property
    def rebootstraps(self) -> int:
        return self.driver.rebootstraps

    @property
    def _router(self):
        return self.driver._router

    @property
    def _shards(self) -> dict[int, _ShardResidency]:
        return self.driver._shards


