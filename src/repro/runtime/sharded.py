"""The sharded epoch executor: shard-parallel answering, batched transmission.

The client population is split into contiguous shards
(:func:`~repro.runtime.sharding.plan_shards`); each shard is answered by a
``concurrent.futures`` worker running :func:`answer_shard`, a module-level —
hence picklable — task, so the same code drives a thread pool (the default:
clients share the process and mutate their own RNG state in place) or a
process pool (client state travels to the worker and the advanced state is
written back on return).  Per shard, the collected shares are transmitted to
the proxy brokers in one batched publish instead of one publish per client,
and the aggregator ingests with its grouped join.

Multi-query epochs reuse the same shard task: a shard answers *all* context
queries from one pass over its clients (shared table scan, per-query RNG
streams) and returns one response list per query; transmission and ingestion
then run per query on that query's channel.

Determinism: every client owns a seeded RNG and keystream per query that
only its own shard task touches, so results do not depend on shard count or
worker interleaving.  Shard outputs are merged in shard-index order, which
equals serial client order because shards are contiguous.

The three stages still barrier on each other: transmission happens as shard
results are collected (in shard order) and ingestion runs only after every
shard has transmitted.  :class:`~repro.runtime.pipelined.PipelinedExecutor`
removes those barriers; see ``docs/ARCHITECTURE.md`` for the comparison.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.runtime.executor import (
    EpochContext,
    EpochExecutor,
    EpochOutcome,
    QueryEpochOutcome,
    apply_deadline,
    late_drops_for,
)
from repro.runtime.sharding import plan_shards

if TYPE_CHECKING:
    from repro.core.client import Client, ClientResponse

_POOL_KINDS = ("thread", "process")


def answer_shard(
    clients: list["Client"], query_ids: Sequence[str], epoch: int
) -> tuple[list[list["ClientResponse"]], list["Client"]]:
    """Answer one shard of clients for one epoch (the picklable shard task).

    Every client answers all of ``query_ids`` in one pass; the return value
    holds one participating-response list per query (client order within
    each list) together with the clients themselves: in-process (thread)
    execution returns the very same objects, while a process pool returns
    copies carrying the advanced RNG/keystream state that the parent must
    adopt for the next epoch.
    """
    responses_per_query: list[list["ClientResponse"]] = [[] for _ in query_ids]
    for client in clients:
        for index, response in enumerate(client.answer(query_ids, epoch=epoch)):
            if response is not None:
                responses_per_query[index].append(response)
    return responses_per_query, clients


class ShardedExecutor(EpochExecutor):
    """Shard-parallel epoch execution over a ``concurrent.futures`` pool.

    Parameters
    ----------
    num_workers:
        Worker threads/processes in the pool.
    num_shards:
        Shard count; defaults to ``num_workers``.  More shards than workers
        gives finer-grained load balancing at slightly more batching calls.
    pool:
        ``"thread"`` (default) or ``"process"``.  Threads are the right
        choice for the in-process simulation (no state shipping); the
        process pool exists to prove the shard tasks really are picklable
        units that could move across process — and later machine — borders.
    """

    def __init__(
        self,
        num_workers: int = 4,
        num_shards: int | None = None,
        pool: str = "thread",
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if num_shards is not None and num_shards < 1:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if pool not in _POOL_KINDS:
            raise ValueError(f"pool must be one of {_POOL_KINDS}, got {pool!r}")
        self.num_workers = num_workers
        self.num_shards = num_shards if num_shards is not None else num_workers
        self.pool = pool
        self._pool: Executor | None = None

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.pool == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="privapprox-shard",
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.num_workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (safe to call repeatedly)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- epoch execution ------------------------------------------------------

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        pool = self._ensure_pool()
        queries = context.queries
        query_ids = context.query_ids
        shards = plan_shards(len(context.clients), self.num_shards)
        futures = [
            pool.submit(
                answer_shard,
                context.clients[shard.as_slice()],
                query_ids,
                epoch,
            )
            for shard in shards
            if shard.num_items > 0
        ]
        occupied = [shard for shard in shards if shard.num_items > 0]
        responses_per_query: list[list] = [[] for _ in queries]
        for shard, future in zip(occupied, futures):
            shard_responses, shard_clients = future.result()
            if self.pool == "process":
                # Adopt the advanced client state so epoch t+1 continues the
                # same RNG/keystream sequences the serial reference would.
                context.clients[shard.as_slice()] = shard_clients
            shard_responses = apply_deadline(context.deadline, shard_responses)
            for index, query in enumerate(queries):
                responses_per_query[index].extend(shard_responses[index])
                context.proxies.transmit_batch(
                    [
                        list(response.encrypted.shares)
                        for response in shard_responses[index]
                    ],
                    channel=query.channel,
                )
        per_query = []
        for index, query in enumerate(queries):
            window_results = query.aggregator.consume_from_proxies(
                list(query.consumers), epoch=epoch, batched=True
            )
            per_query.append(
                QueryEpochOutcome(
                    query_id=query.query_id,
                    responses=tuple(responses_per_query[index]),
                    window_results=tuple(window_results),
                    late_drops=late_drops_for(context, query.query_id),
                )
            )
        return EpochOutcome(per_query=tuple(per_query))
