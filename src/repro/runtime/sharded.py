"""The sharded executor: a barrier-scheduling configuration of the engine.

Historically this module implemented shard-parallel answering with batched
transmission as its own executor; it is now a thin driver configuration over
:class:`~repro.runtime.engine.StagedEpochEngine`:

* ``pool="thread"`` — ``thread-pool`` scheduling × ``in-process`` transport
  (:class:`~repro.runtime.engine.BarrierThreadDriver`): clients share the
  process and mutate their own RNG state in place.
* ``pool="process"`` — ``thread-pool`` scheduling × ``framed-wire-local``
  transport (:class:`~repro.runtime.process_pool.SnapshotWireBarrierDriver`):
  each shard travels to a worker process as a serialized
  :mod:`repro.runtime.wire` task and the advanced client state is adopted on
  return — the minimal demonstration that shard tasks really are
  self-contained units that could cross process (and machine) borders.

Either way the engine runs the *barrier* dataflow: shard results are
collected in shard-index order, each shard's shares go to the proxy brokers
in one batched publish per query, and every query's aggregator ingests with
its grouped join only after the last shard has transmitted.  Determinism is
unchanged: per-client, per-query seeded RNGs make answers independent of
shard count and worker interleaving, and shard-order merging equals serial
client order because shards are contiguous.

:class:`~repro.runtime.pipelined.PipelinedExecutor` removes the stage
barriers; see ``docs/ARCHITECTURE.md`` for the staged-engine overview.

The name :class:`ShardedExecutor` is kept as a deprecation shim for one
release; new code should configure the engine through
``make_executor("thread-pool/in-process")`` (or the legacy alias
``"sharded"``).
"""

from __future__ import annotations

# Re-exported for compatibility: answer_shard lived here before the engine
# refactor and is the shard task every driver still runs.
from repro.runtime.engine import BarrierThreadDriver, StagedEpochEngine, answer_shard

__all__ = ["ShardedExecutor", "answer_shard"]

_POOL_KINDS = ("thread", "process")


class ShardedExecutor(StagedEpochEngine):
    """Deprecated shim: barrier scheduling as a staged-engine configuration.

    Parameters
    ----------
    num_workers:
        Worker threads/processes in the pool.
    num_shards:
        Shard count; defaults to ``num_workers``.  More shards than workers
        gives finer-grained load balancing at slightly more batching calls.
    pool:
        ``"thread"`` (default) or ``"process"`` — selects the in-process or
        framed-wire-local transport (see the module docstring).
    """

    _consumer_group_prefix = "sharded"

    def __init__(
        self,
        num_workers: int = 4,
        num_shards: int | None = None,
        pool: str = "thread",
    ):
        if pool not in _POOL_KINDS:
            raise ValueError(f"pool must be one of {_POOL_KINDS}, got {pool!r}")
        if pool == "thread":
            driver = BarrierThreadDriver()
        else:
            from repro.runtime.process_pool import SnapshotWireBarrierDriver

            driver = SnapshotWireBarrierDriver()
        super().__init__(driver, num_workers=num_workers, num_shards=num_shards)
        self.pool = pool
