"""Framed-wire-local stage drivers: answering escapes the GIL.

In-process drivers answer on threads: under the GIL they time-slice one
core, so the CPU-heavy answer stage (SQL → randomize → encrypt per client)
never truly parallelizes.  The drivers here answer each shard in a
``concurrent.futures.ProcessPoolExecutor`` worker behind the
``framed-wire-local`` transport:

1. **Serialize** — the parent snapshots each occupied shard's clients
   (:meth:`~repro.core.client.Client.export_state`) and frames them into a
   self-contained :class:`~repro.runtime.wire.ShardTask` blob — client seeds
   and mid-stream RNG/keystream states, local tables, and the subscription
   carrying the query and randomized-response parameters.  No broker, proxy
   or aggregator state crosses the process border.  Shards are submitted as
   they are encoded (early shards answer while later shards serialize), and
   all of it happens in the engine's pre-pipeline window: a pickling failure
   cancels the submitted work and surfaces with nothing transmitted.
2. **Answer (worker process)** — :func:`answer_shard_task` reconstructs the
   shard's clients from their snapshots, answers the epoch with exactly the
   draws the serial reference would make (the restored RNG/keystream resume
   mid-stream), and returns a framed :class:`~repro.runtime.wire.ShardBatch`:
   responses, advanced client snapshots, and the shard's answering
   wall-clock.
3. **Collect** — the parent decodes batches, writes the advanced client
   state back into the live client list (so epoch ``t + 1`` continues the
   same streams) and emits each shard to the engine, which owns deadline
   gating, transmission and ingestion.

Two scheduling shapes share that transport:

* :class:`SnapshotWireBarrierDriver` (``thread-pool`` scheduling) collects
  in shard-index order for the engine's barrier dataflow — this is
  ``ShardedExecutor(pool="process")``.
* :class:`OverlapSnapshotWireDriver` (``pipelined-overlap`` scheduling)
  collects in completion order on the engine's collector thread while
  transmission and ingestion overlap — the legacy
  :class:`ProcessPoolEpochExecutor`, kept here as a deprecation shim.

Adaptive shard sizing (:class:`~repro.runtime.engine.AdaptiveShardSizer`,
re-exported here for compatibility) and its wall-clock feedback loop live in
the engine; each batch's reported answering wall-clock feeds the next
epoch's boundary plan.  Failure handling follows the engine's contract: a
worker exception (or a crashed worker — ``BrokenProcessPool``), a wire
error, a transmit or ingest failure all surface from ``run_epoch`` after
the pipeline has drained; a broken pool is discarded so the next epoch gets
a fresh one.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool

# AdaptiveShardSizer and answer_shard lived here / in sharded.py before the
# engine refactor; re-exported for compatibility.
from repro.runtime.engine import (
    AdaptiveShardSizer,
    EpochHandle,
    StageDriver,
    StagedEpochEngine,
    answer_shard,
    make_shard_arena,
)
from repro.runtime.sharding import Shard
from repro.runtime.wire import (
    ShardBatch,
    ShardTask,
    decode_shard_batch,
    decode_shard_task,
    encode_shard_batch,
    encode_shard_task,
)

__all__ = [
    "AdaptiveShardSizer",
    "OverlapSnapshotWireDriver",
    "ProcessPoolEpochExecutor",
    "SnapshotWireBarrierDriver",
    "answer_shard_task",
]


def answer_shard_task(task_blob: bytes) -> bytes:
    """The worker entry point: bytes in, bytes out.

    Decodes one :class:`~repro.runtime.wire.ShardTask`, rebuilds its clients,
    answers the epoch, and returns the framed
    :class:`~repro.runtime.wire.ShardBatch`.  Module-level (hence picklable
    by reference) and dependent only on the blob, so it runs identically
    under fork or spawn — or, in principle, on another machine.
    """
    # Imported here: repro.core imports repro.runtime at package level, so a
    # module-level import would be cyclic.
    from repro.core.client import Client

    task = decode_shard_task(task_blob)
    start = time.perf_counter()
    clients = [Client.from_state(state) for state in task.client_states]
    # The same shard task the thread executors run, so participation
    # semantics can never drift between the executors.  Snapshot shipping
    # rebuilds Client objects every epoch, so the arena is transient too —
    # built here, used once, discarded with the worker-side clients.
    arena = make_shard_arena(clients)
    responses_per_query, clients = answer_shard(
        clients, task.query_ids, task.epoch, arena=arena
    )
    wall_seconds = time.perf_counter() - start
    return encode_shard_batch(
        ShardBatch(
            shard_index=task.shard_index,
            epoch=task.epoch,
            wall_seconds=wall_seconds,
            responses=tuple(tuple(responses) for responses in responses_per_query),
            client_states=tuple(client.export_state() for client in clients),
        )
    )


class _SnapshotWireDriver(StageDriver):
    """Shared snapshot-shipping mechanics for both scheduling shapes."""

    transport = "framed-wire-local"

    def make_pool(self, num_workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=num_workers)

    def begin_epoch(self, handle: EpochHandle) -> None:
        """Encode and submit shard by shard (early shards answer while later
        shards still serialize).  A failure cancels what was submitted and
        raises in the engine's pre-pipeline window — nothing transmitted, no
        parent state changed, and a broken pool is discarded so the next
        epoch can run as if this one never started."""
        pool = self.engine._ensure_pool()
        futures: dict[Future, Shard] = {}
        try:
            for shard in handle.occupied:
                blob = encode_shard_task(
                    ShardTask(
                        shard_index=shard.index,
                        epoch=handle.epoch,
                        query_ids=handle.query_ids,
                        client_states=tuple(
                            client.export_state()
                            for client in handle.context.clients[shard.as_slice()]
                        ),
                    )
                )
                handle.metrics.add_wire_bytes(len(blob))
                futures[pool.submit(answer_shard_task, blob)] = shard
        except Exception as exc:
            for future in futures:
                future.cancel()
            if isinstance(exc, BrokenProcessPool):
                self.engine._discard_pool()
            raise
        self._futures = futures

    def _decode_and_adopt(self, handle: EpochHandle, shard: Shard, blob: bytes):
        """Account, decode, and write the advanced client state back."""
        from repro.core.client import Client  # deferred: core <-> runtime

        handle.metrics.add_wire_bytes(len(blob))
        batch = decode_shard_batch(blob)
        # Adopt the advanced snapshots so epoch t+1 continues the exact
        # RNG/keystream sequences the serial reference would.
        handle.context.clients[shard.as_slice()] = [
            Client.from_state(state) for state in batch.client_states
        ]
        return [list(responses) for responses in batch.responses], batch.wall_seconds

    def handle_epoch_error(self, error: Exception) -> None:
        if isinstance(error, BrokenProcessPool):
            self.engine._discard_pool()


class SnapshotWireBarrierDriver(_SnapshotWireDriver):
    """``thread-pool`` × ``framed-wire-local``: barrier collection.

    Results are collected in shard-index order on the caller thread, so the
    engine transmits shards in serial client order and a worker exception
    surfaces exactly where ``Future.result()`` raises it — the
    ``ShardedExecutor(pool="process")`` shape.
    """

    scheduling = "thread-pool"

    def collect(self, handle: EpochHandle) -> None:
        for future, shard in self._futures.items():
            responses, wall_seconds = self._decode_and_adopt(
                handle, shard, future.result()
            )
            handle.emit(shard.index, responses, wall_seconds=wall_seconds)


class OverlapSnapshotWireDriver(_SnapshotWireDriver):
    """``pipelined-overlap`` × ``framed-wire-local``: streaming collection.

    Runs on the engine's collector thread, decoding batches in completion
    order and emitting each shard into the overlapped transmit/ingest
    pipeline; failures become per-shard error emits so the pipeline always
    drains before the epoch error re-raises.
    """

    scheduling = "pipelined-overlap"
    runs_collector = True

    def collect(self, handle: EpochHandle) -> None:
        for future in as_completed(self._futures):
            shard = self._futures[future]
            try:
                responses, wall_seconds = self._decode_and_adopt(
                    handle, shard, future.result()
                )
            except Exception as exc:  # surfaced from run_epoch, never swallowed
                handle.emit(shard.index, None, error=exc)
            else:
                handle.emit(shard.index, responses, wall_seconds=wall_seconds)


class ProcessPoolEpochExecutor(StagedEpochEngine):
    """Deprecated shim: overlap scheduling over the framed-wire transport.

    Worker/shard/queue parameters and the pool/consumer lifecycle are the
    shared :class:`~repro.runtime.executor.PooledEpochExecutor` machinery;
    more shards than workers additionally gives the adaptive sizer finer
    rebalancing, at more serialization calls.

    Parameters
    ----------
    adaptive:
        Feed per-shard wall-clock back into the next epoch's boundaries
        (default).  Disable to pin balanced-count boundaries, e.g. when
        comparing against the sharded executor.
    """

    _consumer_group_prefix = "process"

    def __init__(
        self,
        num_workers: int = 4,
        num_shards: int | None = None,
        queue_depth: int | None = None,
        adaptive: bool = True,
    ):
        super().__init__(
            OverlapSnapshotWireDriver(),
            num_workers=num_workers,
            num_shards=num_shards,
            queue_depth=queue_depth,
            adaptive=adaptive,
        )
