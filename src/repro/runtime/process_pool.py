"""The process-pool epoch executor: answering escapes the GIL.

The pipelined executor overlaps its stages, but its answering workers are
*threads*: under the GIL they time-slice one core, so the CPU-heavy answer
stage (SQL → randomize → encrypt per client) never truly parallelizes.  This
executor keeps the pipelined shape — completed shards stream through the
shard-aware proxy topics into the aggregator — but answers each shard in a
``concurrent.futures.ProcessPoolExecutor`` worker:

1. **Serialize** — the parent snapshots each occupied shard's clients
   (:meth:`~repro.core.client.Client.export_state`) and frames them into a
   self-contained :class:`~repro.runtime.wire.ShardTask` blob — client seeds
   and mid-stream RNG/keystream states, local tables, and the subscription
   carrying the query and randomized-response parameters.  No broker, proxy
   or aggregator state crosses the process border.  Shards are submitted as
   they are encoded (early shards answer while later shards serialize), and
   all of it happens before the pipeline threads start: a pickling failure
   cancels the submitted work and surfaces with nothing transmitted.
2. **Answer (worker process)** — :func:`answer_shard_task` reconstructs the
   shard's clients from their snapshots, answers the epoch with exactly the
   draws the serial reference would make (the restored RNG/keystream resume
   mid-stream), and returns a framed :class:`~repro.runtime.wire.ShardBatch`:
   responses, advanced client snapshots, and the shard's answering
   wall-clock.
3. **Collect** — a collector thread in the parent decodes batches in
   completion order, writes the advanced client state back into the live
   client list (so epoch ``t + 1`` continues the same streams) and hands the
   shard to the transmitter.
4. **Transmit / ingest** — unchanged from the pipelined executor: the
   transmitter thread publishes each finished shard to its shard-aware
   topics, and the caller's thread ingests relayed shards into the
   aggregator's grouped join while other shards are still answering.

Adaptive shard sizing: each batch reports its answering wall-clock; an
:class:`AdaptiveShardSizer` turns that into a per-client cost estimate
(exponential moving average) and plans the *next* epoch's shard boundaries so
every shard carries roughly equal predicted work
(:func:`~repro.runtime.sharding.plan_weighted_shards`).  Boundaries move,
shard count does not — the shard-aware topic slots stay stable across epochs.
Because results are independent of where the boundaries fall (the
equivalence contract), adaptivity is a pure load-balancing optimization.

Failure handling follows the pipelined contract: a worker exception (or a
crashed worker — ``BrokenProcessPool``), a wire error, a transmit or ingest
failure all surface from :meth:`ProcessPoolEpochExecutor.run_epoch` after the
pipeline has drained; a broken pool is discarded so the next epoch gets a
fresh one.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool

from repro.runtime.executor import (
    EpochContext,
    EpochOutcome,
    PooledEpochExecutor,
    QueryEpochOutcome,
    apply_deadline,
    late_drops_for,
)
from repro.runtime.pipelined import _ingest_stage, _transmit_stage
from repro.runtime.sharded import answer_shard
from repro.runtime.sharding import Shard, plan_shards, plan_weighted_shards
from repro.runtime.wire import (
    ShardBatch,
    ShardTask,
    decode_shard_batch,
    decode_shard_task,
    encode_shard_batch,
    encode_shard_task,
)


def answer_shard_task(task_blob: bytes) -> bytes:
    """The worker entry point: bytes in, bytes out.

    Decodes one :class:`~repro.runtime.wire.ShardTask`, rebuilds its clients,
    answers the epoch, and returns the framed
    :class:`~repro.runtime.wire.ShardBatch`.  Module-level (hence picklable
    by reference) and dependent only on the blob, so it runs identically
    under fork or spawn — or, in principle, on another machine.
    """
    # Imported here: repro.core imports repro.runtime at package level, so a
    # module-level import would be cyclic.
    from repro.core.client import Client

    task = decode_shard_task(task_blob)
    start = time.perf_counter()
    clients = [Client.from_state(state) for state in task.client_states]
    # The same shard task the thread executors run, so participation
    # semantics can never drift between the executors.
    responses_per_query, clients = answer_shard(clients, task.query_ids, task.epoch)
    wall_seconds = time.perf_counter() - start
    return encode_shard_batch(
        ShardBatch(
            shard_index=task.shard_index,
            epoch=task.epoch,
            wall_seconds=wall_seconds,
            responses=tuple(tuple(responses) for responses in responses_per_query),
            client_states=tuple(client.export_state() for client in clients),
        )
    )


class AdaptiveShardSizer:
    """Plans shard boundaries from per-shard answering wall-clock feedback.

    Epoch 0 uses balanced :func:`~repro.runtime.sharding.plan_shards`
    boundaries.  After each epoch :meth:`record` spreads every timed shard's
    wall-clock evenly over its clients and folds it into a per-client cost
    EWMA; :meth:`plan` then cuts the next epoch's boundaries so each shard
    carries roughly equal predicted cost.  A changed population size resets
    the estimates (client indices no longer line up).
    """

    def __init__(self, num_shards: int, smoothing: float = 0.5):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must lie in (0, 1], got {smoothing}")
        self.num_shards = num_shards
        self.smoothing = smoothing
        self._cost_per_client: list[float] | None = None

    def plan(self, num_items: int) -> list[Shard]:
        """Shard boundaries for the next epoch over ``num_items`` clients."""
        costs = self._cost_per_client
        if costs is None or len(costs) != num_items:
            return plan_shards(num_items, self.num_shards)
        return plan_weighted_shards(costs, self.num_shards)

    def cost_estimates(self, num_items: int) -> list[float] | None:
        """The current per-client cost EWMA, or ``None`` if not (yet) usable.

        The resident-state executor consults this to decide whether moving
        boundaries is worth invalidating worker-resident shards.
        """
        costs = self._cost_per_client
        if costs is None or len(costs) != num_items:
            return None
        return list(costs)

    def prime(self, costs: list[float]) -> None:
        """Seed the per-client cost estimates directly.

        Lets tests (and deployments with offline profiles) force a specific
        re-sharding decision instead of waiting for wall-clock feedback.
        """
        self._cost_per_client = list(costs)

    def record(self, shards: list[Shard], wall_seconds: dict[int, float]) -> None:
        """Fold one epoch's per-shard timings into the per-client estimates.

        ``wall_seconds`` maps shard index → answering wall-clock; shards that
        never produced a timing (failed epochs) are simply skipped.
        """
        if not shards:
            return
        num_items = shards[-1].stop
        costs = self._cost_per_client
        if costs is None or len(costs) != num_items:
            costs = [0.0] * num_items
        alpha = self.smoothing
        for shard in shards:
            if shard.num_items == 0 or shard.index not in wall_seconds:
                continue
            per_client = wall_seconds[shard.index] / shard.num_items
            for i in range(shard.start, shard.stop):
                previous = costs[i]
                costs[i] = per_client if previous <= 0.0 else (
                    (1.0 - alpha) * previous + alpha * per_client
                )
        self._cost_per_client = costs


class ProcessPoolEpochExecutor(PooledEpochExecutor):
    """Pipelined epoch execution with answering in worker *processes*.

    Worker/shard/queue parameters and the pool/consumer lifecycle are the
    shared :class:`~repro.runtime.executor.PooledEpochExecutor` machinery;
    more shards than workers additionally gives the adaptive sizer finer
    rebalancing, at more serialization calls.

    Parameters
    ----------
    adaptive:
        Feed per-shard wall-clock back into the next epoch's boundaries
        (default).  Disable to pin balanced-count boundaries, e.g. when
        comparing against the sharded executor.
    """

    _consumer_group_prefix = "process"

    def __init__(
        self,
        num_workers: int = 4,
        num_shards: int | None = None,
        queue_depth: int | None = None,
        adaptive: bool = True,
    ):
        super().__init__(
            num_workers=num_workers, num_shards=num_shards, queue_depth=queue_depth
        )
        self.adaptive = adaptive
        self._sizer = AdaptiveShardSizer(self.num_shards)
        # Frame bytes that crossed the process border per epoch (tasks
        # submitted + batches returned) — the state-shipping cost the
        # resident-state executor (repro.runtime.affinity) exists to cut;
        # benchmarks compare the two.
        self.epoch_wire_bytes: dict[int, int] = {}

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.num_workers)

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool so the next epoch builds a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- epoch execution ----------------------------------------------------

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        num_clients = len(context.clients)
        shards = (
            self._sizer.plan(num_clients)
            if self.adaptive
            else plan_shards(num_clients, self.num_shards)
        )
        occupied = [shard for shard in shards if shard.num_items > 0]
        consumers = self._consumers_for(context)

        pool = self._ensure_pool()
        responses_by_shard: list[list | None] = [None] * len(shards)
        wall_seconds: dict[int, float] = {}
        answered: queue.Queue = queue.Queue(maxsize=self.queue_depth)
        transmitted: queue.Queue = queue.Queue()

        # Encode and submit shard by shard, so early shards answer in the
        # workers while later shards are still being serialized.  All of this
        # happens before any pipeline thread starts: a failure here (a
        # WireError from unpicklable client state, a broken pool) cancels
        # what was submitted and raises cleanly — nothing has been
        # transmitted, no parent state has changed, and the next epoch can
        # run as if this one never started.
        futures: dict[Future, Shard] = {}
        wire_box = [0]
        try:
            for shard in occupied:
                blob = encode_shard_task(
                    ShardTask(
                        shard_index=shard.index,
                        epoch=epoch,
                        query_ids=tuple(context.query_ids),
                        client_states=tuple(
                            client.export_state()
                            for client in context.clients[shard.as_slice()]
                        ),
                    )
                )
                wire_box[0] += len(blob)
                futures[pool.submit(answer_shard_task, blob)] = shard
        except Exception as exc:
            for future in futures:
                future.cancel()
            if isinstance(exc, BrokenProcessPool):
                self._discard_pool()
            raise

        collector = threading.Thread(
            target=_collect_stage,
            args=(context, futures, responses_by_shard, wall_seconds, answered, wire_box),
            name="privapprox-process-collect",
            daemon=True,
        )
        collector.start()
        transmitter = threading.Thread(
            target=_transmit_stage,
            args=(context, len(occupied), responses_by_shard, answered, transmitted),
            name="privapprox-process-transmit",
            daemon=True,
        )
        transmitter.start()
        window_results, error = _ingest_stage(context, consumers, epoch, transmitted)
        transmitter.join()
        collector.join()

        if self.adaptive and wall_seconds:
            self._sizer.record(shards, wall_seconds)
        self.epoch_wire_bytes[epoch] = wire_box[0]
        if error is not None:
            if isinstance(error, BrokenProcessPool):
                self._discard_pool()
            raise error

        per_query = []
        for index, query in enumerate(context.queries):
            responses: list = []
            for shard in shards:
                shard_responses = responses_by_shard[shard.index]
                if shard_responses:
                    responses.extend(shard_responses[index])
            per_query.append(
                QueryEpochOutcome(
                    query_id=query.query_id,
                    responses=tuple(responses),
                    window_results=tuple(window_results[index]),
                    late_drops=late_drops_for(context, query.query_id),
                )
            )
        return EpochOutcome(per_query=tuple(per_query))


def _collect_stage(
    context: EpochContext,
    futures: dict[Future, Shard],
    responses_by_shard: list,
    wall_seconds: dict[int, float],
    answered: queue.Queue,
    wire_box: list | None = None,
) -> None:
    """Decode finished shard batches and adopt the advanced client state.

    Runs in a parent thread.  Always enqueues exactly one
    ``(shard_index, error)`` item per submitted shard — success or failure —
    so the transmitter's expected-item count never hangs, even when the whole
    pool breaks and every pending future fails at once.  ``wire_box`` (a
    one-element list) accumulates returned frame bytes for the executor's
    per-epoch wire accounting.
    """
    from repro.core.client import Client  # deferred: repro.core <-> repro.runtime

    for future in as_completed(futures):
        shard = futures[future]
        try:
            blob = future.result()
            if wire_box is not None:
                wire_box[0] += len(blob)
            batch = decode_shard_batch(blob)
            # Adopt the advanced snapshots so epoch t+1 continues the exact
            # RNG/keystream sequences the serial reference would.
            context.clients[shard.as_slice()] = [
                Client.from_state(state) for state in batch.client_states
            ]
            # Deadline-gate the decoded responses before hand-off: workers
            # answered (and advanced client state) but late answers never
            # reach the transmitter.
            responses_by_shard[shard.index] = apply_deadline(
                context.deadline,
                [list(responses) for responses in batch.responses],
            )
            wall_seconds[shard.index] = batch.wall_seconds
        except Exception as exc:  # surfaced from run_epoch, never swallowed
            responses_by_shard[shard.index] = [[] for _ in context.queries]
            answered.put((shard.index, exc))
        else:
            answered.put((shard.index, None))
