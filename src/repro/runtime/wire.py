"""Wire format for shard tasks and shard batches (process-pool runtime).

The in-process executors hand live objects between their stages; the
process-pool executor (:mod:`repro.runtime.process_pool`) cannot — a worker
process shares nothing with the parent, and a multi-machine deployment would
share even less.  This module is the serialization boundary: everything that
crosses a process border travels as one *framed byte blob*, so the same
encoding would work over a socket or a broker topic unchanged.

**The payload is pickle: decode only bytes you produced.**  The frame header
authenticates nothing — ``pickle.loads`` on attacker-supplied bytes is
arbitrary code execution.  That is fine for the in-process worker pool
(both ends are this program), but moving these frames onto a real socket or
broker requires an authenticated channel between mutually trusted hosts, or
replacing the payload with a non-executable codec.

**This is simulation-harness state transfer, not a client protocol.**  The
frames carry what the *simulation* holds on behalf of each simulated device:
raw private table rows, RNG secrets, truthful answer bits.  In the paper's
threat model none of that may ever leave a real client — the only deployable
client-to-proxy wire is the randomized, XOR-encrypted shares
(:mod:`repro.core.encryption`).  A real multi-machine deployment of this
executor would place *whole simulated clients* on remote machines (each
remote worker is a stand-in for a fleet of devices), never relay client
plaintext through an untrusted hop.

Two message families exist.  The *snapshot-shipping* pair (version 2) round
trips full client state every epoch:

* :class:`ShardTask` — parent → worker.  A self-contained description of one
  contiguous client shard for one epoch: the query ids served by this
  epoch's shared answering pass, the epoch number, and one state snapshot
  per client (:meth:`repro.core.client.Client.export_state` — config with
  seed, mid-stream per-query RNG and keystream states, local tables,
  subscriptions carrying the queries and randomized-response parameters).
  No broker, proxy or aggregator state is included; the worker reconstructs
  the clients from the snapshots and answers with exactly the draws the
  serial reference would have made.
* :class:`ShardBatch` — worker → parent.  The shard's participating responses
  (shares included), one response tuple per task query; the *advanced*
  client snapshots the parent must adopt so the next epoch continues the
  same random streams; and the shard's answering wall-clock, which feeds the
  adaptive shard sizer.

The *resident-state* triple (version 3) replaces the per-epoch snapshot round
trip with worker-resident client state behind sticky shard→worker affinity
(:mod:`repro.runtime.affinity`):

* :class:`ShardBootstrap` — parent → worker, sent once per shard (and again
  on cache miss, worker replacement or shard migration): full client
  snapshots plus the epoch to answer right after installing them.
* :class:`ShardDelta` — parent → worker, the steady-state frame: the epoch
  and query ids to answer, one optional :class:`ClientDelta` per client
  (subscription changes, appended stream rows), the fingerprint the parent
  expects the worker's resident state to carry, and whether the ack should
  return full snapshots (a *checkpoint*).  An empty ``query_ids`` tuple makes
  the frame a pure state-sync request (no answering).
* :class:`ShardAck` — worker → parent: the responses, a cheap state
  fingerprint (digest of every resident client's RNG/keystream state) in
  place of full advanced snapshots, full snapshots only when the delta asked
  for a checkpoint, and ``bootstrap_required`` when the worker cannot serve
  the delta (cache miss or fingerprint mismatch) so the parent falls back to
  a bootstrap frame.

Version negotiation: frames are emitted at version 3, but version-2 bytes
still decode for the two version-2 kinds — a parent upgraded mid-deployment
keeps understanding batches from not-yet-upgraded workers.  The resident
kinds require version 3; version-1 frames and unknown future versions are
rejected.

The frame is ``magic ("PAWF") + version + kind + payload length + payload``;
the payload is a pickle of the dataclass (pickle because the snapshots carry
arbitrary query/answer dataclasses; the frame means the *transport* never
needs to know that).  Byte accounting reuses the pub/sub payload sizing
(:func:`repro.pubsub.payload_size`), so a decoded batch and the shard-aware
broker records the pipelined runtime publishes agree on wire size.

All encoding/decoding failures — unpicklable client state, truncated or
foreign bytes, version drift — surface as :class:`WireError`.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass

from repro.pubsub import payload_size

WIRE_MAGIC = b"PAWF"
# Version 3: worker-resident client state — bootstrap/delta/ack frames carry
# state once and tiny per-epoch deltas afterwards.  Version 2 (multi-query
# snapshot shipping: query id *tuples*, one response tuple per query) is
# still decoded for its two kinds; version-1 (single query id) frames are
# rejected rather than silently misread.
WIRE_VERSION = 3

_KIND_SHARD_TASK = 1
_KIND_SHARD_BATCH = 2
_KIND_SHARD_BOOTSTRAP = 3
_KIND_SHARD_DELTA = 4
_KIND_SHARD_ACK = 5

# The oldest frame version each kind can be decoded from: the snapshot pair
# predates residency, the resident triple has never existed below version 3.
_MIN_VERSION_BY_KIND = {
    _KIND_SHARD_TASK: 2,
    _KIND_SHARD_BATCH: 2,
    _KIND_SHARD_BOOTSTRAP: 3,
    _KIND_SHARD_DELTA: 3,
    _KIND_SHARD_ACK: 3,
}

# magic, version, kind, payload length
_FRAME_FORMAT = ">4sBBI"
_FRAME_SIZE = struct.calcsize(_FRAME_FORMAT)


def _kind_name(kind: int | None) -> str:
    """Human-readable frame-kind label for error messages."""
    names = {
        _KIND_SHARD_TASK: "ShardTask",
        _KIND_SHARD_BATCH: "ShardBatch",
        _KIND_SHARD_BOOTSTRAP: "ShardBootstrap",
        _KIND_SHARD_DELTA: "ShardDelta",
        _KIND_SHARD_ACK: "ShardAck",
    }
    return f"{names.get(kind, 'unknown')}({kind})"


class WireError(Exception):
    """Raised when a runtime wire frame cannot be (de)serialized.

    Every raise site attaches whatever framing context it had already
    parsed, so one log line locates the corruption in a byte stream:

    * ``kind`` — the frame kind declared by the header, when the header got
      that far (``None`` for pre-header failures like a bad magic);
    * ``declared_length`` — the payload length the header claimed;
    * ``offset`` — the byte offset, relative to the start of the frame (or
      of the enclosing stream, for transports that track one), where the
      problem was detected.

    The context is folded into the message (``... [kind=ShardDelta(4),
    declared_length=512, offset=10]``) and kept as attributes for callers
    that branch on it.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: int | None = None,
        declared_length: int | None = None,
        offset: int | None = None,
    ):
        details = []
        if kind is not None:
            details.append(f"kind={_kind_name(kind)}")
        if declared_length is not None:
            details.append(f"declared_length={declared_length}")
        if offset is not None:
            details.append(f"offset={offset}")
        if details:
            message = f"{message} [{', '.join(details)}]"
        super().__init__(message)
        self.kind = kind
        self.declared_length = declared_length
        self.offset = offset


@dataclass(frozen=True)
class ShardTask:
    """One contiguous client shard's worth of answering work for one epoch.

    ``query_ids`` are the queries the shard answers in one shared pass (a
    single-query epoch is the one-element case).  ``client_states`` holds one
    :meth:`~repro.core.client.Client.export_state` snapshot per client, in
    client order.  The task is self-contained: a worker needs nothing but
    this object (no shared brokers, no aggregator) to produce the shard's
    responses.
    """

    shard_index: int
    epoch: int
    query_ids: tuple
    client_states: tuple

    @property
    def num_clients(self) -> int:
        return len(self.client_states)

    @property
    def num_queries(self) -> int:
        return len(self.query_ids)


@dataclass(frozen=True)
class ShardBatch:
    """What one worker returns for one shard task.

    ``responses`` holds one tuple of participating responses per task query
    (client order within each tuple, query order matching the task's
    ``query_ids``); ``client_states`` are the advanced snapshots (every
    client, participant or not) the parent writes back into its live client
    list; ``wall_seconds`` is the answering wall-clock the adaptive shard
    sizer feeds on.
    """

    shard_index: int
    epoch: int
    wall_seconds: float
    responses: tuple
    client_states: tuple

    def share_rows(self, query_index: int = 0) -> list[list]:
        """One query's shares, one row per response — the transmit-stage input."""
        return [
            list(response.encrypted.shares)
            for response in self.responses[query_index]
        ]

    def size_bytes(self) -> int:
        """Logical wire size of the relayed shares, via the pub/sub sizing.

        Sums over every query's share rows.  This is the size the shard's
        shares occupy as broker records (what
        :meth:`repro.pubsub.Record.size_bytes` would charge), not the pickled
        frame length — the two coexist because the frame also carries client
        state that never reaches the brokers.
        """
        return sum(
            payload_size(self.share_rows(index))
            for index in range(len(self.responses))
        )


@dataclass(frozen=True)
class ClientDelta:
    """What changed on one client, parent-side, since the last frame.

    ``subscribe`` holds ``(query, parameters)`` pairs to (re)subscribe — new
    queries and re-tuned parameters alike; ``unsubscribe`` holds query ids to
    drop; ``append_rows`` holds ``(table_name, columns, rows)`` triples of
    stream rows appended to local tables (the table is created from
    ``columns`` if the resident client does not have it yet).  Applied by
    :meth:`repro.core.client.Client.apply_delta`.
    """

    subscribe: tuple = ()
    unsubscribe: tuple = ()
    append_rows: tuple = ()

    def is_empty(self) -> bool:
        return not (self.subscribe or self.unsubscribe or self.append_rows)


@dataclass(frozen=True)
class ShardBootstrap:
    """Full client snapshots for one shard, plus the epoch to answer.

    Sent once per (shard, worker) pairing — and again whenever the parent
    cannot trust or reuse the worker-resident copy: cache miss, fingerprint
    mismatch, worker replacement, or shard boundaries moved under adaptive
    re-sharding.  An empty ``query_ids`` installs state without answering.
    """

    shard_index: int
    epoch: int
    query_ids: tuple
    client_states: tuple

    @property
    def num_clients(self) -> int:
        return len(self.client_states)


@dataclass(frozen=True)
class ShardDelta:
    """The steady-state parent → worker frame: answer an epoch from residency.

    ``deltas`` holds one :class:`ClientDelta` or ``None`` per resident client
    (client order); ``expected_fingerprint`` is the shard fingerprint the
    parent recorded from the last ack — the worker refuses (with
    ``bootstrap_required``) rather than answer from state the parent no
    longer vouches for.  ``want_state`` asks the ack to carry full advanced
    snapshots (a checkpoint).  An empty ``query_ids`` tuple is a pure sync:
    apply deltas / export state, answer nothing.
    """

    shard_index: int
    epoch: int
    query_ids: tuple
    deltas: tuple
    expected_fingerprint: bytes
    want_state: bool = False


@dataclass(frozen=True)
class ShardAck:
    """The worker's reply to a bootstrap or delta frame.

    ``responses`` holds one tuple of participating responses per frame query
    (empty for sync frames); ``fingerprint`` digests every resident client's
    RNG/keystream state after answering, standing in for the full advanced
    snapshots the snapshot-shipping executor would return; ``client_states``
    is populated only when the frame asked for a checkpoint.
    ``bootstrap_required`` reports a cache miss or fingerprint mismatch (no
    answering happened); ``error`` carries ``(type_name, message)`` of a
    worker-side exception so the parent can surface it without the worker
    process dying.
    """

    shard_index: int
    epoch: int
    wall_seconds: float = 0.0
    responses: tuple = ()
    fingerprint: bytes = b""
    client_states: tuple | None = None
    bootstrap_required: bool = False
    error: tuple | None = None

    def share_rows(self, query_index: int = 0) -> list[list]:
        """One query's shares, one row per response — the transmit-stage input."""
        return [
            list(response.encrypted.shares)
            for response in self.responses[query_index]
        ]

    def size_bytes(self) -> int:
        """Logical wire size of the relayed shares (pub/sub record sizing)."""
        return sum(
            payload_size(self.share_rows(index))
            for index in range(len(self.responses))
        )


def _encode(obj, kind: int) -> bytes:
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise WireError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
    return struct.pack(_FRAME_FORMAT, WIRE_MAGIC, WIRE_VERSION, kind, len(payload)) + payload


def _decode_header(data: bytes) -> tuple[int, int, int]:
    """Validate the frame header; return ``(version, kind, payload length)``.

    Version negotiation lives here: a frame is accepted when its version is
    no newer than ours and no older than its kind's introduction version, so
    version-2 snapshot frames keep decoding while resident-state kinds (and
    version-1 leftovers) are rejected.
    """
    if len(data) < _FRAME_SIZE:
        raise WireError(
            f"frame too short: {len(data)} bytes "
            f"(a frame header is {_FRAME_SIZE} bytes)",
            offset=len(data),
        )
    magic, version, frame_kind, length = struct.unpack(_FRAME_FORMAT, data[:_FRAME_SIZE])
    if magic != WIRE_MAGIC:
        raise WireError(f"bad magic {magic!r}: not a runtime wire frame", offset=0)
    if version > WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (expected <= {WIRE_VERSION})",
            kind=frame_kind if frame_kind in _MIN_VERSION_BY_KIND else None,
            declared_length=length,
            offset=4,
        )
    min_version = _MIN_VERSION_BY_KIND.get(frame_kind)
    if min_version is None:
        raise WireError(
            f"unknown frame kind {frame_kind}", declared_length=length, offset=5
        )
    if version < min_version:
        raise WireError(
            f"unsupported wire version {version} for frame kind {frame_kind} "
            f"(requires >= {min_version})",
            kind=frame_kind,
            declared_length=length,
            offset=4,
        )
    return version, frame_kind, length


def _decode_payload(data: bytes, kind: int, length: int, expected_type: type):
    payload = data[_FRAME_SIZE:]
    if len(payload) != length:
        raise WireError(
            f"frame declares {length} payload bytes, got {len(payload)}",
            kind=kind,
            declared_length=length,
            offset=_FRAME_SIZE + min(length, len(payload)),
        )
    try:
        obj = pickle.loads(payload)
    except Exception as exc:
        raise WireError(
            f"cannot deserialize frame payload: {exc}",
            kind=kind,
            declared_length=length,
            offset=_FRAME_SIZE,
        ) from exc
    if not isinstance(obj, expected_type):
        raise WireError(
            f"frame payload is {type(obj).__name__}, expected {expected_type.__name__}",
            kind=kind,
            declared_length=length,
            offset=_FRAME_SIZE,
        )
    return obj


def _decode(data: bytes, kind: int, expected_type: type):
    _, frame_kind, length = _decode_header(data)
    if frame_kind != kind:
        raise WireError(
            f"unexpected frame kind {frame_kind} (expected {kind})",
            kind=frame_kind,
            declared_length=length,
            offset=5,
        )
    return _decode_payload(data, kind, length, expected_type)


def encode_shard_task(task: ShardTask) -> bytes:
    """Frame one shard task into self-contained bytes."""
    return _encode(task, _KIND_SHARD_TASK)


def decode_shard_task(data: bytes) -> ShardTask:
    """Decode bytes produced by :func:`encode_shard_task`."""
    return _decode(data, _KIND_SHARD_TASK, ShardTask)


def encode_shard_batch(batch: ShardBatch) -> bytes:
    """Frame one shard batch (a worker's result) into bytes."""
    return _encode(batch, _KIND_SHARD_BATCH)


def decode_shard_batch(data: bytes) -> ShardBatch:
    """Decode bytes produced by :func:`encode_shard_batch`."""
    return _decode(data, _KIND_SHARD_BATCH, ShardBatch)


def encode_shard_bootstrap(bootstrap: ShardBootstrap) -> bytes:
    """Frame one shard bootstrap (full snapshots) into bytes."""
    return _encode(bootstrap, _KIND_SHARD_BOOTSTRAP)


def decode_shard_bootstrap(data: bytes) -> ShardBootstrap:
    """Decode bytes produced by :func:`encode_shard_bootstrap`."""
    return _decode(data, _KIND_SHARD_BOOTSTRAP, ShardBootstrap)


def encode_shard_delta(delta: ShardDelta) -> bytes:
    """Frame one shard delta (steady-state epoch work) into bytes."""
    return _encode(delta, _KIND_SHARD_DELTA)


def decode_shard_delta(data: bytes) -> ShardDelta:
    """Decode bytes produced by :func:`encode_shard_delta`."""
    return _decode(data, _KIND_SHARD_DELTA, ShardDelta)


def encode_shard_ack(ack: ShardAck) -> bytes:
    """Frame one shard ack (a resident worker's reply) into bytes."""
    return _encode(ack, _KIND_SHARD_ACK)


def decode_shard_ack(data: bytes) -> ShardAck:
    """Decode bytes produced by :func:`encode_shard_ack`."""
    return _decode(data, _KIND_SHARD_ACK, ShardAck)


_TYPE_BY_KIND = {
    _KIND_SHARD_TASK: ShardTask,
    _KIND_SHARD_BATCH: ShardBatch,
    _KIND_SHARD_BOOTSTRAP: ShardBootstrap,
    _KIND_SHARD_DELTA: ShardDelta,
    _KIND_SHARD_ACK: ShardAck,
}


def decode_frame(data: bytes):
    """Decode any runtime wire frame, dispatching on its header kind.

    The resident worker loop serves bootstrap and delta frames from one task
    queue; this is its single entry point.  Raises :class:`WireError` exactly
    like the kind-specific decoders (the header is parsed and validated once).
    """
    _, frame_kind, length = _decode_header(data)
    return _decode_payload(data, frame_kind, length, _TYPE_BY_KIND[frame_kind])
