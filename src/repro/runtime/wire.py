"""Wire format for shard tasks and shard batches (process-pool runtime).

The in-process executors hand live objects between their stages; the
process-pool executor (:mod:`repro.runtime.process_pool`) cannot — a worker
process shares nothing with the parent, and a multi-machine deployment would
share even less.  This module is the serialization boundary: everything that
crosses a process border travels as one *framed byte blob*, so the same
encoding would work over a socket or a broker topic unchanged.

**The payload is pickle: decode only bytes you produced.**  The frame header
authenticates nothing — ``pickle.loads`` on attacker-supplied bytes is
arbitrary code execution.  That is fine for the in-process worker pool
(both ends are this program), but moving these frames onto a real socket or
broker requires an authenticated channel between mutually trusted hosts, or
replacing the payload with a non-executable codec.

**This is simulation-harness state transfer, not a client protocol.**  The
frames carry what the *simulation* holds on behalf of each simulated device:
raw private table rows, RNG secrets, truthful answer bits.  In the paper's
threat model none of that may ever leave a real client — the only deployable
client-to-proxy wire is the randomized, XOR-encrypted shares
(:mod:`repro.core.encryption`).  A real multi-machine deployment of this
executor would place *whole simulated clients* on remote machines (each
remote worker is a stand-in for a fleet of devices), never relay client
plaintext through an untrusted hop.

Two message kinds exist:

* :class:`ShardTask` — parent → worker.  A self-contained description of one
  contiguous client shard for one epoch: the query ids served by this
  epoch's shared answering pass, the epoch number, and one state snapshot
  per client (:meth:`repro.core.client.Client.export_state` — config with
  seed, mid-stream per-query RNG and keystream states, local tables,
  subscriptions carrying the queries and randomized-response parameters).
  No broker, proxy or aggregator state is included; the worker reconstructs
  the clients from the snapshots and answers with exactly the draws the
  serial reference would have made.
* :class:`ShardBatch` — worker → parent.  The shard's participating responses
  (shares included), one response tuple per task query; the *advanced*
  client snapshots the parent must adopt so the next epoch continues the
  same random streams; and the shard's answering wall-clock, which feeds the
  adaptive shard sizer.

The frame is ``magic ("PAWF") + version + kind + payload length + payload``;
the payload is a pickle of the dataclass (pickle because the snapshots carry
arbitrary query/answer dataclasses; the frame means the *transport* never
needs to know that).  Byte accounting reuses the pub/sub payload sizing
(:func:`repro.pubsub.payload_size`), so a decoded batch and the shard-aware
broker records the pipelined runtime publishes agree on wire size.

All encoding/decoding failures — unpicklable client state, truncated or
foreign bytes, version drift — surface as :class:`WireError`.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass

from repro.pubsub import payload_size

WIRE_MAGIC = b"PAWF"
# Version 2: multi-query epochs — tasks carry query id *tuples* and batches
# one response tuple per query.  Version-1 (single query id) frames are
# rejected rather than silently misread.
WIRE_VERSION = 2

_KIND_SHARD_TASK = 1
_KIND_SHARD_BATCH = 2

# magic, version, kind, payload length
_FRAME_FORMAT = ">4sBBI"
_FRAME_SIZE = struct.calcsize(_FRAME_FORMAT)


class WireError(Exception):
    """Raised when a shard task or batch cannot be (de)serialized."""


@dataclass(frozen=True)
class ShardTask:
    """One contiguous client shard's worth of answering work for one epoch.

    ``query_ids`` are the queries the shard answers in one shared pass (a
    single-query epoch is the one-element case).  ``client_states`` holds one
    :meth:`~repro.core.client.Client.export_state` snapshot per client, in
    client order.  The task is self-contained: a worker needs nothing but
    this object (no shared brokers, no aggregator) to produce the shard's
    responses.
    """

    shard_index: int
    epoch: int
    query_ids: tuple
    client_states: tuple

    @property
    def num_clients(self) -> int:
        return len(self.client_states)

    @property
    def num_queries(self) -> int:
        return len(self.query_ids)


@dataclass(frozen=True)
class ShardBatch:
    """What one worker returns for one shard task.

    ``responses`` holds one tuple of participating responses per task query
    (client order within each tuple, query order matching the task's
    ``query_ids``); ``client_states`` are the advanced snapshots (every
    client, participant or not) the parent writes back into its live client
    list; ``wall_seconds`` is the answering wall-clock the adaptive shard
    sizer feeds on.
    """

    shard_index: int
    epoch: int
    wall_seconds: float
    responses: tuple
    client_states: tuple

    def share_rows(self, query_index: int = 0) -> list[list]:
        """One query's shares, one row per response — the transmit-stage input."""
        return [
            list(response.encrypted.shares)
            for response in self.responses[query_index]
        ]

    def size_bytes(self) -> int:
        """Logical wire size of the relayed shares, via the pub/sub sizing.

        Sums over every query's share rows.  This is the size the shard's
        shares occupy as broker records (what
        :meth:`repro.pubsub.Record.size_bytes` would charge), not the pickled
        frame length — the two coexist because the frame also carries client
        state that never reaches the brokers.
        """
        return sum(
            payload_size(self.share_rows(index))
            for index in range(len(self.responses))
        )


def _encode(obj, kind: int) -> bytes:
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise WireError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
    return struct.pack(_FRAME_FORMAT, WIRE_MAGIC, WIRE_VERSION, kind, len(payload)) + payload


def _decode(data: bytes, kind: int, expected_type: type):
    if len(data) < _FRAME_SIZE:
        raise WireError(f"frame too short: {len(data)} bytes")
    magic, version, frame_kind, length = struct.unpack(_FRAME_FORMAT, data[:_FRAME_SIZE])
    if magic != WIRE_MAGIC:
        raise WireError(f"bad magic {magic!r}: not a runtime wire frame")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version} (expected {WIRE_VERSION})")
    if frame_kind != kind:
        raise WireError(f"unexpected frame kind {frame_kind} (expected {kind})")
    payload = data[_FRAME_SIZE:]
    if len(payload) != length:
        raise WireError(f"frame declares {length} payload bytes, got {len(payload)}")
    try:
        obj = pickle.loads(payload)
    except Exception as exc:
        raise WireError(f"cannot deserialize frame payload: {exc}") from exc
    if not isinstance(obj, expected_type):
        raise WireError(
            f"frame payload is {type(obj).__name__}, expected {expected_type.__name__}"
        )
    return obj


def encode_shard_task(task: ShardTask) -> bytes:
    """Frame one shard task into self-contained bytes."""
    return _encode(task, _KIND_SHARD_TASK)


def decode_shard_task(data: bytes) -> ShardTask:
    """Decode bytes produced by :func:`encode_shard_task`."""
    return _decode(data, _KIND_SHARD_TASK, ShardTask)


def encode_shard_batch(batch: ShardBatch) -> bytes:
    """Frame one shard batch (a worker's result) into bytes."""
    return _encode(batch, _KIND_SHARD_BATCH)


def decode_shard_batch(data: bytes) -> ShardBatch:
    """Decode bytes produced by :func:`encode_shard_batch`."""
    return _decode(data, _KIND_SHARD_BATCH, ShardBatch)
