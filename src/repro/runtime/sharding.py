"""Deterministic partitioning of the client population into shards.

Shards are *contiguous* slices of the client list so that concatenating the
per-shard response logs in shard order reproduces the serial client order
exactly — that is what makes the sharded executor's merged log byte-for-byte
comparable with the serial reference.  Balanced sizing (the first
``num_items % num_shards`` shards get one extra client) keeps worker load even
without any coordination.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Shard:
    """One contiguous shard: clients ``[start, stop)`` of the population."""

    index: int
    start: int
    stop: int

    @property
    def num_items(self) -> int:
        return self.stop - self.start

    def as_slice(self) -> slice:
        return slice(self.start, self.stop)


def shard_span(shard: Shard) -> tuple[int, int]:
    """The ``(start, stop)`` range of a shard — its boundary identity.

    Both planners emit *stable* shard ids ``0..num_shards-1`` every epoch;
    only the spans move when :func:`plan_weighted_shards` rebalances.  The
    sticky shard→worker affinity of :mod:`repro.runtime.affinity` keys
    residency on the shard id and compares spans to decide whether a resident
    copy still covers the same clients — a moved span invalidates the copy,
    a stable one keeps the pinned worker's state live.
    """
    return (shard.start, shard.stop)


def plan_shards(num_items: int, num_shards: int) -> list[Shard]:
    """Split ``num_items`` into ``num_shards`` balanced contiguous shards.

    More shards than items yields trailing empty shards (a legal edge case:
    the executor simply gets nothing to do for them); ``num_shards`` must be
    at least one.
    """
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    base, extra = divmod(num_items, num_shards)
    shards = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(Shard(index=index, start=start, stop=start + size))
        start += size
    return shards


def plan_weighted_shards(weights: Sequence[float], num_shards: int) -> list[Shard]:
    """Split items into contiguous shards of approximately equal total *weight*.

    ``weights[i]`` is the predicted cost of item ``i`` (the adaptive shard
    sizer feeds per-client answering seconds).  Shard ``k`` ends at the first
    prefix sum reaching ``(k + 1)/num_shards`` of the total weight, so a
    slow stretch of clients gets fewer clients per shard and a fast stretch
    more — while shards stay contiguous, which is what keeps the shard-order
    merge equal to serial client order (the equivalence contract does not
    care where the boundaries fall).

    Falls back to :func:`plan_shards` when the weights are empty, all zero,
    or contain negatives/non-finite values (a timing glitch must never break
    an epoch).
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    num_items = len(weights)
    total = 0.0
    for weight in weights:
        if not (weight >= 0.0) or weight == float("inf"):  # rejects NaN too
            return plan_shards(num_items, num_shards)
        total += weight
    if num_items == 0 or total <= 0.0:
        return plan_shards(num_items, num_shards)
    prefix = []
    running = 0.0
    for weight in weights:
        running += weight
        prefix.append(running)
    shards = []
    start = 0
    for index in range(num_shards):
        if index == num_shards - 1 or start >= num_items:
            stop = num_items if index == num_shards - 1 else start
        else:
            target = total * (index + 1) / num_shards
            # First item whose prefix sum reaches the target (lo=start keeps
            # shards contiguous and monotone), then cut on whichever side of
            # that item lands closer to the target.  Always absorbing the
            # boundary item leftward would let one heavy item near the tail
            # drag the whole boundary past it and collapse every later shard
            # to empty.
            reach = bisect_left(prefix, target, lo=start)
            if reach >= num_items:
                stop = num_items
            elif reach <= start:
                stop = start + 1
            elif (prefix[reach] - target) <= (target - prefix[reach - 1]):
                stop = reach + 1
            else:
                stop = reach
        shards.append(Shard(index=index, start=start, stop=stop))
        start = stop
    return shards
