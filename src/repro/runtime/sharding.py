"""Deterministic partitioning of the client population into shards.

Shards are *contiguous* slices of the client list so that concatenating the
per-shard response logs in shard order reproduces the serial client order
exactly — that is what makes the sharded executor's merged log byte-for-byte
comparable with the serial reference.  Balanced sizing (the first
``num_items % num_shards`` shards get one extra client) keeps worker load even
without any coordination.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Shard:
    """One contiguous shard: clients ``[start, stop)`` of the population."""

    index: int
    start: int
    stop: int

    @property
    def num_items(self) -> int:
        return self.stop - self.start

    def as_slice(self) -> slice:
        return slice(self.start, self.stop)


def plan_shards(num_items: int, num_shards: int) -> list[Shard]:
    """Split ``num_items`` into ``num_shards`` balanced contiguous shards.

    More shards than items yields trailing empty shards (a legal edge case:
    the executor simply gets nothing to do for them); ``num_shards`` must be
    at least one.
    """
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    base, extra = divmod(num_items, num_shards)
    shards = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(Shard(index=index, start=start, stop=start + size))
        start += size
    return shards
