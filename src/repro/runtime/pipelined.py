"""The pipelined executor: an overlap-scheduling configuration of the engine.

The serial and sharded executors run the three stages of an answering epoch
as a barrier pipeline — *every* client answers, then *all* shares are
transmitted, then the aggregator ingests the lot.  Pipelined-overlap
scheduling removes the barriers, the way a streaming engine pipelines
operators instead of materializing between them:

1. **Answer** — client shards are answered by a thread worker pool (the
   same :func:`~repro.runtime.engine.answer_shard` task the barrier drivers
   use); each finished shard is handed off through a *bounded* queue, so a
   slow downstream applies backpressure instead of unbounded buffering.
2. **Transmit** — a dedicated transmitter thread drains the hand-off queue
   in completion order and publishes every finished shard's shares to the
   proxies' *shard-aware topics*
   (:meth:`~repro.core.proxy.ProxyNetwork.transmit_shard`): one
   single-partition topic per (proxy, shard slot) and query channel,
   carrying one batch record per shard per query per epoch.
3. **Ingest** — the caller's thread consumes transmit notifications and,
   for each relayed shard, polls that shard's consumers (query by query)
   and feeds the shares to each query's grouped ``MID`` join and batched
   validation/admission loop — while other shards are still answering.

This dataflow — including its failure contract (every stage drains its
input after an error so no producer blocks; the first error re-raises once
the epoch has unwound; every query's consumers are drained on a failed
epoch) — now lives once in :class:`~repro.runtime.engine.StagedEpochEngine`
and is shared with the process-pool, resident and remote configurations.
This module keeps :class:`PipelinedExecutor` as the deprecation shim for
the ``pipelined-overlap`` × ``in-process`` combination
(:class:`~repro.runtime.engine.OverlapThreadDriver`), plus re-exports of
the pipeline stage functions that historically lived here.
"""

from __future__ import annotations

# Re-exported for compatibility: the overlap pipeline stages lived here
# before the engine refactor.
from repro.runtime.engine import (
    OverlapThreadDriver,
    StagedEpochEngine,
    _drain_consumers,
    _ingest_stage,
    _transmit_stage,
)

__all__ = [
    "PipelinedExecutor",
    "_drain_consumers",
    "_ingest_stage",
    "_transmit_stage",
]


class PipelinedExecutor(StagedEpochEngine):
    """Deprecated shim: overlap scheduling on threads as an engine config.

    Worker/shard/queue parameters and the pool/consumer lifecycle are the
    shared :class:`~repro.runtime.executor.PooledEpochExecutor` machinery.

    Only the thread pool is supported: the pipeline shares live client and
    broker state between its stages, which is exactly the in-process shape.
    (Use the ``process`` executor for cross-process pipelining from
    serialized shard tasks, or ``ShardedExecutor(pool="process")`` for the
    minimal picklable-shard-task demonstration.)
    """

    _consumer_group_prefix = "pipelined"

    def __init__(
        self,
        num_workers: int = 4,
        num_shards: int | None = None,
        queue_depth: int | None = None,
    ):
        super().__init__(
            OverlapThreadDriver(),
            num_workers=num_workers,
            num_shards=num_shards,
            queue_depth=queue_depth,
        )
