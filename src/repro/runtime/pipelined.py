"""The pipelined epoch executor: overlapped answering, transmission, ingestion.

The serial and sharded executors run the three stages of an answering epoch as
a barrier pipeline — *every* client answers, then *all* shares are
transmitted, then the aggregator ingests the lot.  The pipelined executor
removes the barriers, the way a streaming engine pipelines operators instead
of materializing between them:

1. **Answer** — client shards are answered by a thread worker pool (the same
   :func:`~repro.runtime.sharded.answer_shard` task the sharded executor
   uses); each finished shard is pushed onto a *bounded* hand-off queue, so a
   slow downstream applies backpressure instead of unbounded buffering.
2. **Transmit** — a dedicated transmitter thread drains the hand-off queue in
   completion order and publishes every finished shard's shares to the
   proxies' *shard-aware topics* (:meth:`~repro.core.proxy.ProxyNetwork.transmit_shard`):
   one single-partition topic per (proxy, shard slot) and query channel,
   carrying one batch record per shard per query per epoch.  Compared with
   the sharded executor's per-share records this removes the per-share
   partition routing, record construction and poll bookkeeping entirely.
3. **Ingest** — the caller's thread consumes transmit notifications and, for
   each relayed shard, polls that shard's consumers (query by query) and
   feeds the shares to each query's grouped ``MID`` join and batched
   validation/admission loop — while other shards are still being answered
   by the pool.

Multi-query epochs ride the same pipeline: a shard answers every context
query in one pass, the transmitter publishes one batch record per (query,
proxy) on the query's own channel topics, and the ingest stage feeds each
query's aggregator separately.  One answering pass, N isolated tenants.

Determinism: per-client, per-query seeded RNGs make shard answering
order-independent; shard responses are merged into each query's epoch log in
shard-index (= client) order; and every aggregation step downstream of
transmission is insensitive to the order shards arrive in — joins are keyed
by ``MID``, window aggregation is a commutative sum, and windows only fire on
epoch boundaries, after every shard of the previous epoch has been ingested.
The equivalence suite (``tests/runtime/test_executor_equivalence.py``) pins
the executor to the serial reference byte-for-byte.

Failure handling: a worker, transmitter or ingest exception is *surfaced* from
:meth:`PipelinedExecutor.run_epoch` instead of hanging the pipeline — every
stage keeps draining its input queue after a failure so no producer ever
blocks on a full queue, and the first error is re-raised once the epoch's
in-flight work has unwound.  The epoch is then partially ingested; a real
deployment would retry the epoch, the simulation treats it as fatal.  On a
failed epoch *every* query's shard consumers are drained, so one query's
leftover records can never leak into another query's (or the next epoch's)
ingest.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.runtime.executor import (
    EpochContext,
    EpochOutcome,
    PooledEpochExecutor,
    QueryEpochOutcome,
    apply_deadline,
    late_drops_for,
)
from repro.runtime.sharded import answer_shard
from repro.runtime.sharding import plan_shards

if TYPE_CHECKING:
    from repro.pubsub import Consumer


class PipelinedExecutor(PooledEpochExecutor):
    """Barrier-free epoch execution: answer, transmit and ingest concurrently.

    Worker/shard/queue parameters and the pool/consumer lifecycle are the
    shared :class:`~repro.runtime.executor.PooledEpochExecutor` machinery.

    Only the thread pool is supported: the pipeline shares live client and
    broker state between its stages, which is exactly the in-process shape.
    (Use the ``process`` executor for cross-process pipelining from
    serialized shard tasks, or ``ShardedExecutor(pool="process")`` for the
    minimal picklable-shard-task demonstration.)
    """

    _consumer_group_prefix = "pipelined"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.num_workers,
            thread_name_prefix="privapprox-pipeline",
        )

    # -- epoch execution ----------------------------------------------------

    def run_epoch(self, context: EpochContext, epoch: int) -> EpochOutcome:
        pool = self._ensure_pool()
        shards = plan_shards(len(context.clients), self.num_shards)
        occupied = [shard for shard in shards if shard.num_items > 0]
        consumers = self._consumers_for(context)

        # Per-shard response logs (one list per query inside each slot),
        # written by the answering workers (distinct slots, so no locking)
        # and merged in shard order at the end.
        responses_by_shard: list[list[list] | None] = [None] * len(shards)
        answered: queue.Queue = queue.Queue(maxsize=self.queue_depth)
        transmitted: queue.Queue = queue.Queue()

        for shard in occupied:
            pool.submit(
                _answer_stage,
                context,
                shard,
                epoch,
                responses_by_shard,
                answered,
            )
        transmitter = threading.Thread(
            target=_transmit_stage,
            args=(context, len(occupied), responses_by_shard, answered, transmitted),
            name="privapprox-pipeline-transmit",
            daemon=True,
        )
        transmitter.start()
        window_results, error = _ingest_stage(context, consumers, epoch, transmitted)
        transmitter.join()
        if error is not None:
            raise error

        per_query = []
        for index, query in enumerate(context.queries):
            responses: list = []
            for shard in shards:
                shard_responses = responses_by_shard[shard.index]
                if shard_responses:
                    responses.extend(shard_responses[index])
            per_query.append(
                QueryEpochOutcome(
                    query_id=query.query_id,
                    responses=tuple(responses),
                    window_results=tuple(window_results[index]),
                    late_drops=late_drops_for(context, query.query_id),
                )
            )
        return EpochOutcome(per_query=tuple(per_query))


def _answer_stage(
    context: EpochContext,
    shard,
    epoch: int,
    responses_by_shard: list,
    answered: queue.Queue,
) -> None:
    """Answer one shard in a pool worker and hand it to the transmitter.

    Always enqueues exactly one ``(shard_index, error)`` item — on success and
    on failure alike — so the transmitter's expected-item count never hangs.
    """
    try:
        responses, _ = answer_shard(
            context.clients[shard.as_slice()], context.query_ids, epoch
        )
        # Deadline-gate before hand-off: a late answer never reaches the
        # transmitter.  The gate locks internally, so concurrent answer
        # stages record drops safely.
        responses = apply_deadline(context.deadline, responses)
    except Exception as exc:  # surfaced from run_epoch, never swallowed
        responses_by_shard[shard.index] = [[] for _ in context.queries]
        answered.put((shard.index, exc))
    else:
        responses_by_shard[shard.index] = responses
        answered.put((shard.index, None))


def _transmit_stage(
    context: EpochContext,
    expected: int,
    responses_by_shard: list,
    answered: queue.Queue,
    transmitted: queue.Queue,
) -> None:
    """Publish finished shards to their shard-aware topics as they arrive.

    Every query's responses for the shard go out as one batch record per
    proxy on that query's channel.  Consumes exactly ``expected`` items from
    the answered queue even after a failure (so no answering worker ever
    blocks on a full hand-off queue), stops publishing once an error is
    seen, and always terminates the ingest stage with a ``("done", error)``
    sentinel.
    """
    error: Exception | None = None
    for _ in range(expected):
        shard_index, exc = answered.get()
        if exc is not None:
            if error is None:
                error = exc
            continue
        if error is not None:
            continue  # drain without publishing; the epoch already failed
        try:
            for index, query in enumerate(context.queries):
                context.proxies.transmit_shard(
                    shard_index,
                    [
                        list(response.encrypted.shares)
                        for response in responses_by_shard[shard_index][index]
                    ],
                    channel=query.channel,
                )
        except Exception as exc:
            error = exc
            continue
        transmitted.put(("shard", shard_index))
    transmitted.put(("done", error))


def _ingest_stage(
    context: EpochContext,
    consumers: list[list[list["Consumer"]]],
    epoch: int,
    transmitted: queue.Queue,
) -> tuple[list[list], Exception | None]:
    """Ingest each relayed shard as soon as its transmission lands.

    ``consumers`` holds one ``[slot][proxy]`` grid per context query.  For
    every relayed shard each query's consumers are polled across all proxies
    together, so every batch carries complete ``MID`` groups and takes the
    grouped-join fast path of that query's aggregator.  Returns one
    window-result list per query.  Runs until the transmitter's ``done``
    sentinel and never raises — the first error is returned for
    ``run_epoch`` to re-raise after the pipeline has fully unwound.

    On a failed epoch, every query's shard consumers are drained (polled and
    discarded) before returning: records that were published but never
    ingested must not linger in the cached consumers, or a caller that
    treats the failure as transient and runs the next epoch would ingest
    them into the wrong epoch.
    """
    window_results: list[list] = [[] for _ in context.queries]
    error: Exception | None = None
    while True:
        kind, payload = transmitted.get()
        if kind == "done":
            if error is None:
                error = payload
            if error is not None:
                for grid in consumers:
                    _drain_consumers(grid)
            return window_results, error
        if error is not None:
            continue  # skip further shards; the final drain discards them
        try:
            for index, query in enumerate(context.queries):
                shares = []
                for consumer in consumers[index][payload]:
                    for record in consumer.poll():
                        shares.extend(record.value)
                if shares:
                    window_results[index].extend(
                        query.aggregator.ingest_shares(shares, epoch, batched=True)
                    )
        except Exception as exc:
            error = exc


def _drain_consumers(consumers: list[list["Consumer"]]) -> None:
    """Poll and discard everything pending on one query's shard consumers.

    Best-effort cleanup for failed epochs; a consumer that itself fails to
    poll is skipped (the epoch error already surfaces).
    """
    for slot_consumers in consumers:
        for consumer in slot_consumers:
            try:
                while consumer.poll():
                    pass
            except Exception:
                continue
