"""Deterministic scenario sweeps: churn, heavy tails, byzantine injection, deadlines.

The executors are proven equivalent on well-behaved populations; this module
drives them through hostile ones.  A :class:`ScenarioSpec` describes one
environment — per-epoch client join/leave churn, Zipf-skewed participation and
table sizes, duplicate/byzantine answer injection, and an epoch deadline
checked against the :mod:`repro.netsim` latency models — and
:func:`build_plan` expands it into a fully deterministic epoch-by-epoch plan:
same seed, same plan, on every machine and under every executor.

Determinism is the load-bearing property.  The seeded-equivalence contract
demands byte-identical results from every executor, so nothing in a scenario
may depend on wall-clock or scheduling:

* **Churn** is modeled as subscription churn over a fixed client universe.
  The population list never changes shape (client identity and order is what
  aligns shard merges with the serial reference); a client that "leaves"
  unsubscribes from every query and becomes draw-for-draw indistinguishable
  from an absent device, a client that "joins" re-subscribes.  Under the
  resident executor these edits flow to the pinned workers as
  :class:`~repro.runtime.wire.ClientDelta` subscribe/unsubscribe entries
  inside per-epoch ``ShardDelta`` frames; every other executor sees them as
  plain population edits on the live client list.
* **Deadlines** are enforced against *modeled* client latency —
  :class:`~repro.netsim.devices.DeviceProfile` pipeline cost for the client's
  table size plus :class:`~repro.netsim.network.NetworkModel` transfer time
  plus seeded jitter — never against real elapsed time.  Every executor
  therefore drops exactly the same answers: the :class:`EpochDeadline` gate
  filters a late client's responses out of the transmit path (the answer was
  produced, advancing the RNG streams, but never arrived) and records the
  drop per query.
* **Byzantine injection** publishes forged answers straight onto the proxy
  topics before the epoch runs.  Forged tokens are unique per injection and
  repeated ``copies`` times, so admission control admits exactly one copy and
  rejects the rest as duplicates — an order-free outcome, which is what keeps
  the admitted answer multiset (and hence every estimate) identical across
  executors regardless of shard arrival order.

:func:`run_scenario` executes a spec end-to-end on one executor and returns a
:class:`ScenarioRun` with per-epoch metrics (wall-clock, wire bytes, late
drops, admission rejections) plus a digest over the response log, window
results and drop ledger — two runs agree on the digest iff they agreed on
every observable byte.  ``benchmarks/run_scenarios.py`` sweeps a seeded grid
of specs across all five executors and asserts exactly that.
"""

from __future__ import annotations

import hashlib
import random
import struct
import threading
import time
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Sequence

from repro.netsim.devices import DeviceKind, DeviceProfile, OperationKind
from repro.netsim.network import NetworkModel

if TYPE_CHECKING:  # lazy imports keep repro.core <-> repro.runtime acyclic
    from repro.core.client import ClientResponse

# The client answering pipeline whose device cost the deadline model charges
# per local row (Table 3: SQLite read dominates, so cost scales with rows).
_ANSWER_PIPELINE = (
    OperationKind.SQLITE_READ,
    OperationKind.RANDOMIZED_RESPONSE,
    OperationKind.XOR_ENCRYPTION,
)

_DEVICE_PROFILES = {
    DeviceKind.PHONE.value: DeviceProfile.phone(),
    DeviceKind.LAPTOP.value: DeviceProfile.laptop(),
    DeviceKind.SERVER.value: DeviceProfile.server(),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One hostile environment, fully determined by its fields.

    ``num_clients`` is the client *universe*; ``initial_active_fraction`` of
    it starts subscribed.  ``join_rate`` / ``leave_rate`` are per-epoch
    fractions of the universe that (re)subscribe / unsubscribe, drawn without
    replacement and weighted toward the tail of the Zipf ranking — heavy
    clients are stable, light clients churn.  ``zipf_exponent`` skews both
    the churn weighting and the per-client table sizes (0 = uniform).

    ``duplicate_rate`` injects that fraction of the active population as
    forged byzantine answers per epoch, each transmitted
    ``duplicate_copies`` times (one copy is admitted and poisons the
    estimate; the rest are rejected as duplicates — both effects are
    recorded).  ``deadline_seconds`` drops answers whose modeled client
    latency (device pipeline + network transfer at
    ``bandwidth_bytes_per_sec`` + up to ``jitter_seconds`` of seeded jitter)
    exceeds it; ``None`` disables the deadline.
    """

    name: str
    seed: int
    num_clients: int
    num_epochs: int
    num_queries: int = 1
    initial_active_fraction: float = 1.0
    join_rate: float = 0.0
    leave_rate: float = 0.0
    zipf_exponent: float = 0.0
    max_rows_per_client: int = 3
    duplicate_rate: float = 0.0
    duplicate_copies: int = 2
    deadline_seconds: float | None = None
    jitter_seconds: float = 0.0
    bandwidth_bytes_per_sec: float = 125_000_000.0
    sampling_fraction: float = 0.8
    p: float = 0.9
    q: float = 0.5

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be positive")
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be positive")
        if self.num_queries < 1:
            raise ValueError("num_queries must be positive")
        if not 0.0 <= self.initial_active_fraction <= 1.0:
            raise ValueError("initial_active_fraction must lie in [0, 1]")
        if not 0.0 <= self.join_rate <= 1.0 or not 0.0 <= self.leave_rate <= 1.0:
            raise ValueError("join_rate and leave_rate must lie in [0, 1]")
        if self.zipf_exponent < 0.0:
            raise ValueError("zipf_exponent must be non-negative")
        if self.max_rows_per_client < 1:
            raise ValueError("max_rows_per_client must be positive")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must lie in [0, 1]")
        if self.duplicate_copies < 1:
            raise ValueError("duplicate_copies must be positive")
        if self.deadline_seconds is not None and self.deadline_seconds < 0.0:
            raise ValueError("deadline_seconds must be non-negative")
        if self.jitter_seconds < 0.0:
            raise ValueError("jitter_seconds must be non-negative")
        if self.bandwidth_bytes_per_sec <= 0.0:
            raise ValueError("bandwidth must be positive")

    def to_dict(self) -> dict:
        """A JSON-serializable form; :meth:`from_dict` inverts it exactly."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        return cls(**data)


@dataclass(frozen=True)
class InjectionPlan:
    """One forged byzantine answer: a private seed and how often it is sent."""

    seed: int
    copies: int


@dataclass(frozen=True)
class EpochPlan:
    """The churn and injections applied before one epoch runs.

    ``joins`` / ``leaves`` are the client indices whose subscriptions flip
    this epoch; ``active`` is the full resulting roster (sorted), which is
    what the runner feeds to
    :meth:`~repro.core.system.PrivApproxSystem.set_active_clients`.
    """

    epoch: int
    joins: tuple[int, ...]
    leaves: tuple[int, ...]
    active: tuple[int, ...]
    injections: tuple[InjectionPlan, ...]


@dataclass(frozen=True)
class ScenarioPlan:
    """A spec expanded into per-client and per-epoch decisions."""

    spec: ScenarioSpec
    rows_per_client: tuple[int, ...]
    devices: tuple[str, ...]
    initial_active: tuple[int, ...]
    epochs: tuple[EpochPlan, ...]


def _zipf_weights(num_clients: int, exponent: float) -> list[float]:
    """Rank-based Zipf weights: client 0 is the heaviest, the tail thins out."""
    return [1.0 / float(rank + 1) ** exponent for rank in range(num_clients)]


def _weighted_pick(
    rng: random.Random, items: Sequence[int], weights: Sequence[float], count: int
) -> tuple[int, ...]:
    """Deterministic weighted sampling without replacement (Efraimidis-Spirakis).

    Draws one uniform variate per candidate in a fixed order, so the outcome
    depends only on the RNG state and the candidate list — never on set
    iteration order or hashing.
    """
    if count <= 0 or not items:
        return ()
    keyed = [
        (rng.random() ** (1.0 / weight), item)
        for item, weight in zip(items, weights)
    ]
    keyed.sort(reverse=True)
    return tuple(sorted(item for _, item in keyed[:count]))


def build_plan(spec: ScenarioSpec) -> ScenarioPlan:
    """Expand a spec into its deterministic epoch-by-epoch plan.

    Same spec, same plan — including after a :meth:`ScenarioSpec.to_dict`
    round trip — which is what the property tests pin down.
    """
    rng = random.Random(spec.seed)
    n = spec.num_clients
    weights = _zipf_weights(n, spec.zipf_exponent)
    top = weights[0]
    # Table sizes follow the same skew: the head hoards rows, the tail is thin.
    rows = tuple(
        1 + round((spec.max_rows_per_client - 1) * weight / top) for weight in weights
    )
    # Device classes by rank: a few servers at the head, laptops in the
    # middle, phones in the long tail (phones are what blow deadlines).
    devices = []
    for index in range(n):
        position = index / n
        if position < 0.1:
            devices.append(DeviceKind.SERVER.value)
        elif position < 0.4:
            devices.append(DeviceKind.LAPTOP.value)
        else:
            devices.append(DeviceKind.PHONE.value)
    initial_count = round(spec.initial_active_fraction * n)
    initial_active = _weighted_pick(rng, range(n), weights, initial_count)

    active = set(initial_active)
    epochs = []
    # Churn propensity is the *inverse* of weight: rank r churns with weight
    # r+1, so heavy hitters stay and the tail flaps.
    churn_weight = [float(index + 1) for index in range(n)]
    for epoch in range(spec.num_epochs):
        stayers = sorted(active)
        leaves = _weighted_pick(
            rng,
            stayers,
            [churn_weight[index] for index in stayers],
            min(len(stayers), round(spec.leave_rate * n)),
        )
        joiners = sorted(set(range(n)) - active)
        joins = _weighted_pick(
            rng,
            joiners,
            [churn_weight[index] for index in joiners],
            min(len(joiners), round(spec.join_rate * n)),
        )
        active -= set(leaves)
        active |= set(joins)
        injections = tuple(
            InjectionPlan(seed=rng.randrange(2**31), copies=spec.duplicate_copies)
            for _ in range(round(spec.duplicate_rate * len(active)))
        )
        epochs.append(
            EpochPlan(
                epoch=epoch,
                joins=joins,
                leaves=leaves,
                active=tuple(sorted(active)),
                injections=injections,
            )
        )
    return ScenarioPlan(
        spec=spec,
        rows_per_client=rows,
        devices=tuple(devices),
        initial_active=initial_active,
        epochs=tuple(epochs),
    )


# -- deadline model ----------------------------------------------------------


def client_latency_seconds(
    plan: ScenarioPlan,
    index: int,
    epoch: int,
    network: NetworkModel | None = None,
    answer_bits: int = 16,
) -> float:
    """Modeled seconds for one client's answer to reach the proxies.

    Device pipeline cost (per local row for the SQLite scan, once for
    randomization and encryption), plus the network model's transfer and
    processing latency for a single answer, plus seeded per-(client, epoch)
    jitter.  A pure function of the plan — identical in every process, which
    is what lets every executor agree on who was late.
    """
    spec = plan.spec
    device = _DEVICE_PROFILES[plan.devices[index]]
    compute = plan.rows_per_client[index] * device.seconds_per_op(
        OperationKind.SQLITE_READ
    )
    compute += device.seconds_per_op(OperationKind.RANDOMIZED_RESPONSE)
    compute += device.seconds_per_op(OperationKind.XOR_ENCRYPTION)
    if network is None:
        network = NetworkModel(bandwidth_bytes_per_sec=spec.bandwidth_bytes_per_sec)
    transfer = network.latency(
        num_answers_total=1, sampling_fraction=1.0, answer_bits=answer_bits
    ).total_seconds
    jitter = 0.0
    if spec.jitter_seconds > 0.0:
        jitter_rng = random.Random(spec.seed * 1_000_003 + epoch * 8191 + index)
        jitter = jitter_rng.random() * spec.jitter_seconds
    return compute + transfer + jitter


class EpochDeadline:
    """A deterministic per-epoch deadline gate for the executors.

    Built from *modeled* latencies, so the late set is a pure function of the
    scenario — every executor drops the same answers.  Executors duck-type
    this via ``EpochContext.deadline``: :meth:`should_drop` both decides and
    records (thread-safe: the pipelined answer stage filters from concurrent
    pool workers), :meth:`drops_for` reports one query's dropped client ids
    in canonical sorted order.
    """

    def __init__(
        self, epoch: int, deadline_seconds: float, latency_by_client: dict[str, float]
    ):
        if deadline_seconds < 0.0:
            raise ValueError("deadline_seconds must be non-negative")
        self.epoch = epoch
        self.deadline_seconds = deadline_seconds
        self._latency = latency_by_client
        self._lock = threading.Lock()
        self._drops: dict[str, list[str]] = {}

    def is_late(self, client_id: str) -> bool:
        """Whether a client's modeled answer misses the epoch deadline."""
        return self._latency.get(client_id, 0.0) > self.deadline_seconds

    def should_drop(self, response: "ClientResponse") -> bool:
        """Gate one response at the transmit boundary, recording a drop."""
        if not self.is_late(response.client_id):
            return False
        with self._lock:
            self._drops.setdefault(response.query_id, []).append(response.client_id)
        return True

    def drops_for(self, query_id: str) -> tuple[str, ...]:
        """The client ids dropped for one query, sorted (order-canonical)."""
        with self._lock:
            return tuple(sorted(self._drops.get(query_id, ())))

    def total_dropped(self) -> int:
        with self._lock:
            return sum(len(drops) for drops in self._drops.values())


def epoch_deadline_for(
    plan: ScenarioPlan, epoch: int, network: NetworkModel | None = None
) -> EpochDeadline | None:
    """The armed deadline gate for one epoch (``None`` when the spec has none)."""
    spec = plan.spec
    if spec.deadline_seconds is None:
        return None
    if network is None:
        network = NetworkModel(bandwidth_bytes_per_sec=spec.bandwidth_bytes_per_sec)
    latency = {
        f"client-{index:06d}": client_latency_seconds(plan, index, epoch, network)
        for index in range(spec.num_clients)
    }
    return EpochDeadline(epoch, spec.deadline_seconds, latency)


# -- scenario execution ------------------------------------------------------


@dataclass(frozen=True)
class EpochStats:
    """What one scenario epoch cost and dropped."""

    epoch: int
    active_clients: int
    joins: int
    leaves: int
    responses: int
    wall_seconds: float
    wire_bytes: int
    late_clients: tuple[str, ...]
    duplicates_rejected: int
    invalid_answers: int
    answers_admitted: int

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "active_clients": self.active_clients,
            "joins": self.joins,
            "leaves": self.leaves,
            "responses": self.responses,
            "wall_seconds": self.wall_seconds,
            "wire_bytes": self.wire_bytes,
            "late_dropped": len(self.late_clients),
            "duplicates_rejected": self.duplicates_rejected,
            "invalid_answers": self.invalid_answers,
            "answers_admitted": self.answers_admitted,
        }


@dataclass(frozen=True)
class ScenarioRun:
    """One scenario executed end-to-end on one executor."""

    spec: ScenarioSpec
    executor_label: str
    digest: str
    epochs: tuple[EpochStats, ...]
    mean_accuracy_loss: float | None

    @property
    def total_wall_seconds(self) -> float:
        return sum(stats.wall_seconds for stats in self.epochs)

    @property
    def total_wire_bytes(self) -> int:
        return sum(stats.wire_bytes for stats in self.epochs)

    @property
    def total_late_dropped(self) -> int:
        return sum(len(stats.late_clients) for stats in self.epochs)

    @property
    def total_rejections(self) -> int:
        return sum(
            stats.duplicates_rejected + stats.invalid_answers for stats in self.epochs
        )

    def to_dict(self) -> dict:
        return {
            "executor": self.executor_label,
            "digest": self.digest,
            "wall_seconds": self.total_wall_seconds,
            "wire_bytes": self.total_wire_bytes,
            "late_dropped": self.total_late_dropped,
            "admission_rejections": self.total_rejections,
            "mean_accuracy_loss": self.mean_accuracy_loss,
            "epochs": [stats.to_dict() for stats in self.epochs],
        }


def _serialize_window_results(results) -> bytes:
    out = bytearray()
    for result in results:
        out += struct.pack(
            ">ddqq",
            result.window.start,
            result.window.end,
            result.num_answers,
            result.population,
        )
        for bucket in result.histogram.buckets:
            out += struct.pack(
                ">qdd", bucket.bucket_index, bucket.estimate, bucket.error_bound
            )
    return bytes(out)


def _digest_update_responses(digest, responses) -> None:
    for response in responses:
        digest.update(response.client_id.encode("utf-8"))
        digest.update(struct.pack(">q", response.epoch))
        digest.update(bytes(response.truthful_bits))
        digest.update(bytes(response.randomized_bits))
        for share in response.encrypted.shares:
            digest.update(share.payload)


def _inject_byzantine_answers(system, plan: ScenarioPlan, epoch_plan: EpochPlan) -> None:
    """Publish this epoch's forged answers onto the proxy topics.

    Each injection is a structurally valid answer under a forged (unique)
    participation token, sent ``copies`` times with distinct message ids so
    every copy decrypts: admission admits the first and rejects the rest as
    duplicates.  Executors that ingest from shard-aware topics get the
    records on slot 0 (always occupied: shard plans never leave the first
    shard of a non-empty universe empty); channel-topic executors get them
    on the query channel.  Either way the records sit at earlier offsets
    than the epoch's real shares, and the admitted multiset is order-free.
    """
    from repro.core.encryption import AnswerCodec
    from repro.core.query import QueryAnswer
    from repro.crypto.prng import KeystreamGenerator

    if not epoch_plan.injections:
        return
    codec = AnswerCodec()
    # Place the forged records where this executor's ingest actually reads:
    # overlap-scheduled engines stream from shard-aware topics, barrier and
    # serial executors consume the query channel.  (A capability flag, not an
    # isinstance check — every engine configuration is a PooledEpochExecutor,
    # but only the overlap schedulers read shard topics.)
    slotted = getattr(system.executor, "uses_shard_topics", False)
    epoch = epoch_plan.epoch
    for query_index, query_id in enumerate(system.query_ids()):
        query = system.query_for(query_id)
        if slotted:
            system.proxies.ensure_shard_topics(1, channel=query_id)
        for injection in epoch_plan.injections:
            forge_rng = random.Random(injection.seed * 131 + query_index)
            bits = tuple(
                1 if forge_rng.random() < 0.5 else 0 for _ in range(query.num_buckets)
            )
            token = f"byz-{epoch}-{injection.seed:08x}-{query_index}"
            answer = QueryAnswer(
                query_id=query_id, bits=bits, epoch=epoch, token=token
            )
            keystream = KeystreamGenerator(
                seed=(injection.seed * 2_654_435_761 + query_index).to_bytes(
                    16, "big"
                )
            )
            for copy in range(injection.copies):
                encrypted = codec.encrypt(
                    answer,
                    num_proxies=system.config.num_proxies,
                    keystream=keystream,
                    message_id=f"{token}-copy-{copy}",
                )
                shares = list(encrypted.shares)
                if slotted:
                    system.proxies.transmit_shard(0, [shares], channel=query_id)
                else:
                    system.proxies.transmit(shares, channel=query_id)


def run_scenario(
    spec: ScenarioSpec,
    *,
    executor: str = "serial",
    workers: int = 2,
    shards: int | None = None,
    resident: bool = False,
    checkpoint_every: int = 2,
    remote_workers: Sequence[str] | None = None,
    key_file: str | None = None,
) -> ScenarioRun:
    """Execute one scenario end-to-end on one executor configuration.

    Every run of the same spec applies the identical churn roster, deadline
    late-set and injections (all derived from :func:`build_plan`), so two
    runs on different executors must agree on the returned ``digest`` — the
    cross-executor assertion ``benchmarks/run_scenarios.py`` enforces.

    ``remote_workers`` runs the shards on separately launched TCP workers
    (:mod:`repro.runtime.remote`; requires ``executor="process"`` and a
    ``key_file`` of pre-shared HMAC keys) — the digest contract is
    unchanged: a remote run must agree byte-for-byte with a serial one.
    """
    from repro.analytics import histogram_accuracy_loss
    from repro.core import (
        Analyst,
        AnswerSpec,
        ExecutionParameters,
        PrivApproxSystem,
        QueryBudget,
        RangeBuckets,
        SystemConfig,
    )

    plan = build_plan(spec)
    network = NetworkModel(bandwidth_bytes_per_sec=spec.bandwidth_bytes_per_sec)
    config = SystemConfig(
        num_clients=spec.num_clients,
        seed=spec.seed,
        executor=executor,
        executor_workers=workers,
        executor_shards=shards,
        executor_resident=resident,
        executor_checkpoint_every=checkpoint_every,
        executor_remote_workers=(
            tuple(remote_workers) if remote_workers is not None else None
        ),
        executor_key_file=key_file,
    )
    system = PrivApproxSystem(config)
    data_rng = random.Random(spec.seed * 7919 + 1)
    system.provision_clients(
        [("value", "REAL")],
        lambda i: [
            {"value": data_rng.uniform(0.0, 8.0)}
            for _ in range(plan.rows_per_client[i])
        ],
    )
    analyst = Analyst(f"scenario-{spec.name}")
    params = ExecutionParameters(
        sampling_fraction=spec.sampling_fraction, p=spec.p, q=spec.q
    )
    query_ids = []
    for query_index in range(spec.num_queries):
        query = analyst.create_query(
            "SELECT value FROM private_data",
            AnswerSpec(
                buckets=RangeBuckets.uniform(
                    0.0, 8.0, 3 + query_index, open_ended=True
                ),
                value_column="value",
            ),
            frequency_seconds=60.0,
            window_seconds=60.0,
            slide_seconds=60.0,
        )
        system.submit_query(analyst, query, QueryBudget(), parameters=params)
        query_ids.append(query.query_id)

    system.set_active_clients(plan.initial_active)
    epoch_stats: list[EpochStats] = []
    exact_by_epoch: list[dict[str, list[int]]] = []
    rejections_seen = 0
    invalid_seen = 0
    admitted_seen = 0
    try:
        for epoch_plan in plan.epochs:
            epoch = epoch_plan.epoch
            system.set_active_clients(epoch_plan.active)
            deadline = epoch_deadline_for(plan, epoch, network)
            system.epoch_deadline = deadline
            _inject_byzantine_answers(system, plan, epoch_plan)
            exact_by_epoch.append(
                {query_id: system.exact_bucket_counts(query_id) for query_id in query_ids}
            )
            bytes_before = system.proxies.total_bytes_relayed()
            started = time.perf_counter()
            reports = system.run_epoch_all(epoch)
            wall = time.perf_counter() - started
            system.epoch_deadline = None
            wire = system.proxies.total_bytes_relayed() - bytes_before
            executor_wire = getattr(system.executor, "epoch_wire_bytes", None)
            if executor_wire is not None:
                wire += executor_wire.get(epoch, 0)
            late: list[str] = []
            for report in reports.values():
                late.extend(report.late_drops)
            rejections = sum(
                system.aggregator_for(query_id).rejected_duplicates
                for query_id in query_ids
            )
            invalid = sum(
                system.aggregator_for(query_id).invalid_answers
                for query_id in query_ids
            )
            admitted = sum(
                system.aggregator_for(query_id).answers_processed
                for query_id in query_ids
            )
            epoch_stats.append(
                EpochStats(
                    epoch=epoch,
                    active_clients=len(epoch_plan.active),
                    joins=len(epoch_plan.joins),
                    leaves=len(epoch_plan.leaves),
                    responses=sum(r.num_participants for r in reports.values()),
                    wall_seconds=wall,
                    wire_bytes=wire,
                    late_clients=tuple(sorted(late)),
                    duplicates_rejected=rejections - rejections_seen,
                    invalid_answers=invalid - invalid_seen,
                    answers_admitted=admitted - admitted_seen,
                )
            )
            rejections_seen, invalid_seen, admitted_seen = rejections, invalid, admitted
        for query_id in query_ids:
            system.flush(query_id)
    finally:
        system.epoch_deadline = None
        system.close()

    digest = hashlib.sha256()
    losses: list[float] = []
    frequency = 60.0
    for query_id in query_ids:
        _digest_update_responses(digest, system.responses_log(query_id))
        results = analyst.results_for(query_id)
        digest.update(_serialize_window_results(results))
        for result in results:
            result_epoch = int(result.window.start // frequency)
            if not 0 <= result_epoch < len(exact_by_epoch):
                continue
            exact = exact_by_epoch[result_epoch][query_id]
            if sum(exact) == 0:
                continue
            losses.append(
                histogram_accuracy_loss(exact, result.histogram.estimates())
            )
    for stats in epoch_stats:
        for client_id in stats.late_clients:
            digest.update(client_id.encode("utf-8"))

    if remote_workers is not None:
        label = executor + "-remote"
    else:
        label = executor + ("-resident" if resident else "")
    return ScenarioRun(
        spec=spec,
        executor_label=label,
        digest=digest.hexdigest(),
        epochs=tuple(epoch_stats),
        mean_accuracy_loss=(sum(losses) / len(losses)) if losses else None,
    )


# -- the seeded scenario grid ------------------------------------------------


def scenario_grid(grid: str = "full") -> list[ScenarioSpec]:
    """The named, seeded scenario grid the sweep driver and CLI run.

    ``full`` crosses churn x skew x duplicates x deadlines (plus the hostile
    corner cases); ``smoke`` is the four-spec subset CI runs on every push.
    """
    base = dict(num_epochs=3, num_queries=1, sampling_fraction=0.8, p=0.9, q=0.5)
    specs = [
        ScenarioSpec(name="steady-state", seed=9001, num_clients=40, **base),
        ScenarioSpec(
            name="churn-mild", seed=9002, num_clients=40,
            initial_active_fraction=0.8, join_rate=0.1, leave_rate=0.1, **base,
        ),
        ScenarioSpec(
            name="churn-heavy", seed=9003, num_clients=48,
            initial_active_fraction=0.6, join_rate=0.3, leave_rate=0.3, **base,
        ),
        ScenarioSpec(
            name="zipf-tables", seed=9004, num_clients=40,
            zipf_exponent=1.2, max_rows_per_client=6, **base,
        ),
        ScenarioSpec(
            name="zipf-churn", seed=9005, num_clients=48,
            zipf_exponent=1.1, initial_active_fraction=0.7,
            join_rate=0.2, leave_rate=0.2, **base,
        ),
        ScenarioSpec(
            name="byzantine-dupes", seed=9006, num_clients=40,
            duplicate_rate=0.2, duplicate_copies=3, **base,
        ),
        ScenarioSpec(
            name="byzantine-churn", seed=9007, num_clients=40,
            duplicate_rate=0.15, duplicate_copies=2,
            initial_active_fraction=0.8, join_rate=0.15, leave_rate=0.15, **base,
        ),
        ScenarioSpec(
            name="deadline-loose", seed=9008, num_clients=40,
            deadline_seconds=0.5, jitter_seconds=0.05, **base,
        ),
        ScenarioSpec(
            name="deadline-tight", seed=9009, num_clients=40,
            deadline_seconds=0.004, jitter_seconds=0.002, **base,
        ),
        ScenarioSpec(
            name="deadline-slow-net", seed=9010, num_clients=40,
            deadline_seconds=0.01, bandwidth_bytes_per_sec=4_000.0, **base,
        ),
        ScenarioSpec(
            name="kitchen-sink", seed=9011, num_clients=48,
            zipf_exponent=1.0, initial_active_fraction=0.7,
            join_rate=0.2, leave_rate=0.2, duplicate_rate=0.1,
            deadline_seconds=0.02, jitter_seconds=0.03, **base,
        ),
        ScenarioSpec(
            name="flash-crowd", seed=9012, num_clients=60, num_epochs=4,
            num_queries=2, initial_active_fraction=0.2, join_rate=0.4,
            leave_rate=0.05, sampling_fraction=0.8, p=0.9, q=0.5,
        ),
        ScenarioSpec(
            name="mass-exodus", seed=9013, num_clients=60, num_epochs=4,
            num_queries=1, initial_active_fraction=1.0, join_rate=0.0,
            leave_rate=0.45, sampling_fraction=0.8, p=0.9, q=0.5,
        ),
        ScenarioSpec(
            name="ghost-town", seed=9014, num_clients=24,
            initial_active_fraction=0.0, **base,
        ),
    ]
    if grid == "full":
        return specs
    if grid == "smoke":
        keep = {"churn-mild", "byzantine-dupes", "deadline-tight", "kitchen-sink"}
        return [spec for spec in specs if spec.name in keep]
    raise ValueError(f"unknown grid {grid!r} (expected 'full' or 'smoke')")


def find_scenario(name: str) -> ScenarioSpec:
    """Look a grid scenario up by name (CLI ``simulate --scenario``)."""
    for spec in scenario_grid("full"):
        if spec.name == name:
            return spec
    names = ", ".join(spec.name for spec in scenario_grid("full"))
    raise KeyError(f"unknown scenario {name!r}; available: {names}")
