#!/usr/bin/env python
"""CI smoke for the remote worker transport: CLI workers, CLI coordinator.

Exercises the full operational path, exactly as docs/OPERATIONS.md describes
it, with nothing mocked:

1. generate a shared HMAC key file;
2. launch two ``python -m repro.cli worker --listen 127.0.0.1:0`` processes
   and parse their ``worker listening on HOST:PORT`` lines;
3. run seeded scenarios twice — on the serial reference executor and on
   ``--executor process --workers host:port,host:port`` — and require the
   printed digests to be byte-identical;
4. shut the workers down and fail on any worker-side protocol errors.

Exit status is non-zero on any digest mismatch, timeout, or worker failure.
Run from the repository root:

    python tools/remote_smoke.py [scenario ...]
"""

from __future__ import annotations

import os
import re
import secrets
import subprocess
import sys
import time
from pathlib import Path

DEFAULT_SCENARIOS = ["churn-mild", "kitchen-sink"]
LISTEN_PATTERN = re.compile(r"worker listening on ([^\s:]+:\d+)")
DIGEST_PATTERN = re.compile(r"digest\s+([0-9a-f]{64})")
WORKER_STARTUP_SECONDS = 30.0
RUN_TIMEOUT_SECONDS = 300.0


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def child_env() -> dict:
    """The subprocess environment: src/ on PYTHONPATH for uninstalled trees."""
    env = dict(os.environ)
    src = str(repo_root() / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


def start_worker(key_path: Path, max_sessions: int) -> tuple[subprocess.Popen, str]:
    """Launch one CLI worker on a free port; returns (process, host:port)."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--listen", "127.0.0.1:0",
            "--key-file", str(key_path),
            "--max-sessions", str(max_sessions),
        ],
        cwd=repo_root(),
        env=child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + WORKER_STARTUP_SECONDS
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = LISTEN_PATTERN.search(line)
        if match:
            return process, match.group(1)
    process.kill()
    raise SystemExit(f"worker did not announce its address (last line: {line!r})")


def run_digest(arguments: list[str]) -> str:
    """Run one ``simulate --scenario`` invocation and return its digest."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *arguments],
        cwd=repo_root(),
        env=child_env(),
        capture_output=True,
        text=True,
        timeout=RUN_TIMEOUT_SECONDS,
    )
    if completed.returncode != 0:
        raise SystemExit(
            f"simulate failed ({' '.join(arguments)}):\n{completed.stdout}"
            f"{completed.stderr}"
        )
    match = DIGEST_PATTERN.search(completed.stdout)
    if not match:
        raise SystemExit(f"no digest in simulate output:\n{completed.stdout}")
    return match.group(1)


def main(argv: list[str]) -> int:
    scenarios = argv or DEFAULT_SCENARIOS
    key_path = repo_root() / "tools" / ".remote_smoke.keys"
    key_path.write_text(secrets.token_hex(32) + "\n")
    workers: list[subprocess.Popen] = []
    failures = 0
    try:
        addresses = []
        for _ in range(2):
            process, address = start_worker(key_path, max_sessions=len(scenarios))
            workers.append(process)
            addresses.append(address)
        print(f"workers up at {', '.join(addresses)}")
        for scenario in scenarios:
            serial = run_digest(["simulate", "--scenario", scenario])
            remote = run_digest(
                [
                    "simulate", "--scenario", scenario,
                    "--executor", "process",
                    "--workers", ",".join(addresses),
                    "--key-file", str(key_path),
                    "--checkpoint-every", "2",
                ]
            )
            status = "OK" if remote == serial else "MISMATCH"
            if remote != serial:
                failures += 1
            print(f"{scenario:<16} serial={serial[:16]}… remote={remote[:16]}… {status}")
        # With --max-sessions the workers exit on their own once every
        # scenario's coordinator session has ended.
        for process in workers:
            try:
                output, _ = process.communicate(timeout=WORKER_STARTUP_SECONDS)
            except subprocess.TimeoutExpired:
                process.kill()
                output, _ = process.communicate()
                failures += 1
                print(f"FAIL: worker did not exit after {len(scenarios)} sessions")
            if process.returncode != 0:
                failures += 1
                print(f"FAIL: worker exited with {process.returncode}:\n{output}")
            elif "0 failed, 0 rejected" not in output:
                failures += 1
                print(f"FAIL: worker reported protocol failures:\n{output}")
    finally:
        for process in workers:
            if process.poll() is None:
                process.kill()
        key_path.unlink(missing_ok=True)
    if failures:
        print(f"FAIL: {failures} remote smoke failure(s)", file=sys.stderr)
        return 1
    print(f"OK: {len(scenarios)} scenario(s) byte-identical over remote workers")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
