#!/usr/bin/env python
"""Check intra-repo links in the repository's Markdown files.

Scans every ``*.md`` file (skipping dot-directories and caches) for inline
links and validates the ones that point inside the repository: the linked
file or directory must exist, relative to the Markdown file containing the
link.  Links into Markdown files (and pure in-page anchors like
``#section``) are additionally checked for a matching heading: the fragment
must equal the GitHub-style slug of some heading in the target file.
External links (``http://``, ``https://``, ``mailto:``) are not fetched.

Exit status is non-zero when any intra-repo link is broken, listing each as
``file:line: target``.  Run from anywhere inside the repository:

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline Markdown links: [text](target).  Images ![alt](target) match too via
# the bracket contents; reference-style definitions are rare here and skipped.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.+?)\s*#*\s*$")
INLINE_LINK_TEXT = re.compile(r"\[([^\]]*)\]\([^)\s]*\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIR_NAMES = {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv"}


def repo_root() -> Path:
    """The repository root: nearest ancestor of this file containing .git."""
    here = Path(__file__).resolve().parent
    for candidate in (here, *here.parents):
        if (candidate / ".git").exists():
            return candidate
    return here.parent


def markdown_files(root: Path) -> list[Path]:
    files = []
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIR_NAMES or part.startswith(".") for part in path.parts[len(root.parts):-1]):
            continue
        files.append(path)
    return files


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading (before dedup suffixes).

    Lowercase; inline-link markup reduced to its text; punctuation removed
    (word characters, spaces and hyphens survive); spaces become hyphens.
    """
    text = INLINE_LINK_TEXT.sub(r"\1", heading)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    """All anchor slugs a Markdown file exposes, GitHub dedup rules included.

    Repeated headings get ``-1``, ``-2``, ... suffixes in document order.
    Headings inside fenced code blocks are not anchors and are skipped.
    """
    anchors = cache.get(path)
    if anchors is not None:
        return anchors
    anchors = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith(("```", "~~~")):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_PATTERN.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    cache[path] = anchors
    return anchors


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    """Return ``line_number: target`` entries for every broken link in a file."""
    broken = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            file_part, _, fragment = target.partition("#")
            resolved = (path.parent / file_part).resolve() if file_part else path
            if not resolved.exists():
                broken.append(f"{line_number}: {target}")
                continue
            # Anchor validation, for Markdown targets only: the fragment must
            # be the GitHub slug of a heading in the target file.
            if fragment and resolved.suffix == ".md":
                if fragment not in heading_anchors(resolved, anchor_cache):
                    broken.append(f"{line_number}: {target} (no such heading anchor)")
    return broken


def main() -> int:
    root = repo_root()
    files = markdown_files(root)
    anchor_cache: dict[Path, set[str]] = {}
    failures = 0
    for path in files:
        for entry in check_file(path, anchor_cache):
            print(f"{path.relative_to(root)}:{entry}", file=sys.stderr)
            failures += 1
    checked = len(files)
    if failures:
        print(f"FAIL: {failures} broken intra-repo link(s) across {checked} Markdown files", file=sys.stderr)
        return 1
    print(f"OK: intra-repo links valid across {checked} Markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
