#!/usr/bin/env python
"""Check intra-repo links in the repository's Markdown files.

Scans every ``*.md`` file (skipping dot-directories and caches) for inline
links and validates the ones that point inside the repository: the linked
file or directory must exist, relative to the Markdown file containing the
link.  External links (``http://``, ``https://``, ``mailto:``) and pure
in-page anchors (``#section``) are not fetched or resolved.

Exit status is non-zero when any intra-repo link is broken, listing each as
``file:line: target``.  Run from anywhere inside the repository:

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline Markdown links: [text](target).  Images ![alt](target) match too via
# the bracket contents; reference-style definitions are rare here and skipped.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIR_NAMES = {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv"}


def repo_root() -> Path:
    """The repository root: nearest ancestor of this file containing .git."""
    here = Path(__file__).resolve().parent
    for candidate in (here, *here.parents):
        if (candidate / ".git").exists():
            return candidate
    return here.parent


def markdown_files(root: Path) -> list[Path]:
    files = []
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIR_NAMES or part.startswith(".") for part in path.parts[len(root.parts):-1]):
            continue
        files.append(path)
    return files


def check_file(path: Path) -> list[str]:
    """Return ``line_number: target`` entries for every broken link in a file."""
    broken = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            # Drop any #fragment; resolving anchors inside files is out of scope.
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                broken.append(f"{line_number}: {target}")
    return broken


def main() -> int:
    root = repo_root()
    files = markdown_files(root)
    failures = 0
    for path in files:
        for entry in check_file(path):
            print(f"{path.relative_to(root)}:{entry}", file=sys.stderr)
            failures += 1
    checked = len(files)
    if failures:
        print(f"FAIL: {failures} broken intra-repo link(s) across {checked} Markdown files", file=sys.stderr)
        return 1
    print(f"OK: intra-repo links valid across {checked} Markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
