"""Test suite for the PrivApprox reproduction."""
