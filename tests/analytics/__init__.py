"""Tests for repro.analytics."""
