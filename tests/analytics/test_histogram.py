"""Tests for histogram results and bucket estimates."""

import pytest

from repro.analytics import BucketEstimate, HistogramResult


class TestBucketEstimate:
    def test_interval_bounds(self):
        bucket = BucketEstimate(bucket_index=0, label="[0,1)", estimate=100.0, error_bound=5.0)
        assert bucket.lower == 95.0
        assert bucket.upper == 105.0

    def test_contains(self):
        bucket = BucketEstimate(0, "[0,1)", 100.0, 5.0)
        assert bucket.contains(97.0)
        assert bucket.contains(105.0)
        assert not bucket.contains(106.0)

    def test_zero_error_bound_interval_is_point(self):
        bucket = BucketEstimate(0, "b", 10.0, 0.0)
        assert bucket.contains(10.0)
        assert not bucket.contains(10.1)


class TestHistogramResult:
    def _histogram(self) -> HistogramResult:
        result = HistogramResult(window=(0.0, 60.0), num_answers=50)
        result.add_bucket(BucketEstimate(1, "[1,2)", 30.0, 2.0))
        result.add_bucket(BucketEstimate(0, "[0,1)", 70.0, 3.0))
        result.add_bucket(BucketEstimate(2, "[2,3)", 0.0, 1.0))
        return result

    def test_estimates_are_ordered_by_bucket_index(self):
        assert self._histogram().estimates() == [70.0, 30.0, 0.0]

    def test_labels_follow_bucket_order(self):
        assert self._histogram().labels() == ["[0,1)", "[1,2)", "[2,3)"]

    def test_error_bounds_follow_bucket_order(self):
        assert self._histogram().error_bounds() == [3.0, 2.0, 1.0]

    def test_total(self):
        assert self._histogram().total() == 100.0

    def test_fractions(self):
        assert self._histogram().fractions() == [0.7, 0.3, 0.0]

    def test_fractions_of_empty_histogram(self):
        empty = HistogramResult()
        empty.add_bucket(BucketEstimate(0, "b", 0.0))
        assert empty.fractions() == [0.0]

    def test_bucket_lookup(self):
        assert self._histogram().bucket(1).estimate == 30.0

    def test_bucket_lookup_missing(self):
        with pytest.raises(KeyError):
            self._histogram().bucket(9)

    def test_len(self):
        assert len(self._histogram()) == 3
