"""Tests for the distribution helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analytics import empirical_fractions, normalize
from repro.analytics.distributions import counts_from_indices


class TestNormalize:
    def test_basic(self):
        assert normalize([1, 1, 2]) == [0.25, 0.25, 0.5]

    def test_all_zero(self):
        assert normalize([0, 0]) == [0.0, 0.0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize([1, -1])

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
    def test_sums_to_one_or_zero(self, values):
        result = normalize(values)
        total = sum(result)
        assert total == pytest.approx(1.0, abs=1e-9) or total == 0.0


class TestEmpiricalFractions:
    def test_basic(self):
        assert empirical_fractions([0, 0, 1, 2], 3) == [0.5, 0.25, 0.25]

    def test_empty(self):
        assert empirical_fractions([], 3) == [0.0, 0.0, 0.0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            empirical_fractions([5], 3)

    def test_invalid_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            empirical_fractions([0], 0)


class TestCountsFromIndices:
    def test_basic(self):
        assert counts_from_indices([0, 1, 1, 3], 4) == [1, 2, 0, 1]

    def test_counts_sum_to_total(self):
        indices = [0, 1, 2, 2, 2, 1]
        assert sum(counts_from_indices(indices, 3)) == len(indices)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            counts_from_indices([-1], 3)
