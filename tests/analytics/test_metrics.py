"""Tests for the utility metrics (accuracy loss, relative error)."""

import pytest
from hypothesis import given, strategies as st

from repro.analytics import (
    accuracy_loss,
    histogram_accuracy_loss,
    mean_accuracy_loss,
    relative_error,
)


class TestAccuracyLoss:
    def test_perfect_estimate(self):
        assert accuracy_loss(100.0, 100.0) == 0.0

    def test_overestimate(self):
        assert accuracy_loss(100.0, 110.0) == pytest.approx(0.1)

    def test_underestimate_symmetric(self):
        assert accuracy_loss(100.0, 90.0) == pytest.approx(0.1)

    def test_zero_actual_with_zero_estimate(self):
        assert accuracy_loss(0.0, 0.0) == 0.0

    def test_zero_actual_with_nonzero_estimate(self):
        assert accuracy_loss(0.0, 5.0) == 5.0

    @given(
        actual=st.floats(min_value=1.0, max_value=1e6),
        estimate=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_non_negative(self, actual, estimate):
        assert accuracy_loss(actual, estimate) >= 0.0

    @given(actual=st.floats(min_value=1.0, max_value=1e6), scale=st.floats(min_value=0.0, max_value=2.0))
    def test_scale_invariance(self, actual, scale):
        """Loss depends only on the relative deviation, not the magnitude."""
        estimate = actual * scale
        assert accuracy_loss(actual, estimate) == pytest.approx(abs(1 - scale), abs=1e-9)


class TestRelativeError:
    def test_signed(self):
        assert relative_error(100.0, 110.0) == pytest.approx(0.1)
        assert relative_error(100.0, 90.0) == pytest.approx(-0.1)

    def test_zero_actual(self):
        assert relative_error(0.0, 3.0) == 3.0


class TestMeanAccuracyLoss:
    def test_basic(self):
        assert mean_accuracy_loss([100, 200], [110, 180]) == pytest.approx((0.1 + 0.1) / 2)

    def test_skips_zero_actuals(self):
        assert mean_accuracy_loss([0, 100], [5, 110]) == pytest.approx(0.1)

    def test_all_zero_actuals(self):
        assert mean_accuracy_loss([0, 0], [1, 2]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_accuracy_loss([1], [1, 2])


class TestHistogramAccuracyLoss:
    def test_identical_histograms(self):
        assert histogram_accuracy_loss([10, 20, 30], [10, 20, 30]) == 0.0

    def test_total_deviation_over_total_count(self):
        assert histogram_accuracy_loss([10, 20, 30], [12, 18, 30]) == pytest.approx(4 / 60)

    def test_zero_exact_histogram(self):
        assert histogram_accuracy_loss([0, 0], [1, 1]) == 2.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            histogram_accuracy_loss([1, 2], [1])

    @given(
        exact=st.lists(st.floats(min_value=1, max_value=1000), min_size=1, max_size=10),
        noise=st.floats(min_value=-0.2, max_value=0.2),
    )
    def test_uniform_relative_noise_gives_that_loss(self, exact, noise):
        estimated = [v * (1 + noise) for v in exact]
        assert histogram_accuracy_loss(exact, estimated) == pytest.approx(abs(noise), abs=1e-9)
