"""Unit tests for the columnar store: typed vectors, incremental sync,
index maintenance, and the Table.scan projection fast path."""

from repro.sqldb import ColumnVector, Database


def _make_db(rows=200):
    db = Database()
    db.create_table("t", [("x", "INTEGER"), ("y", "REAL"), ("tag", "TEXT")])
    db.insert_rows(
        "t",
        [{"x": i % 10, "y": float(i), "tag": "even" if i % 2 == 0 else "odd"} for i in range(rows)],
    )
    return db


class TestColumnVector:
    def test_integer_stays_typed(self):
        vector = ColumnVector("INTEGER")
        for value in [1, -5, 2**62]:
            vector.append(value)
        assert vector.typed
        assert list(vector) == [1, -5, 2**62]
        assert vector[1] == -5

    def test_null_demotes_to_list(self):
        vector = ColumnVector("INTEGER")
        vector.append(7)
        vector.append(None)
        vector.append(8)
        assert not vector.typed
        assert list(vector) == [7, None, 8]

    def test_bool_does_not_coerce_into_integer_array(self):
        # array('q') would store True as 1; the read-back must stay True
        # to match what the row-scan engine projects.
        vector = ColumnVector("INTEGER")
        vector.append(3)
        vector.append(True)
        assert not vector.typed
        assert vector[1] is True

    def test_int_does_not_coerce_into_real_array(self):
        vector = ColumnVector("REAL")
        vector.append(1.5)
        vector.append(3)
        assert not vector.typed
        assert vector[1] == 3 and type(vector[1]) is int

    def test_oversized_int_demotes(self):
        vector = ColumnVector("INTEGER")
        vector.append(1)
        vector.append(2**70)
        assert not vector.typed
        assert vector[1] == 2**70

    def test_text_and_boolean_are_plain_lists(self):
        assert not ColumnVector("TEXT").typed
        assert not ColumnVector("BOOLEAN").typed


class TestColumnStoreSync:
    def test_sync_is_noop_when_clean(self):
        table = _make_db().table("t")
        store = table.column_store
        assert store.rebuilds == 1
        before = store.appended_rows
        table.sync_store()
        table.sync_store()
        assert store.rebuilds == 1 and store.appended_rows == before

    def test_append_rows_extends_incrementally(self):
        db = _make_db()
        table = db.table("t")
        store = table.column_store
        table.append_rows([(1, 2.0, "a"), (2, 3.0, "bb")])
        store = table.column_store  # property syncs
        assert store.rebuilds == 1
        assert store.count == len(table.rows) == 202
        assert store.column("tag")[201] == "bb"

    def test_delete_triggers_rebuild(self):
        db = _make_db()
        table = db.table("t")
        store = table.column_store
        assert store.rebuilds == 1
        db.execute("DELETE FROM t WHERE x < 5")
        store = table.column_store
        assert store.rebuilds == 2
        assert store.count == len(table.rows)

    def test_in_place_row_edit_triggers_rebuild(self):
        """Regression: a same-length in-place edit (``rows[0] = ...``, as the
        resident runtime's parent-side mutation tests perform between epochs)
        must not be answered from stale columnar arrays or indexes."""
        db = _make_db()
        table = db.table("t")
        store = table.column_store
        store.hash_index("x")
        table.rows[0] = (999, -1.0, "edited")
        store = table.column_store  # property syncs
        assert store.rebuilds == 2
        assert store.column("x")[0] == 999
        assert store.index_stats() == {}  # stale indexes dropped
        assert store.hash_index("x").lookup(999) == [0]
        assert db.query("SELECT tag FROM t WHERE x = 999").rows == [("edited",)]

    def test_row_removal_triggers_rebuild(self):
        db = _make_db()
        table = db.table("t")
        store = table.column_store
        del table.rows[3]
        table.rows.pop()
        store = table.column_store
        assert store.rebuilds >= 2
        assert store.count == len(table.rows) == 198

    def test_append_maintains_live_indexes(self):
        db = _make_db()
        table = db.table("t")
        store = table.column_store
        hash_index = store.hash_index("x")
        tree = store.tree_index("x")
        hits_before = len(hash_index.lookup(3))
        table.append_rows([(3, 0.0, "a")])
        table.sync_store()
        assert len(store.hash_index("x").lookup(3)) == hits_before + 1
        assert store.hash_index("x") is hash_index  # maintained, not rebuilt
        assert store.tree_index("x") is tree
        tree.check_invariants()
        assert store.tree_index("x").range_ids(3, 3, True, True)[-1] == 200

    def test_rebuild_drops_indexes(self):
        db = _make_db()
        table = db.table("t")
        store = table.column_store
        store.hash_index("x")
        assert "x" in store.index_stats()
        db.execute("DELETE FROM t WHERE x = 0")
        table.sync_store()
        assert store.index_stats() == {}  # lazily rebuilt on next probe
        assert store.hash_index("x").lookup(0) == []

    def test_database_sync_columnar_skips_lazy_tables(self):
        db = _make_db()
        db.create_table("untouched", [("a", "INTEGER")])
        db.sync_columnar()  # must not build a store for 'untouched'
        assert db.table("untouched")._store is None
        store = db.table("t").column_store
        db.table("t").append_rows([(1, 1.0, "a")])
        db.sync_columnar()
        assert store.count == 201


class TestScanProjection:
    def test_projected_scan_returns_column_tuples(self):
        table = _make_db(rows=6).table("t")
        assert list(table.scan(columns=["x"])) == [(r[0],) for r in table.rows]
        assert list(table.scan(columns=["tag", "x"])) == [
            (r[2], r[0]) for r in table.rows
        ]
        # Case-insensitive resolution, same as column_index.
        assert list(table.scan(columns=["TAG"]))[0] == ("even",)

    def test_projected_scan_allocates_no_row_dicts(self, monkeypatch):
        """Regression: Table.scan used to build one dict per row no matter
        how little of the row the caller consumed.  Pin the dict allocation
        count by shadowing ``dict`` in the table module: the full scan pays
        one per row, the projected scan pays zero."""
        import repro.sqldb.table as table_module

        counter = {"dicts": 0}

        class CountingDict(dict):
            def __init__(self, *args, **kwargs):
                counter["dicts"] += 1
                super().__init__(*args, **kwargs)

        # Module-global shadows the builtin inside Table.scan.
        monkeypatch.setattr(table_module, "dict", CountingDict, raising=False)
        table = _make_db(rows=500).table("t")

        counter["dicts"] = 0
        full = list(table.scan())
        assert counter["dicts"] == 500  # the old path: one dict per row
        assert len(full) == 500

        counter["dicts"] = 0
        projected = list(table.scan(columns=["x"]))
        assert counter["dicts"] == 0  # projection materializes tuples only
        assert len(projected) == 500


class TestShardArena:
    def _shard(self, sizes=(3, 5, 2)):
        from repro.sqldb import ShardArena

        members = [_make_db(rows=size) for size in sizes]
        return members, ShardArena(members)

    def test_concatenates_members_in_slot_order(self):
        members, arena = self._shard()
        table = arena.table("t")
        assert table.count == 10
        assert list(table.row_slot) == [0] * 3 + [1] * 5 + [2] * 2
        # Each slot's span lists its own rows in local order.
        for slot, member in enumerate(members):
            local_rows = member.table("t").rows
            for local_id, arena_id in enumerate(table.slot_rows[slot]):
                assert table.rows[arena_id] == tuple(local_rows[local_id])

    def test_initial_build_counts_as_one_rebuild(self):
        _, arena = self._shard()
        stats = arena.table("t").stats()
        assert stats["rebuilds"] == 1
        assert stats["appended_rows"] == 10
        assert stats["span_rows"] == 10
        assert stats["included_slots"] == 3

    def test_appends_sync_in_place_without_rebuild(self):
        members, arena = self._shard()
        table = arena.table("t")
        members[1].insert_rows("t", [{"x": 77, "y": 7.0, "tag": "odd"}])
        table = arena.table("t")  # re-fetch syncs
        stats = table.stats()
        assert stats["rebuilds"] == 1  # no spurious rebuild
        assert stats["appended_rows"] == 11
        assert stats["span_rows"] == 11
        # The new row landed at the arena tail, mapped to slot 1.
        assert table.row_slot[-1] == 1
        assert table.rows[10] == (77, 7.0, "odd")

    def test_live_indexes_are_maintained_on_append(self):
        members, arena = self._shard()
        table = arena.table("t")
        hash_index = table.hash_index("x")
        tree_index = table.tree_index("y")
        members[2].insert_rows("t", [{"x": 0, "y": 99.5, "tag": "even"}])
        synced = arena.table("t")
        assert synced.hash_index("x") is hash_index  # maintained, not rebuilt
        assert 10 in hash_index.lookup(0)
        assert 10 in tree_index.range_ids(99.0, 100.0)
        assert synced.stats()["rebuilds"] == 1

    def test_in_place_member_edit_triggers_rebuild(self):
        members, arena = self._shard()
        arena.table("t")
        members[0].execute("DELETE FROM t WHERE x = 1")
        stats = arena.table("t").stats()
        assert stats["rebuilds"] == 2
        assert stats["span_rows"] == 9

    def test_mismatched_schema_member_is_excluded(self):
        from repro.sqldb import Database, ShardArena

        members = [_make_db(rows=2)]
        odd = Database()
        odd.create_table("t", [("x", "TEXT")])
        odd.insert_rows("t", [{"x": "zz"}])
        members.append(odd)
        arena = ShardArena(members)
        table = arena.table("t")
        assert table.count == 2
        assert table.slot_rows[1] is None  # excluded: answers itself
        assert table.stats()["included_slots"] == 1

    def test_member_missing_the_table_is_excluded_until_created(self):
        from repro.sqldb import Database, ShardArena

        members = [_make_db(rows=2), Database()]
        arena = ShardArena(members)
        table = arena.table("t")
        assert table.slot_rows[1] is None
        members[1].create_table("t", [("x", "INTEGER"), ("y", "REAL"), ("tag", "TEXT")])
        members[1].insert_rows("t", [{"x": 5, "y": 0.5, "tag": "odd"}])
        table = arena.table("t")  # sync notices the new table and rebuilds
        assert table.slot_rows[1] is not None
        assert table.count == 3

    def test_matches_is_identity_based(self):
        members, arena = self._shard()
        assert arena.matches(members)
        assert not arena.matches(list(reversed(members)))
        assert not arena.matches(members[:-1])
        replaced = members[:-1] + [_make_db(rows=2)]
        assert not arena.matches(replaced)

    def test_arena_stats_reports_every_cached_table(self):
        _, arena = self._shard()
        arena.table("t")
        stats = arena.arena_stats()
        assert "t" in stats
        assert stats["t"]["rebuilds"] == 1
