"""Tests for repro.sqldb."""
