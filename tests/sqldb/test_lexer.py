"""Tests for the SQL tokenizer."""

import pytest

from repro.sqldb.errors import ParseError
from repro.sqldb.lexer import TokenType, tokenize


class TestTokenize:
    def test_simple_select(self):
        tokens = tokenize("SELECT speed FROM vehicle")
        values = [(t.type, t.value) for t in tokens]
        assert values[0] == (TokenType.KEYWORD, "SELECT")
        assert values[1] == (TokenType.IDENTIFIER, "speed")
        assert values[2] == (TokenType.KEYWORD, "FROM")
        assert values[3] == (TokenType.IDENTIFIER, "vehicle")
        assert values[4][0] is TokenType.EOF

    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select Speed from Vehicle where x = 1")
        keywords = [t.value for t in tokens if t.type is TokenType.KEYWORD]
        assert keywords == ["SELECT", "FROM", "WHERE"]

    def test_string_literals(self):
        tokens = tokenize("SELECT a FROM t WHERE city = 'San Francisco'")
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert len(strings) == 1
        assert strings[0].value == "San Francisco"

    def test_double_quoted_string(self):
        tokens = tokenize('SELECT a FROM t WHERE name = "bob"')
        assert any(t.type is TokenType.STRING and t.value == "bob" for t in tokens)

    def test_unterminated_string_rejected(self):
        with pytest.raises(ParseError):
            tokenize("SELECT a FROM t WHERE city = 'San")

    def test_numbers(self):
        tokens = tokenize("SELECT a FROM t WHERE x = 3.5 AND y = 42")
        numbers = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert numbers == ["3.5", "42"]

    def test_negative_number_after_operator(self):
        tokens = tokenize("SELECT a FROM t WHERE x > -5")
        numbers = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert numbers == ["-5"]

    def test_operators(self):
        tokens = tokenize("SELECT a FROM t WHERE x >= 1 AND y <= 2 AND z <> 3 AND w != 4")
        operators = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert operators == [">=", "<=", "<>", "!="]

    def test_star(self):
        tokens = tokenize("SELECT * FROM t")
        assert any(t.type is TokenType.STAR for t in tokens)

    def test_punctuation(self):
        tokens = tokenize("INSERT INTO t (a, b) VALUES (1, 2);")
        puncts = [t.value for t in tokens if t.type is TokenType.PUNCT]
        assert puncts == ["(", ",", ")", "(", ",", ")", ";"]

    def test_unexpected_character_rejected(self):
        with pytest.raises(ParseError):
            tokenize("SELECT a FROM t WHERE x = @")

    def test_identifiers_with_underscores(self):
        tokens = tokenize("SELECT pickup_time FROM private_data")
        identifiers = [t.value for t in tokens if t.type is TokenType.IDENTIFIER]
        assert identifiers == ["pickup_time", "private_data"]

    def test_aggregate_keywords(self):
        tokens = tokenize("SELECT COUNT(*), AVG(x) FROM t")
        keywords = [t.value for t in tokens if t.type is TokenType.KEYWORD]
        assert "COUNT" in keywords and "AVG" in keywords
