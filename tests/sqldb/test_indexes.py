"""Unit tests for the secondary index structures (hash + B+Tree)."""

import math
import random

import pytest

from repro.sqldb import BPlusTreeIndex, HashIndex

SEED = "sqldb-indexes-20260808"


class TestHashIndex:
    def test_lookup_returns_ascending_ids(self):
        index = HashIndex()
        for row_id, value in enumerate(["a", "b", "a", "a", "b"]):
            index.insert(value, row_id)
        assert index.lookup("a") == [0, 2, 3]
        assert index.lookup("b") == [1, 4]
        assert index.lookup("zz") == []
        assert len(index) == 5

    def test_none_is_an_ordinary_key(self):
        # IN (NULL, ...) matches NULL rows under the scan engine, so the
        # hash index must serve None like any other key.
        index = HashIndex()
        index.insert(None, 0)
        index.insert(1, 1)
        index.insert(None, 2)
        assert index.lookup(None) == [0, 2]

    def test_numeric_equality_crosses_types(self):
        # dict lookup uses ==, exactly like the scan engine's _compare:
        # 1, 1.0 and True all land on one key.
        index = HashIndex()
        index.insert(1, 0)
        assert index.lookup(1.0) == [0]
        assert index.lookup(True) == [0]


def _brute_range(pairs, low, high, low_inclusive, high_inclusive):
    out = []
    for row_id, key in pairs:
        if key is None or key != key:
            continue
        if low is not None and (key < low if low_inclusive else key <= low):
            continue
        if high is not None and (key > high if high_inclusive else key >= high):
            continue
        out.append(row_id)
    return sorted(out)


class TestBPlusTreeIndex:
    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BPlusTreeIndex(order=2)

    def test_lookup_and_duplicates(self):
        tree = BPlusTreeIndex(order=4)
        values = [5, 3, 5, 8, 3, 5, 1]
        for row_id, value in enumerate(values):
            tree.insert(value, row_id)
        tree.check_invariants()
        assert tree.lookup(5) == [0, 2, 5]
        assert tree.lookup(3) == [1, 4]
        assert tree.lookup(99) == []
        assert tree.keys() == [1, 3, 5, 8]
        assert len(tree) == len(values)

    def test_splits_grow_depth_and_keep_invariants(self):
        rng = random.Random(SEED)
        tree = BPlusTreeIndex(order=4)
        keys = [rng.randint(0, 10_000) for _ in range(2_000)]
        for row_id, key in enumerate(keys):
            tree.insert(key, row_id)
        tree.check_invariants()
        assert tree.depth() > 2
        assert tree.keys() == sorted(set(keys))

    @pytest.mark.parametrize("order", [3, 4, 32])
    def test_range_ids_match_brute_force(self, order):
        rng = random.Random(f"{SEED}-{order}")
        tree = BPlusTreeIndex(order=order)
        pairs = [(row_id, rng.randint(0, 60)) for row_id in range(400)]
        for row_id, key in pairs:
            tree.insert(key, row_id)
        tree.check_invariants()
        for _ in range(200):
            low = rng.choice([None, rng.randint(-5, 65)])
            high = rng.choice([None, rng.randint(-5, 65)])
            low_inclusive = rng.random() < 0.5
            high_inclusive = rng.random() < 0.5
            expected = _brute_range(pairs, low, high, low_inclusive, high_inclusive)
            got = tree.range_ids(low, high, low_inclusive, high_inclusive)
            assert got == expected, (low, high, low_inclusive, high_inclusive)

    def test_string_keys(self):
        tree = BPlusTreeIndex(order=3)
        words = ["pear", "apple", "fig", "apple", "kiwi", "banana"]
        for row_id, word in enumerate(words):
            tree.insert(word, row_id)
        tree.check_invariants()
        assert tree.keys() == ["apple", "banana", "fig", "kiwi", "pear"]
        assert tree.range_ids("b", "k", True, False) == [2, 5]

    def test_null_and_nan_are_quarantined(self):
        tree = BPlusTreeIndex(order=4)
        tree.insert(None, 0)
        tree.insert(math.nan, 1)
        tree.insert(2.0, 2)
        tree.check_invariants()
        # NULL/NaN never satisfy a comparison under the scan engine, so
        # no probe may ever return them.
        assert tree.range_ids(None, None, True, True) == [2]
        assert tree.lookup(None) == []
        assert tree.lookup(math.nan) == []

    def test_insertion_order_does_not_change_answers(self):
        rng = random.Random(f"{SEED}-order")
        keys = [rng.randint(0, 100) for _ in range(300)]
        shuffled = BPlusTreeIndex(order=8)
        for row_id, key in enumerate(keys):
            shuffled.insert(key, row_id)
        by_key = BPlusTreeIndex(order=8)
        for row_id, key in sorted(enumerate(keys), key=lambda pair: pair[1]):
            by_key.insert(key, row_id)
        shuffled.check_invariants()
        by_key.check_invariants()
        assert shuffled.keys() == by_key.keys()
        for probe in range(-1, 102):
            assert shuffled.lookup(probe) == by_key.lookup(probe)
        assert shuffled.range_ids(20, 60, True, True) == by_key.range_ids(
            20, 60, True, True
        )
