"""Tests for the SQL execution engine."""

import pytest

from repro.sqldb import Database, ExecutionError, SchemaError


@pytest.fixture
def rides_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE rides (distance REAL, fare REAL, borough TEXT, city TEXT)")
    rows = [
        (0.8, 5.0, "Manhattan", "New York"),
        (1.5, 8.5, "Brooklyn", "New York"),
        (2.4, 11.0, "Manhattan", "New York"),
        (5.9, 22.0, "Queens", "New York"),
        (12.3, 45.0, "Queens", "New York"),
        (3.1, 13.0, "Manhattan", "Boston"),
    ]
    for row in rows:
        db.execute(
            "INSERT INTO rides VALUES "
            f"({row[0]}, {row[1]}, '{row[2]}', '{row[3]}')"
        )
    return db


class TestDdlAndInsert:
    def test_create_and_list_tables(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        assert db.table_names() == ["t"]

    def test_duplicate_create_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(SchemaError):
            db.execute("CREATE TABLE t (a INTEGER)")

    def test_drop_table(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("DROP TABLE t")
        assert db.table_names() == []

    def test_insert_returns_row_count(self, rides_db):
        assert rides_db.execute("INSERT INTO rides VALUES (1, 2, 'Bronx', 'New York')") == 1

    def test_insert_with_column_list(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t (b) VALUES ('only-b')")
        assert db.query("SELECT * FROM t").rows == [(None, "only-b")]

    def test_insert_rows_bulk(self):
        db = Database()
        db.create_table("t", [("a", "INTEGER")])
        assert db.insert_rows("t", [{"a": 1}, {"a": 2}, {"a": 3}]) == 3
        assert db.query("SELECT COUNT(*) FROM t").scalar() == 3

    def test_unknown_table_rejected(self):
        with pytest.raises(SchemaError):
            Database().execute("SELECT * FROM nothing")


class TestSelect:
    def test_select_star(self, rides_db):
        result = rides_db.query("SELECT * FROM rides")
        assert len(result) == 6
        assert result.columns == ["distance", "fare", "borough", "city"]

    def test_projection(self, rides_db):
        result = rides_db.query("SELECT distance FROM rides")
        assert result.columns == ["distance"]
        assert len(result.column("distance")) == 6

    def test_where_equality(self, rides_db):
        result = rides_db.query("SELECT distance FROM rides WHERE city = 'New York'")
        assert len(result) == 5

    def test_where_numeric_comparison(self, rides_db):
        result = rides_db.query("SELECT distance FROM rides WHERE distance >= 2.4")
        assert sorted(result.column("distance")) == [2.4, 3.1, 5.9, 12.3]

    def test_where_and(self, rides_db):
        result = rides_db.query(
            "SELECT fare FROM rides WHERE city = 'New York' AND borough = 'Manhattan'"
        )
        assert len(result) == 2

    def test_where_or(self, rides_db):
        result = rides_db.query(
            "SELECT fare FROM rides WHERE borough = 'Queens' OR borough = 'Brooklyn'"
        )
        assert len(result) == 3

    def test_where_not(self, rides_db):
        result = rides_db.query("SELECT fare FROM rides WHERE NOT city = 'New York'")
        assert len(result) == 1

    def test_where_between(self, rides_db):
        result = rides_db.query("SELECT distance FROM rides WHERE distance BETWEEN 1 AND 3")
        assert sorted(result.column("distance")) == [1.5, 2.4]

    def test_where_in(self, rides_db):
        result = rides_db.query("SELECT fare FROM rides WHERE borough IN ('Bronx', 'Queens')")
        assert len(result) == 2

    def test_where_like(self, rides_db):
        result = rides_db.query("SELECT fare FROM rides WHERE city LIKE 'New%'")
        assert len(result) == 5

    def test_order_by(self, rides_db):
        result = rides_db.query("SELECT distance FROM rides ORDER BY distance DESC")
        distances = result.column("distance")
        assert distances == sorted(distances, reverse=True)

    def test_limit(self, rides_db):
        result = rides_db.query("SELECT distance FROM rides ORDER BY distance LIMIT 2")
        assert result.column("distance") == [0.8, 1.5]

    def test_alias(self, rides_db):
        result = rides_db.query("SELECT distance AS miles FROM rides LIMIT 1")
        assert result.columns == ["miles"]

    def test_query_requires_select(self, rides_db):
        with pytest.raises(ExecutionError):
            rides_db.query("INSERT INTO rides VALUES (1, 1, 'a', 'b')")

    def test_where_on_missing_rows_returns_empty(self, rides_db):
        result = rides_db.query("SELECT distance FROM rides WHERE city = 'Paris'")
        assert len(result) == 0


class TestAggregates:
    def test_count_star(self, rides_db):
        assert rides_db.query("SELECT COUNT(*) FROM rides").scalar() == 6

    def test_count_with_where(self, rides_db):
        assert (
            rides_db.query("SELECT COUNT(*) FROM rides WHERE city = 'New York'").scalar() == 5
        )

    def test_sum(self, rides_db):
        assert rides_db.query("SELECT SUM(fare) FROM rides").scalar() == pytest.approx(104.5)

    def test_avg(self, rides_db):
        expected = (0.8 + 1.5 + 2.4 + 5.9 + 12.3 + 3.1) / 6
        assert rides_db.query("SELECT AVG(distance) FROM rides").scalar() == pytest.approx(expected)

    def test_min_max(self, rides_db):
        result = rides_db.query("SELECT MIN(distance), MAX(distance) FROM rides")
        assert result.rows == [(0.8, 12.3)]

    def test_aggregate_on_empty_set_is_none(self, rides_db):
        assert rides_db.query("SELECT SUM(fare) FROM rides WHERE fare > 1000").scalar() is None

    def test_count_on_empty_set_is_zero(self, rides_db):
        assert rides_db.query("SELECT COUNT(*) FROM rides WHERE fare > 1000").scalar() == 0

    def test_mixing_columns_and_aggregates_requires_group_by(self, rides_db):
        with pytest.raises(ExecutionError):
            rides_db.query("SELECT borough, COUNT(*) FROM rides")

    def test_group_by(self, rides_db):
        result = rides_db.query(
            "SELECT borough, COUNT(*) FROM rides WHERE city = 'New York' GROUP BY borough"
        )
        as_dict = {row[0]: row[1] for row in result.rows}
        assert as_dict == {"Manhattan": 2, "Brooklyn": 1, "Queens": 2}

    def test_group_by_with_sum(self, rides_db):
        result = rides_db.query("SELECT city, SUM(fare) FROM rides GROUP BY city")
        as_dict = {row[0]: row[1] for row in result.rows}
        assert as_dict["Boston"] == pytest.approx(13.0)
        assert as_dict["New York"] == pytest.approx(91.5)

    def test_group_by_requires_grouped_column(self, rides_db):
        with pytest.raises(ExecutionError):
            rides_db.query("SELECT fare, COUNT(*) FROM rides GROUP BY borough")

    def test_aggregate_alias(self, rides_db):
        result = rides_db.query("SELECT COUNT(*) AS n FROM rides")
        assert result.columns == ["n"]


class TestDelete:
    def test_delete_with_where(self, rides_db):
        deleted = rides_db.execute("DELETE FROM rides WHERE city = 'Boston'")
        assert deleted == 1
        assert rides_db.query("SELECT COUNT(*) FROM rides").scalar() == 5

    def test_delete_all(self, rides_db):
        deleted = rides_db.execute("DELETE FROM rides")
        assert deleted == 6
        assert rides_db.query("SELECT COUNT(*) FROM rides").scalar() == 0


class TestResultSet:
    def test_as_dicts(self, rides_db):
        dicts = rides_db.query("SELECT borough FROM rides LIMIT 2").as_dicts()
        assert dicts == [{"borough": "Manhattan"}, {"borough": "Brooklyn"}]

    def test_scalar_requires_1x1(self, rides_db):
        with pytest.raises(ExecutionError):
            rides_db.query("SELECT distance FROM rides").scalar()

    def test_unknown_column_access_rejected(self, rides_db):
        with pytest.raises(ExecutionError):
            rides_db.query("SELECT distance FROM rides").column("missing")
