"""Tests for the recursive-descent SQL parser."""

import pytest

from repro.sqldb import ast
from repro.sqldb.errors import ParseError
from repro.sqldb.parser import parse_statement


class TestSelectParsing:
    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM rides")
        assert isinstance(stmt, ast.SelectStatement)
        assert stmt.select_star
        assert stmt.table == "rides"

    def test_select_columns(self):
        stmt = parse_statement("SELECT distance, fare FROM rides")
        assert [item.column for item in stmt.items] == ["distance", "fare"]

    def test_select_with_alias(self):
        stmt = parse_statement("SELECT distance AS miles FROM rides")
        assert stmt.items[0].alias == "miles"

    def test_where_comparison(self):
        stmt = parse_statement("SELECT speed FROM vehicle WHERE location = 'SF'")
        assert isinstance(stmt.where, ast.Comparison)
        assert stmt.where.operator == "="

    def test_where_and_or(self):
        stmt = parse_statement("SELECT a FROM t WHERE x = 1 AND y = 2 OR z = 3")
        # OR binds loosest: (x=1 AND y=2) OR z=3
        assert isinstance(stmt.where, ast.BooleanOp)
        assert stmt.where.operator == "OR"
        assert isinstance(stmt.where.left, ast.BooleanOp)
        assert stmt.where.left.operator == "AND"

    def test_where_parentheses_override(self):
        stmt = parse_statement("SELECT a FROM t WHERE x = 1 AND (y = 2 OR z = 3)")
        assert stmt.where.operator == "AND"
        assert isinstance(stmt.where.right, ast.BooleanOp)
        assert stmt.where.right.operator == "OR"

    def test_where_not(self):
        stmt = parse_statement("SELECT a FROM t WHERE NOT x = 1")
        assert isinstance(stmt.where, ast.NotOp)

    def test_where_between(self):
        stmt = parse_statement("SELECT a FROM t WHERE x BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.BetweenOp)

    def test_where_in(self):
        stmt = parse_statement("SELECT a FROM t WHERE city IN ('NYC', 'SF')")
        assert isinstance(stmt.where, ast.InOp)
        assert stmt.where.choices == ("NYC", "SF")

    def test_where_is_null(self):
        stmt = parse_statement("SELECT a FROM t WHERE x IS NULL")
        assert isinstance(stmt.where, ast.IsNullOp)
        assert not stmt.where.negated

    def test_where_is_not_null(self):
        stmt = parse_statement("SELECT a FROM t WHERE x IS NOT NULL")
        assert stmt.where.negated

    def test_where_like(self):
        stmt = parse_statement("SELECT a FROM t WHERE name LIKE 'taxi-%'")
        assert isinstance(stmt.where, ast.LikeOp)
        assert stmt.where.pattern == "taxi-%"

    def test_aggregates(self):
        stmt = parse_statement("SELECT COUNT(*), SUM(fare), AVG(distance) FROM rides")
        functions = [item.function for item in stmt.items]
        assert functions == ["COUNT", "SUM", "AVG"]
        assert stmt.items[0].argument is None
        assert stmt.items[1].argument == "fare"

    def test_aggregate_star_only_for_count(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT SUM(*) FROM rides")

    def test_group_by(self):
        stmt = parse_statement("SELECT borough, COUNT(*) FROM rides GROUP BY borough")
        assert stmt.group_by == ("borough",)

    def test_order_by_desc(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC")
        assert stmt.order_by.column == "a"
        assert stmt.order_by.descending

    def test_order_by_asc_default(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a")
        assert not stmt.order_by.descending

    def test_limit(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 10")
        assert stmt.limit == 10

    def test_limit_requires_number(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t LIMIT x")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t extra tokens")

    def test_trailing_semicolon_allowed(self):
        stmt = parse_statement("SELECT a FROM t;")
        assert stmt.table == "t"


class TestOtherStatements:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a', 2.5, NULL, TRUE)")
        assert isinstance(stmt, ast.InsertStatement)
        assert stmt.values == (1, "a", 2.5, None, True)
        assert stmt.columns is None

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_create_table(self):
        stmt = parse_statement("CREATE TABLE rides (distance REAL, city TEXT, fare REAL)")
        assert isinstance(stmt, ast.CreateTableStatement)
        assert stmt.columns == (("distance", "REAL"), ("city", "TEXT"), ("fare", "REAL"))

    def test_delete_with_where(self):
        stmt = parse_statement("DELETE FROM t WHERE x < 0")
        assert isinstance(stmt, ast.DeleteStatement)
        assert stmt.where is not None

    def test_delete_without_where(self):
        stmt = parse_statement("DELETE FROM t")
        assert stmt.where is None

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE t")
        assert isinstance(stmt, ast.DropTableStatement)
        assert stmt.table == "t"

    def test_unsupported_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("UPDATE t SET x = 1")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a WHERE x = 1")
