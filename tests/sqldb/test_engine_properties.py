"""Property-based tests for the SQL engine (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.sqldb import Database


def _fresh_db(values):
    db = Database()
    db.create_table("t", [("x", "REAL"), ("tag", "TEXT")])
    db.insert_rows("t", [{"x": v, "tag": "even" if i % 2 == 0 else "odd"} for i, v in enumerate(values)])
    return db


values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=40,
)


class TestEngineProperties:
    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_count_matches_python(self, values):
        db = _fresh_db(values)
        assert db.query("SELECT COUNT(*) FROM t").scalar() == len(values)

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_python(self, values):
        db = _fresh_db(values)
        result = db.query("SELECT SUM(x) FROM t").scalar()
        if not values:
            assert result is None
        else:
            assert abs(result - sum(values)) <= 1e-6 * max(1.0, abs(sum(values)))

    @given(values=values_strategy, threshold=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_where_filter_matches_python(self, values, threshold):
        db = _fresh_db(values)
        result = db.query(f"SELECT x FROM t WHERE x >= {threshold!r}")
        expected = [v for v in values if v >= threshold]
        assert sorted(result.column("x")) == sorted(expected)

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_where_partition_is_complete(self, values):
        """Rows matching a predicate plus rows matching its negation = all rows."""
        db = _fresh_db(values)
        positive = len(db.query("SELECT x FROM t WHERE x >= 0"))
        negative = len(db.query("SELECT x FROM t WHERE NOT x >= 0"))
        assert positive + negative == len(values)

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_order_by_sorts(self, values):
        db = _fresh_db(values)
        ordered = db.query("SELECT x FROM t ORDER BY x").column("x")
        assert ordered == sorted(values)

    @given(values=values_strategy, limit=st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_limit_bounds_result(self, values, limit):
        db = _fresh_db(values)
        result = db.query(f"SELECT x FROM t LIMIT {limit}")
        assert len(result) == min(limit, len(values))

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_group_by_counts_sum_to_total(self, values):
        db = _fresh_db(values)
        result = db.query("SELECT tag, COUNT(*) FROM t GROUP BY tag")
        assert sum(row[1] for row in result.rows) == len(values)
